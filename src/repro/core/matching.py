"""Matching-based scheduling (paper Section 4.3).

Build a complete bipartite graph with senders on the left, receivers on
the right, and edge weight equal to the communication time of the
corresponding message.  A complete matching is a permutation — a
contention-free communication step.  The scheduler repeatedly extracts a
maximum-weight (or minimum-weight) complete matching, removes its edges,
and repeats until all ``P`` matchings are found; the sequence of
matchings fixes each sender's dispatch order.  Total complexity is
``O(P^4)`` (``P`` assignment problems at ``O(P^3)`` each).

Maximum-weight matchings group long events into the same step, which
empirically packs the timing diagram tightly; the minimum variant is also
provided because the paper evaluates both and finds them comparable.

As the paper notes, "the communication phase does not impose a
synchronization among the processors after each step" — the matchings fix
*order* only, and actual start times come from the event-driven executor.

Backends: the default LAP solver is SciPy's Jonker-Volgenant
``linear_sum_assignment`` (the paper's acknowledgements thank Roy Jonker
for exactly this algorithm); a networkx
``minimum_weight_full_matching`` backend is kept for cross-validation;
and a dependency-free pure-numpy ``auction`` backend implements the same
Jonker-Volgenant scheme (reduction, augmenting row reduction, shortest
augmenting paths) with one twist the one-shot solvers cannot exploit:
its dual prices survive from one round to the next.  Masking a round's
edges only *raises* costs, so the previous round's duals stay feasible
and each re-solve starts from a near-optimal price vector — measured at
``P = 256``, warm duals cut the backend's round extraction ~3x versus
cold-starting every round.  Every backend extracts optimal-weight
matchings, so all three agree on per-round matching weight (though not
necessarily on which optimal permutation realises it).
"""

from __future__ import annotations

from typing import List, Literal, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_steps_strict
from repro.timing.events import Schedule

Objective = Literal["max", "min"]
Backend = Literal["scipy", "networkx", "auction"]


def _assignment_scipy(weights: np.ndarray, objective: Objective) -> np.ndarray:
    rows, cols = linear_sum_assignment(weights, maximize=(objective == "max"))
    permutation = np.empty(weights.shape[0], dtype=int)
    permutation[rows] = cols
    return permutation


def _assignment_networkx(weights: np.ndarray, objective: Objective) -> np.ndarray:
    n = weights.shape[0]
    graph = nx.Graph()
    left = [("s", i) for i in range(n)]
    right = [("r", j) for j in range(n)]
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(right, bipartite=1)
    sign = -1.0 if objective == "max" else 1.0
    # Bulk edge insertion: one add_weighted_edges_from call over plain
    # Python floats instead of P^2 scalar add_edge calls on numpy values.
    signed = (sign * weights).tolist()
    graph.add_weighted_edges_from(
        (left[i], right[j], signed[i][j])
        for i in range(n)
        for j in range(n)
    )
    matching = nx.bipartite.minimum_weight_full_matching(graph, top_nodes=left)
    permutation = np.empty(n, dtype=int)
    for i in range(n):
        permutation[i] = matching[("s", i)][1]
    return permutation


def _lsap_warm(
    C: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    scratch: Tuple[np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Min-cost full assignment of square ``C`` from feasible duals.

    Jonker-Volgenant in three phases, all exact:

    1. *row re-reduction* — tighten ``u`` so every row has a zero
       reduced-cost edge (vectorised), then harvest the conflict-free
       tight edges as initial assignments;
    2. *augmenting row reduction* — unassigned rows claim (or steal) the
       column behind their cheapest reduced cost, paying for thefts with
       a ``v`` price cut; capped, since on hard instances the
       displacement chain stops converging and phase 3 is cheaper;
    3. *shortest augmenting paths* — Dijkstra on reduced costs for each
       still-free row, with the standard dual update keeping all reduced
       costs non-negative.

    Duals ``u``/``v`` must satisfy ``C[i, j] - u[i] - v[j] >= 0`` on
    entry (guaranteed here by construction and preserved by every
    phase); they are updated in place and remain feasible for the
    returned assignment, which is what makes cross-round warm starts
    sound.  Returns the column assigned to each row.
    """
    n = C.shape[0]
    shortest, pred, d = scratch
    inf = np.inf

    # Phase 1: row re-reduction + conflict-free tight assignment.
    R = C - u[:, None]
    R -= v
    rmin = R.min(axis=1)
    u += rmin
    R -= rmin[:, None]
    col4row = np.full(n, -1, dtype=np.intp)
    row4col = np.full(n, -1, dtype=np.intp)
    jstar = R.argmin(axis=1)
    cols, first_rows = np.unique(jstar, return_index=True)
    col4row[first_rows] = cols
    row4col[cols] = first_rows

    # Phase 2: augmenting row reduction over the conflicted rows.
    queue = []
    for i in np.nonzero(col4row == -1)[0].tolist():
        j = int(jstar[i])
        if row4col[j] == -1:
            col4row[i] = j
            row4col[j] = i
        else:
            queue.append(i)
    attempts = 0
    max_attempts = 4 * n
    k = 0
    leftovers = []
    while k < len(queue):
        i = queue[k]
        k += 1
        if attempts >= max_attempts:
            leftovers.append(i)
            continue
        attempts += 1
        np.subtract(C[i], v, out=d)
        j1 = int(d.argmin())
        u1 = float(d[j1])
        d[j1] = inf
        j2 = int(d.argmin())
        u2 = float(d[j2])
        u[i] = u2
        if u1 < u2:
            v[j1] -= u2 - u1
        elif row4col[j1] != -1:
            j1 = j2
        i0 = int(row4col[j1])
        col4row[i] = j1
        row4col[j1] = i
        if i0 != -1:
            col4row[i0] = -1
            if u1 < u2:
                k -= 1
                queue[k] = i0
            else:
                queue.append(i0)

    # Phase 3: shortest augmenting path per remaining free row.
    for currow in leftovers:
        shortest.fill(inf)
        scanned_cols = np.zeros(n, dtype=bool)
        scanned_rows = [currow]
        minval = 0.0
        i = currow
        while True:
            np.subtract(C[i], v, out=d)
            d += minval - u[i]
            better = d < shortest
            better &= ~scanned_cols
            shortest[better] = d[better]
            pred[better] = i
            frontier = np.where(scanned_cols, inf, shortest)
            j = int(frontier.argmin())
            minval = float(frontier[j])
            if minval == inf:
                raise ValueError("assignment is infeasible")
            scanned_cols[j] = True
            if row4col[j] == -1:
                sink = j
                break
            i = int(row4col[j])
            scanned_rows.append(i)
        u[currow] += minval
        for r in scanned_rows[1:]:
            u[r] += minval - shortest[col4row[r]]
        v[scanned_cols] -= minval - shortest[scanned_cols]
        j = sink
        while True:
            i = int(pred[j])
            row4col[j] = i
            col4row[i], j = j, col4row[i]
            if i == currow:
                break
    return col4row


def _matching_rounds_auction(
    weights: np.ndarray, objective: Objective, used_value: float
) -> List[np.ndarray]:
    """All ``n`` rounds via :func:`_lsap_warm` with cross-round duals.

    Works on the signed min-cost matrix; used edges are overwritten with
    ``|used_value|`` (a dominating positive cost), which can only raise
    reduced costs, so the duals carried across rounds stay feasible.
    """
    n = weights.shape[0]
    sign = -1.0 if objective == "max" else 1.0
    C = sign * weights
    # Column then row reduction makes the initial duals feasible.
    v = C.min(axis=0)
    u = (C - v).min(axis=1)
    scratch = (np.empty(n), np.empty(n, dtype=np.intp), np.empty(n))
    rows = np.arange(n)
    masked_cost = abs(used_value)
    rounds: List[np.ndarray] = []
    for _ in range(n):
        permutation = _lsap_warm(C, u, v, scratch)
        rounds.append(permutation.astype(int))
        C[rows, permutation] = masked_cost
    return rounds


def matching_rounds(
    cost: np.ndarray,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> List[np.ndarray]:
    """The ``P`` permutations extracted by successive matchings.

    Round ``k``'s permutation maps each sender to its round-``k``
    destination.  Used edges are masked out between rounds, so the rounds
    partition all ``P^2`` (sender, receiver) pairs.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise ValueError(f"cost must be square, got {cost.shape}")
    if np.any(cost < 0):
        raise ValueError("cost entries must be non-negative")
    # Validate the backend *before* binding a solver, so an unknown
    # backend can never silently fall through to the networkx path.
    if backend not in ("scipy", "networkx", "auction"):
        raise ValueError(f"unknown backend {backend!r}")
    solve = _assignment_scipy if backend == "scipy" else _assignment_networkx

    # Work on a copy where used edges are masked with a penalty that
    # dominates any assignment total, so the solver always prefers a fully
    # unused permutation.  One always exists: K_{n,n} minus k perfect
    # matchings is (n-k)-regular bipartite, which has a perfect matching
    # by Hall's theorem — the rounds therefore partition all n^2 pairs.
    weights = cost.copy()
    penalty = float(cost.max()) * n + 1.0
    if objective == "max":
        used_value = -penalty
    elif objective == "min":
        used_value = penalty
    else:
        raise ValueError(f"objective must be 'max' or 'min', got {objective!r}")

    if backend == "auction":
        return _matching_rounds_auction(weights, objective, used_value)

    # The single working buffer `weights` is reused across all rounds;
    # only the used edges are overwritten between extractions.
    rows = np.arange(n)
    rounds: List[np.ndarray] = []
    for _ in range(n):
        permutation = solve(weights, objective)
        rounds.append(permutation)
        weights[rows, permutation] = used_value
    return rounds


def matching_orders(
    problem: TotalExchangeProblem,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> SendOrders:
    """Per-sender dispatch orders induced by the matching rounds.

    Zero-cost assignments (the diagonal and any free pairs) are kept in
    the order; the executor skips them at zero cost.
    """
    rounds = matching_rounds(problem.cost, objective=objective, backend=backend)
    orders: SendOrders = [[] for _ in range(problem.num_procs)]
    for permutation in rounds:
        for src, dst in enumerate(permutation):
            orders[src].append(int(dst))
    return orders


def schedule_matching(
    problem: TotalExchangeProblem,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> Schedule:
    """Matching-based schedule, executed order-preserving without barriers.

    The rounds fix both each sender's dispatch order and each receiver's
    service order; actual start times let every event begin as soon as
    both its ports are free (paper: "the communication phase does not
    impose a synchronization among the processors after each step").
    """
    rounds = matching_rounds(problem.cost, objective=objective, backend=backend)
    steps = [
        [(src, int(dst)) for src, dst in enumerate(permutation)]
        for permutation in rounds
    ]
    return execute_steps_strict(problem.cost, steps, sizes=problem.sizes)


def schedule_matching_max(problem: TotalExchangeProblem) -> Schedule:
    """Series-of-maximum-weight-matchings schedule (paper Figure 6)."""
    return schedule_matching(problem, objective="max")


def schedule_matching_min(problem: TotalExchangeProblem) -> Schedule:
    """Series-of-minimum-weight-matchings schedule (paper's variant)."""
    return schedule_matching(problem, objective="min")
