"""Matching-based scheduling (paper Section 4.3).

Build a complete bipartite graph with senders on the left, receivers on
the right, and edge weight equal to the communication time of the
corresponding message.  A complete matching is a permutation — a
contention-free communication step.  The scheduler repeatedly extracts a
maximum-weight (or minimum-weight) complete matching, removes its edges,
and repeats until all ``P`` matchings are found; the sequence of
matchings fixes each sender's dispatch order.  Total complexity is
``O(P^4)`` (``P`` assignment problems at ``O(P^3)`` each).

Maximum-weight matchings group long events into the same step, which
empirically packs the timing diagram tightly; the minimum variant is also
provided because the paper evaluates both and finds them comparable.

As the paper notes, "the communication phase does not impose a
synchronization among the processors after each step" — the matchings fix
*order* only, and actual start times come from the event-driven executor.

Backends: the default LAP solver is SciPy's Jonker-Volgenant
``linear_sum_assignment`` (the paper's acknowledgements thank Roy Jonker
for exactly this algorithm); a networkx
``minimum_weight_full_matching`` backend is kept for cross-validation.
"""

from __future__ import annotations

from typing import List, Literal, Sequence

import networkx as nx
import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_steps_strict
from repro.timing.events import Schedule

Objective = Literal["max", "min"]
Backend = Literal["scipy", "networkx"]


def _assignment_scipy(weights: np.ndarray, objective: Objective) -> np.ndarray:
    rows, cols = linear_sum_assignment(weights, maximize=(objective == "max"))
    permutation = np.empty(weights.shape[0], dtype=int)
    permutation[rows] = cols
    return permutation


def _assignment_networkx(weights: np.ndarray, objective: Objective) -> np.ndarray:
    n = weights.shape[0]
    graph = nx.Graph()
    left = [("s", i) for i in range(n)]
    right = [("r", j) for j in range(n)]
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(right, bipartite=1)
    sign = -1.0 if objective == "max" else 1.0
    # Bulk edge insertion: one add_weighted_edges_from call over plain
    # Python floats instead of P^2 scalar add_edge calls on numpy values.
    signed = (sign * weights).tolist()
    graph.add_weighted_edges_from(
        (left[i], right[j], signed[i][j])
        for i in range(n)
        for j in range(n)
    )
    matching = nx.bipartite.minimum_weight_full_matching(graph, top_nodes=left)
    permutation = np.empty(n, dtype=int)
    for i in range(n):
        permutation[i] = matching[("s", i)][1]
    return permutation


def matching_rounds(
    cost: np.ndarray,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> List[np.ndarray]:
    """The ``P`` permutations extracted by successive matchings.

    Round ``k``'s permutation maps each sender to its round-``k``
    destination.  Used edges are masked out between rounds, so the rounds
    partition all ``P^2`` (sender, receiver) pairs.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise ValueError(f"cost must be square, got {cost.shape}")
    if np.any(cost < 0):
        raise ValueError("cost entries must be non-negative")
    # Validate the backend *before* binding a solver, so an unknown
    # backend can never silently fall through to the networkx path.
    if backend not in ("scipy", "networkx"):
        raise ValueError(f"unknown backend {backend!r}")
    solve = _assignment_scipy if backend == "scipy" else _assignment_networkx

    # Work on a copy where used edges are masked with a penalty that
    # dominates any assignment total, so the solver always prefers a fully
    # unused permutation.  One always exists: K_{n,n} minus k perfect
    # matchings is (n-k)-regular bipartite, which has a perfect matching
    # by Hall's theorem — the rounds therefore partition all n^2 pairs.
    weights = cost.copy()
    penalty = float(cost.max()) * n + 1.0
    if objective == "max":
        used_value = -penalty
    elif objective == "min":
        used_value = penalty
    else:
        raise ValueError(f"objective must be 'max' or 'min', got {objective!r}")

    # The single working buffer `weights` is reused across all rounds;
    # only the used edges are overwritten between extractions.
    rows = np.arange(n)
    rounds: List[np.ndarray] = []
    for _ in range(n):
        permutation = solve(weights, objective)
        rounds.append(permutation)
        weights[rows, permutation] = used_value
    return rounds


def matching_orders(
    problem: TotalExchangeProblem,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> SendOrders:
    """Per-sender dispatch orders induced by the matching rounds.

    Zero-cost assignments (the diagonal and any free pairs) are kept in
    the order; the executor skips them at zero cost.
    """
    rounds = matching_rounds(problem.cost, objective=objective, backend=backend)
    orders: SendOrders = [[] for _ in range(problem.num_procs)]
    for permutation in rounds:
        for src, dst in enumerate(permutation):
            orders[src].append(int(dst))
    return orders


def schedule_matching(
    problem: TotalExchangeProblem,
    *,
    objective: Objective = "max",
    backend: Backend = "scipy",
) -> Schedule:
    """Matching-based schedule, executed order-preserving without barriers.

    The rounds fix both each sender's dispatch order and each receiver's
    service order; actual start times let every event begin as soon as
    both its ports are free (paper: "the communication phase does not
    impose a synchronization among the processors after each step").
    """
    rounds = matching_rounds(problem.cost, objective=objective, backend=backend)
    steps = [
        [(src, int(dst)) for src, dst in enumerate(permutation)]
        for permutation in rounds
    ]
    return execute_steps_strict(problem.cost, steps, sizes=problem.sizes)


def schedule_matching_max(problem: TotalExchangeProblem) -> Schedule:
    """Series-of-maximum-weight-matchings schedule (paper Figure 6)."""
    return schedule_matching(problem, objective="max")


def schedule_matching_min(problem: TotalExchangeProblem) -> Schedule:
    """Series-of-minimum-weight-matchings schedule (paper's variant)."""
    return schedule_matching(problem, objective="min")
