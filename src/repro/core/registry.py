"""Uniform scheduler registry.

Every scheduler shares the signature
``scheduler(problem: TotalExchangeProblem) -> Schedule``.  Experiments,
benches, the fuzzer, and the runtime look algorithms up here by the
names used throughout the paper's figures.

The registry is spec-based: each algorithm is described by a
:class:`SchedulerSpec` carrying the callable plus the metadata consumers
need (tier, asymptotic complexity, proven guarantee bound, paper
section).  :func:`iter_specs` enumerates them, :func:`get_scheduler`
resolves a name to its default-configured callable, and
:func:`make_scheduler` builds parameterized variants (matching backend
choice, relayed/partitioned open shop, preemptive optimum, local-search
budgets) from stable string names with keyword-only options.

The legacy ``ALL_SCHEDULERS`` / ``EXTRA_SCHEDULERS`` dicts (deprecated
since the registry landed) have been removed — use
``iter_specs(tier=...)`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.baseline import schedule_baseline, schedule_baseline_nosync
from repro.core.exact import schedule_optimal
from repro.core.listsched import (
    schedule_local_search,
    schedule_lpt,
    schedule_random_order,
)
from repro.core.greedy import schedule_greedy
from repro.core.matching import (
    schedule_matching,
    schedule_matching_max,
    schedule_matching_min,
)
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.timing.events import Schedule
from repro.util.spec import format_spec, parse_spec

Scheduler = Callable[[TotalExchangeProblem], Schedule]

#: A proven worst-case completion-time factor over the lower bound, as a
#: function of the processor count.
GuaranteeBound = Callable[[int], float]


def _bound_theorem3(num_procs: int) -> float:
    """Theorem 3: open shop list scheduling is within twice the bound."""
    return 2.0


def _bound_theorem2(num_procs: int) -> float:
    """Theorem 2 (tight): the unsynchronised caterpillar can reach, but
    never exceed, ``P/2`` times the lower bound."""
    return max(1.0, num_procs / 2.0)


def _bound_preemptive(num_procs: int) -> float:
    """The preemptive relaxation meets the lower bound exactly."""
    return 1.0


@dataclass(frozen=True)
class SchedulerSpec:
    """Registry entry: one scheduler plus the metadata consumers need.

    Attributes
    ----------
    name:
        Stable public string name (``make_scheduler(name)``).
    fn:
        The scheduler with default options, signature
        ``problem -> Schedule``.
    tier:
        ``"paper"`` (the Section 5 figure algorithms, in report order),
        ``"extra"`` (non-figure comparators with the same uniform
        semantics), or ``"variant"`` (parameterized entry points whose
        schedules may not be one-event-per-message — relayed legs,
        chunks, preemptive pieces — and are therefore excluded from the
        differential fuzzer's universal-coverage oracle).
    complexity:
        Asymptotic scheduling cost in ``P``.
    guarantee:
        Proven worst-case makespan factor over the lower bound
        (``P -> factor``), or None when no bound is proven.  The
        invariant oracle (:mod:`repro.check.oracle`) enforces these.
    paper_section:
        Where the paper introduces or evaluates the algorithm.
    options:
        Allowed ``make_scheduler`` keyword options mapped to their
        defaults (empty for schedulers without tunables).
    factory:
        Builds a configured callable from the options; None means the
        scheduler takes no options and ``fn`` is the only form.
    summary:
        One-line description for ``--list-schedulers`` style output.
    """

    name: str
    fn: Scheduler
    tier: str
    complexity: str
    guarantee: Optional[GuaranteeBound] = None
    paper_section: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)
    factory: Optional[Callable[..., Scheduler]] = None
    summary: str = ""

    def build(self, **options: Any) -> Scheduler:
        """A configured scheduler; no options returns :attr:`fn`."""
        if not options:
            return self.fn
        if self.factory is None:
            raise TypeError(
                f"scheduler {self.name!r} takes no options, "
                f"got {sorted(options)}"
            )
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            raise TypeError(
                f"unknown option(s) {unknown} for scheduler "
                f"{self.name!r}; allowed: {sorted(self.options)}"
            )
        merged = {**self.options, **options}
        scheduler = self.factory(**merged)
        label = ", ".join(f"{k}={merged[k]!r}" for k in sorted(merged))
        scheduler.__name__ = f"{self.name}({label})"
        scheduler.__qualname__ = scheduler.__name__
        return scheduler


# ---------------------------------------------------------------------------
# Adapters for the parameterized entry points.
# ---------------------------------------------------------------------------


def snapshot_for_problem(
    problem: TotalExchangeProblem,
) -> Tuple[DirectorySnapshot, np.ndarray]:
    """Derive a ``(snapshot, sizes)`` pair pricing exactly like ``problem``.

    The relayed and partitioned open-shop variants price legs from a
    directory snapshot rather than a cost matrix.  When the problem
    carries a size matrix (positive wherever cost is), the snapshot uses
    zero latency and ``bandwidth = sizes / cost`` so every direct
    transfer costs exactly ``problem.cost`` while relays and chunks
    re-price faithfully.  Without usable sizes, the costs themselves act
    as sizes over unit bandwidth (direct costs again exact; relaying
    then never pays, by construction).
    """
    cost = problem.cost
    positive = cost > 0
    sizes = problem.sizes
    if sizes is None or not np.all(sizes[positive] > 0):
        sizes = np.where(positive, cost, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        bandwidth = np.where(positive, sizes / np.where(positive, cost, 1.0),
                             np.inf)
    snapshot = DirectorySnapshot(
        latency=np.zeros_like(cost), bandwidth=bandwidth
    )
    return snapshot, np.asarray(sizes, dtype=float)


def _matching_factory(objective: str) -> Callable[..., Scheduler]:
    def factory(*, backend: str = "scipy") -> Scheduler:
        def scheduler(problem: TotalExchangeProblem) -> Schedule:
            return schedule_matching(
                problem, objective=objective, backend=backend
            )

        return scheduler

    return factory


def _indirect_factory(*, advantage: float = 2.0) -> Scheduler:
    from repro.core.indirect import schedule_openshop_indirect

    def scheduler(problem: TotalExchangeProblem) -> Schedule:
        snapshot, sizes = snapshot_for_problem(problem)
        return schedule_openshop_indirect(
            snapshot, sizes, advantage=advantage
        )

    return scheduler


def _partitioned_factory(*, chunks: int = 2) -> Scheduler:
    from repro.core.partition import schedule_openshop_partitioned

    def scheduler(problem: TotalExchangeProblem) -> Schedule:
        snapshot, sizes = snapshot_for_problem(problem)
        return schedule_openshop_partitioned(snapshot, sizes, chunks=chunks)

    return scheduler


def _preemptive_fn(problem: TotalExchangeProblem) -> Schedule:
    from repro.core.preemptive import schedule_preemptive

    return schedule_preemptive(problem)


def _local_search_factory(*, max_passes: int = 3) -> Scheduler:
    def scheduler(problem: TotalExchangeProblem) -> Schedule:
        return schedule_local_search(problem, max_passes=max_passes)

    return scheduler


def _hierarchical_factory(
    *,
    threshold: Optional[float] = None,
    gap_factor: float = 4.0,
    intra: str = "rounds",
    drift_tolerance: float = 0.25,
) -> Scheduler:
    from repro.core.hierarchical import HierarchicalScheduler

    return HierarchicalScheduler(
        threshold=threshold,
        gap_factor=gap_factor,
        intra=intra,
        drift_tolerance=drift_tolerance,
    )


def _random_order_factory(*, seed: int = 0) -> Scheduler:
    def scheduler(problem: TotalExchangeProblem) -> Schedule:
        return schedule_random_order(
            problem, rng=np.random.default_rng(seed)
        )

    return scheduler


# ---------------------------------------------------------------------------
# The specs, in report order within each tier.
# ---------------------------------------------------------------------------

_MATCHING_COMPLEXITY = "O(P^4)"

_SPEC_LIST = [
    # -- tier "paper": the Section 5 figure algorithms ---------------------
    SchedulerSpec(
        name="baseline",
        fn=schedule_baseline,
        tier="paper",
        complexity="O(P^2)",
        paper_section="4.2",
        summary="synchronised caterpillar: P-1 barriered permutation steps",
    ),
    SchedulerSpec(
        name="max_matching",
        fn=schedule_matching_max,
        tier="paper",
        complexity=_MATCHING_COMPLEXITY,
        paper_section="4.3",
        options={"backend": "scipy"},
        factory=_matching_factory("max"),
        summary="series of maximum-weight complete matchings",
    ),
    SchedulerSpec(
        name="min_matching",
        fn=schedule_matching_min,
        tier="paper",
        complexity=_MATCHING_COMPLEXITY,
        paper_section="4.3",
        options={"backend": "scipy"},
        factory=_matching_factory("min"),
        summary="series of minimum-weight complete matchings",
    ),
    SchedulerSpec(
        name="greedy",
        fn=schedule_greedy,
        tier="paper",
        complexity="O(P^3)",
        paper_section="4.3",
        summary="greedy step composition, longest events first",
    ),
    SchedulerSpec(
        name="openshop",
        fn=schedule_openshop,
        tier="paper",
        complexity="O(P^2 log P)",
        guarantee=_bound_theorem3,
        paper_section="4.4",
        summary="open shop list scheduling (Theorem 3: within 2x the bound)",
    ),
    # -- tier "extra": non-figure comparators ------------------------------
    SchedulerSpec(
        name="optimal",
        fn=schedule_optimal,
        tier="extra",
        complexity="exponential",
        paper_section="4.1",
        summary="branch-and-bound exact solver (small P only)",
    ),
    SchedulerSpec(
        name="baseline_nosync",
        fn=schedule_baseline_nosync,
        tier="extra",
        complexity="O(P^2)",
        guarantee=_bound_theorem2,
        paper_section="4.2",
        summary="unsynchronised caterpillar (Theorem 2: at most P/2 x)",
    ),
    SchedulerSpec(
        name="lpt",
        fn=schedule_lpt,
        tier="extra",
        complexity="O(P^2 log P)",
        paper_section="-",
        summary="longest-event-first list schedule",
    ),
    SchedulerSpec(
        name="random_order",
        fn=schedule_random_order,
        tier="extra",
        complexity="O(P^2 log P)",
        paper_section="-",
        options={"seed": 0},
        factory=_random_order_factory,
        summary="uniformly random dispatch order (control)",
    ),
    SchedulerSpec(
        name="local_search",
        fn=schedule_local_search,
        tier="extra",
        complexity="O(passes * P^3 log P)",
        paper_section="6.2",
        options={"max_passes": 3},
        factory=_local_search_factory,
        summary="hill-climb over dispatch orders, openshop-seeded",
    ),
    SchedulerSpec(
        name="hierarchical",
        fn=_hierarchical_factory(),
        tier="extra",
        complexity="O(P^2 + K^2 log K)",
        paper_section="6.3",
        options={
            "threshold": None,
            "gap_factor": 4.0,
            "intra": "rounds",
            "drift_tolerance": 0.25,
        },
        factory=_hierarchical_factory,
        summary=(
            "two-level scheduler: cluster-level open shop over "
            "caterpillar block rounds (scales past P=1024)"
        ),
    ),
    # -- tier "variant": parameterized entry points ------------------------
    SchedulerSpec(
        name="openshop_indirect",
        fn=_indirect_factory(),
        tier="variant",
        complexity="O(P^3)",
        paper_section="3.4",
        options={"advantage": 2.0},
        factory=_indirect_factory,
        summary="open shop with optional single-hop relaying (ablation)",
    ),
    SchedulerSpec(
        name="openshop_partitioned",
        fn=_partitioned_factory(),
        tier="variant",
        complexity="O(chunks * P^2 log P)",
        paper_section="3.4",
        options={"chunks": 2},
        factory=_partitioned_factory,
        summary="open shop over a message-partitioned instance",
    ),
    SchedulerSpec(
        name="preemptive",
        fn=_preemptive_fn,
        tier="variant",
        complexity="O(P^4)",
        guarantee=_bound_preemptive,
        paper_section="4.1",
        summary="Birkhoff-von-Neumann preemptive optimum (meets t_lb)",
    ),
]

# Explicit matching backend variants: stable "matching_<obj>:<backend>"
# names, e.g. "matching_min:auction".
for _objective in ("max", "min"):
    for _backend in ("scipy", "networkx", "auction"):
        _SPEC_LIST.append(
            SchedulerSpec(
                name=f"matching_{_objective}:{_backend}",
                fn=_matching_factory(_objective)(backend=_backend),
                tier="variant",
                complexity=_MATCHING_COMPLEXITY,
                paper_section="4.3",
                summary=(
                    f"{_objective}-weight matching via the "
                    f"{_backend} LAP backend"
                ),
            )
        )

_SPECS: Dict[str, SchedulerSpec] = {spec.name: spec for spec in _SPEC_LIST}


def iter_specs(tier: Optional[str] = None) -> Iterator[SchedulerSpec]:
    """Iterate registered specs, optionally restricted to one tier.

    Order is stable: the paper's figure algorithms in report order, then
    the extras, then the parameterized variants.
    """
    if tier is not None and tier not in ("paper", "extra", "variant"):
        raise ValueError(
            f"unknown tier {tier!r}; expected 'paper', 'extra' or 'variant'"
        )
    for spec in _SPECS.values():
        if tier is None or spec.tier == tier:
            yield spec


def get_spec(name: str) -> SchedulerSpec:
    """The spec registered under ``name`` (KeyError with the known list)."""
    spec = _SPECS.get(name)
    if spec is None:
        known = ", ".join(_SPECS)
        raise KeyError(f"unknown scheduler {name!r}; known: {known}")
    return spec


def scheduler_names() -> Tuple[str, ...]:
    """Names of the paper's evaluated schedulers, in report order."""
    return tuple(spec.name for spec in iter_specs(tier="paper"))


def get_scheduler(name: str) -> Scheduler:
    """Look up a scheduler by name (figure schedulers plus extras)."""
    return get_spec(name).fn


def parse_scheduler_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split a scheduler spec string into ``(name, options)``.

    The grammar is the shared ``name[:key=value,...]`` spec grammar
    (:func:`repro.util.spec.parse_spec`) with one registry-specific
    rule: a string that *is* a registered name is returned verbatim,
    so the explicit matching variants (``"matching_min:auction"``),
    whose names contain a ``:``, stay addressable.
    """
    if spec in _SPECS:
        return spec, {}
    name, options = parse_spec(spec, kind="scheduler spec")
    if name not in _SPECS:
        known = ", ".join(_SPECS)
        raise KeyError(f"unknown scheduler {name!r}; known: {known}")
    return name, options


def format_scheduler_spec(name: str, options: Mapping[str, Any]) -> str:
    """Inverse of :func:`parse_scheduler_spec` (canonical key order)."""
    get_spec(name)  # validate the name, with the friendly message
    if ":" in name and options:
        raise ValueError(
            f"scheduler {name!r} already encodes its variant; it takes "
            f"no spec options"
        )
    return format_spec(name, options)


def make_scheduler(name: str, **options: Any) -> Scheduler:
    """Build a scheduler from its stable name and keyword-only options.

    Every registered algorithm — including the parameterized variants —
    is reachable: ``make_scheduler("openshop")``,
    ``make_scheduler("min_matching", backend="auction")``,
    ``make_scheduler("matching_min:auction")``,
    ``make_scheduler("openshop_partitioned", chunks=4)``, ...

    ``name`` may also be a full spec string in the shared
    ``name[:key=value,...]`` grammar —
    ``make_scheduler("openshop_partitioned:chunks=4")`` — with explicit
    keyword options layered on top of (and overriding) the spec's.

    Raises ``KeyError`` for unknown names (listing the known ones) and
    ``TypeError`` for options the scheduler does not accept.
    """
    name, spec_options = parse_scheduler_spec(name)
    spec_options.update(options)
    return get_spec(name).build(**spec_options)
