"""Uniform scheduler registry.

Every scheduler shares the signature
``scheduler(problem: TotalExchangeProblem) -> Schedule``.  Experiments and
benches look algorithms up here by the names used throughout the paper's
figures.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.baseline import schedule_baseline, schedule_baseline_nosync
from repro.core.exact import schedule_optimal
from repro.core.listsched import (
    schedule_local_search,
    schedule_lpt,
    schedule_random_order,
)
from repro.core.greedy import schedule_greedy
from repro.core.matching import schedule_matching_max, schedule_matching_min
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule

Scheduler = Callable[[TotalExchangeProblem], Schedule]

#: The algorithms evaluated in the paper's Section 5 figures, keyed by the
#: names used in our reports.
ALL_SCHEDULERS: Dict[str, Scheduler] = {
    "baseline": schedule_baseline,
    "max_matching": schedule_matching_max,
    "min_matching": schedule_matching_min,
    "greedy": schedule_greedy,
    "openshop": schedule_openshop,
}

#: Extra schedulers not part of the figure sweeps.
EXTRA_SCHEDULERS: Dict[str, Scheduler] = {
    "optimal": schedule_optimal,
    "baseline_nosync": schedule_baseline_nosync,
    "lpt": schedule_lpt,
    "random_order": schedule_random_order,
    "local_search": schedule_local_search,
}


def scheduler_names() -> Tuple[str, ...]:
    """Names of the paper's evaluated schedulers, in report order."""
    return tuple(ALL_SCHEDULERS)


def get_scheduler(name: str) -> Scheduler:
    """Look up a scheduler by name (figure schedulers plus extras)."""
    if name in ALL_SCHEDULERS:
        return ALL_SCHEDULERS[name]
    if name in EXTRA_SCHEDULERS:
        return EXTRA_SCHEDULERS[name]
    known = ", ".join([*ALL_SCHEDULERS, *EXTRA_SCHEDULERS])
    raise KeyError(f"unknown scheduler {name!r}; known: {known}")
