"""Exact branch-and-bound solver for small total-exchange instances.

TOT_EXCH is NP-complete (Theorem 1), so this solver exists for validation
only: it certifies optimal completion times on the small instances used in
tests and lets us measure how far each heuristic actually is from optimal
(the paper can only compare against the lower bound).

Search space: *semi-active* schedules.  Events are placed one at a time;
a placed event starts at ``max(sendavail[src], recvavail[dst])``.  Every
left-shifted schedule — in particular some optimal schedule — is produced
by placing its events in chronological start order, so searching over
placement sequences is complete.

Pruning:

* incumbent from the open shop heuristic (already within 2x optimal);
* per-state lower bound: every processor must still fit its remaining
  send work after ``sendavail`` and receive work after ``recvavail``;
* memoisation of ``(remaining set, avail vectors)`` states;
* node budget with a hard error, so a mis-sized call fails loudly
  instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule

#: Refuse instances bigger than this; the search is factorial.
MAX_EXACT_PROCS = 6


class SearchBudgetExceeded(RuntimeError):
    """Raised when branch-and-bound exceeds its node budget."""


@dataclass(frozen=True)
class ExactResult:
    """Outcome of :func:`branch_and_bound`."""

    schedule: Schedule
    completion_time: float
    nodes_explored: int
    proven_optimal: bool


def branch_and_bound(
    problem: TotalExchangeProblem,
    *,
    node_budget: int = 2_000_000,
    atol: float = 1e-9,
) -> ExactResult:
    """Solve a small instance to proven optimality.

    Raises :class:`SearchBudgetExceeded` if ``node_budget`` search nodes
    are not enough, and :class:`ValueError` for instances larger than
    :data:`MAX_EXACT_PROCS`.
    """
    n = problem.num_procs
    if n > MAX_EXACT_PROCS:
        raise ValueError(
            f"exact solver is limited to {MAX_EXACT_PROCS} processors, "
            f"got {n}"
        )
    cost = problem.cost
    events = problem.positive_events()

    # Incumbent: the open shop heuristic (guaranteed within 2x optimal).
    incumbent = schedule_openshop(problem)
    best_time = incumbent.completion_time
    best_placement: Optional[List[Tuple[int, int, float]]] = None

    send_work = problem.send_totals()
    recv_work = problem.recv_totals()

    nodes = 0
    # memo maps a state to the best (lowest) makespan-so-far it was reached
    # with; revisiting with an equal-or-worse prefix cannot improve.
    memo: Dict[Tuple, float] = {}

    def state_bound(
        sendavail: List[float],
        recvavail: List[float],
        rem_send: np.ndarray,
        rem_recv: np.ndarray,
        makespan: float,
    ) -> float:
        bound = makespan
        for i in range(n):
            bound = max(bound, sendavail[i] + rem_send[i])
            bound = max(bound, recvavail[i] + rem_recv[i])
        return bound

    def dfs(
        remaining: FrozenSet[Tuple[int, int]],
        sendavail: List[float],
        recvavail: List[float],
        rem_send: np.ndarray,
        rem_recv: np.ndarray,
        makespan: float,
        placed: List[Tuple[int, int, float]],
    ) -> None:
        nonlocal nodes, best_time, best_placement
        nodes += 1
        if nodes > node_budget:
            raise SearchBudgetExceeded(
                f"exceeded {node_budget} nodes on a {n}-processor instance"
            )
        if not remaining:
            if makespan < best_time - atol:
                best_time = makespan
                best_placement = list(placed)
            return
        bound = state_bound(sendavail, recvavail, rem_send, rem_recv, makespan)
        if bound >= best_time - atol:
            return
        key = (
            remaining,
            tuple(round(t, 9) for t in sendavail),
            tuple(round(t, 9) for t in recvavail),
        )
        seen = memo.get(key)
        if seen is not None and seen <= makespan + atol:
            return
        memo[key] = makespan

        # Order branches by earliest completion first: good incumbents
        # early make the bound bite sooner.
        branches = sorted(
            remaining,
            key=lambda pair: (
                max(sendavail[pair[0]], recvavail[pair[1]]) + cost[pair],
                pair,
            ),
        )
        for src, dst in branches:
            start = max(sendavail[src], recvavail[dst])
            finish = start + cost[src, dst]
            old_send, old_recv = sendavail[src], recvavail[dst]
            sendavail[src] = finish
            recvavail[dst] = finish
            rem_send[src] -= cost[src, dst]
            rem_recv[dst] -= cost[src, dst]
            placed.append((src, dst, start))
            dfs(
                remaining - {(src, dst)},
                sendavail,
                recvavail,
                rem_send,
                rem_recv,
                max(makespan, finish),
                placed,
            )
            placed.pop()
            sendavail[src] = old_send
            recvavail[dst] = old_recv
            rem_send[src] += cost[src, dst]
            rem_recv[dst] += cost[src, dst]

    dfs(
        frozenset(events),
        [0.0] * n,
        [0.0] * n,
        send_work.copy(),
        recv_work.copy(),
        0.0,
        [],
    )

    if best_placement is None:
        schedule = incumbent
    else:
        timed = [
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=float(cost[src, dst]),
                size=problem.size_of(src, dst),
            )
            for src, dst, start in best_placement
        ]
        # Keep free markers for coverage parity with other schedulers.
        for src in range(n):
            for dst in range(n):
                if src != dst and cost[src, dst] == 0:
                    timed.append(
                        CommEvent(start=0.0, src=src, dst=dst, duration=0.0)
                    )
        schedule = Schedule.from_events(n, timed)

    return ExactResult(
        schedule=schedule,
        completion_time=schedule.completion_time,
        nodes_explored=nodes,
        proven_optimal=True,
    )


def schedule_optimal(problem: TotalExchangeProblem) -> Schedule:
    """Scheduler-interface wrapper around :func:`branch_and_bound`."""
    return branch_and_bound(problem).schedule
