"""The total-exchange scheduling problem (paper Section 4.1).

Every processor holds a distinct message for every other processor; the
``P x P`` communication matrix gives the transfer time of each message
under the analytical model.  The goal is a valid schedule (one send and
one receive per node at a time) minimising completion time.  The decision
version, TOT_EXCH, is NP-complete for ``P > 2`` (Theorem 1, by reduction
from open shop scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.model.cost import cost_matrix as build_cost_matrix
from repro.model.messages import SizeSpec
from repro.util.rng import RngLike
from repro.util.validation import check_square_matrix


@dataclass(frozen=True)
class TotalExchangeProblem:
    """A total-exchange instance.

    Attributes
    ----------
    cost:
        ``[src, dst]`` transfer times in seconds.  NOTE: the paper's
        matrix ``C`` is receiver-major (``C_{i,j}`` = time from ``P_j`` to
        ``P_i``); use :meth:`from_paper_matrix` / :meth:`paper_matrix` to
        convert.  Diagonal entries are normally zero (local copies are
        free) but may be positive — Theorem 2's tight instance uses
        self-messages, which occupy both ports of their node at once.
    sizes:
        Optional ``[src, dst]`` message sizes in bytes (informational).
    """

    cost: np.ndarray
    sizes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        cost = check_square_matrix("cost", self.cost, nonnegative=True)
        cost = cost.copy()
        cost.flags.writeable = False
        object.__setattr__(self, "cost", cost)
        if self.sizes is not None:
            sizes = check_square_matrix("sizes", self.sizes, nonnegative=True)
            if sizes.shape != cost.shape:
                raise ValueError(
                    f"sizes shape {sizes.shape} != cost shape {cost.shape}"
                )
            sizes = sizes.copy()
            sizes.flags.writeable = False
            object.__setattr__(self, "sizes", sizes)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot: DirectorySnapshot,
        sizes: Union[np.ndarray, SizeSpec],
        *,
        rng: RngLike = None,
    ) -> "TotalExchangeProblem":
        """Build an instance from a directory snapshot and message sizes."""
        if isinstance(sizes, SizeSpec):
            size_matrix = sizes.sizes(snapshot.num_procs, rng=rng)
        else:
            size_matrix = np.asarray(sizes, dtype=float)
        cost = build_cost_matrix(snapshot, size_matrix)
        return cls(cost=cost, sizes=size_matrix)

    @classmethod
    def from_paper_matrix(cls, paper_c: np.ndarray) -> "TotalExchangeProblem":
        """Build from a matrix in the paper's receiver-major convention."""
        paper_c = check_square_matrix("paper_c", paper_c, nonnegative=True)
        return cls(cost=paper_c.T)

    # -- queries ------------------------------------------------------------

    @property
    def num_procs(self) -> int:
        return self.cost.shape[0]

    def paper_matrix(self) -> np.ndarray:
        """The cost matrix in the paper's receiver-major convention."""
        return self.cost.T.copy()

    def size_of(self, src: int, dst: int) -> float:
        """Message size in bytes (0 when sizes are not tracked)."""
        if self.sizes is None:
            return 0.0
        return float(self.sizes[src, dst])

    def send_totals(self) -> np.ndarray:
        """Per-processor total send time (row sums, including diagonal)."""
        return self.cost.sum(axis=1)

    def recv_totals(self) -> np.ndarray:
        """Per-processor total receive time (column sums, incl. diagonal)."""
        return self.cost.sum(axis=0)

    def lower_bound(self) -> float:
        """``t_lb``: the busiest send or receive port (paper Section 4.1).

        No schedule can finish before the maximum over processors of the
        larger of its total send time and total receive time.
        """
        return float(
            max(self.send_totals().max(), self.recv_totals().max())
        )

    def positive_events(self):
        """All ``(src, dst)`` pairs requiring a real (nonzero-cost) event."""
        srcs, dsts = np.nonzero(self.cost)
        return list(zip(srcs.tolist(), dsts.tolist()))

    def scaled(self, factor: float) -> "TotalExchangeProblem":
        """A copy with every cost multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        sizes = None if self.sizes is None else self.sizes.copy()
        return TotalExchangeProblem(cost=self.cost * factor, sizes=sizes)

    def restricted_to(self, pairs) -> "TotalExchangeProblem":
        """A copy keeping only ``pairs``; other entries zeroed.

        Used by rescheduling: the *remaining* communication after a
        checkpoint is the original problem restricted to unsent pairs.
        """
        keep = np.zeros_like(self.cost, dtype=bool)
        for src, dst in pairs:
            keep[src, dst] = True
        cost = np.where(keep, self.cost, 0.0)
        sizes = None if self.sizes is None else np.where(keep, self.sizes, 0.0)
        return TotalExchangeProblem(cost=cost, sizes=sizes)


def example_problem() -> TotalExchangeProblem:
    """A 5-processor running example in the spirit of the paper's Figure 3.

    The paper's Figures 3-8 use a 5-processor instance given only
    pictorially; this hand-constructed instance exhibits the same
    phenomena.  With lower bound 16 (processor 0's total send time), the
    baseline caterpillar completes at 24 (stalled by the long early
    events), max/min matching and greedy at 18, and the open shop
    heuristic at exactly the lower bound — the qualitative ordering of
    the paper's Figures 4 and 6-8 (see ``examples/quickstart.py``).
    """
    cost = np.array(
        [
            [0.0, 1.0, 3.0, 4.0, 8.0],
            [3.0, 0.0, 9.0, 2.0, 1.0],
            [2.0, 1.0, 0.0, 4.0, 3.0],
            [2.0, 4.0, 1.0, 0.0, 1.0],
            [2.0, 1.0, 1.0, 4.0, 0.0],
        ]
    )
    return TotalExchangeProblem(cost=cost)


def tight_baseline_instance(epsilon: float = 1e-3) -> TotalExchangeProblem:
    """Theorem 2's tight instance: baseline takes ~``P/2`` x lower bound.

    The paper gives the 4-processor receiver-major matrix::

        C = [[e, e, e, e],
             [e, 1, e, e],
             [1, 1, e, e],
             [1, e, e, e]]

    whose caterpillar critical path chains all four unit entries
    (completion time 4) while the lower bound is ``2 + 2e``, so the ratio
    approaches ``P/2 = 2`` as ``e -> 0``.  Note the nonzero diagonal:
    ``C[1,1]`` is a self-message, allowed by the schedule semantics (it
    occupies both ports of node 1).
    """
    if not (0 < epsilon < 1):
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    e = float(epsilon)
    paper_c = np.array(
        [
            [e, e, e, e],
            [e, 1.0, e, e],
            [1.0, 1.0, e, e],
            [1.0, e, e, e],
        ]
    )
    return TotalExchangeProblem.from_paper_matrix(paper_c)
