"""Static directories backed by fixed matrices."""

from __future__ import annotations

import numpy as np

from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.network.gusto import gusto_parameters


class StaticDirectory(DirectoryService):
    """A directory whose answers never change.

    Useful for the GUSTO tables, for unit tests, and as the frozen end of
    adaptivity experiments.
    """

    def __init__(self, latency: np.ndarray, bandwidth: np.ndarray):
        self._snapshot = DirectorySnapshot(
            latency=latency, bandwidth=bandwidth, time=0.0
        )
        self._time = 0.0

    @property
    def num_procs(self) -> int:
        return self._snapshot.num_procs

    @property
    def time(self) -> float:
        return self._time

    def snapshot(self) -> DirectorySnapshot:
        return DirectorySnapshot(
            latency=self._snapshot.latency,
            bandwidth=self._snapshot.bandwidth,
            time=self._time,
        )

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self._time += dt


def gusto_directory() -> StaticDirectory:
    """The 5-site GUSTO directory from the paper's Tables 1-2."""
    latency, bandwidth = gusto_parameters()
    return StaticDirectory(latency=latency, bandwidth=bandwidth)
