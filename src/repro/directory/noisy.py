"""A directory wrapper that returns noisy measurements.

MDS-style directories report *measurements*, and measurements err.
:class:`NoisyDirectory` wraps any :class:`DirectoryService` and corrupts
every snapshot with log-normal multiplicative error (fresh noise per
query, matching how repeated probes of a live network disagree with each
other).  Pairs with the underlying truth for robustness experiments:
plan on the noisy view, execute on the wrapped directory's real one.
"""

from __future__ import annotations

from repro.directory.perturb import perturb_snapshot
from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.util.rng import RngLike, to_rng
from repro.util.validation import check_positive


class NoisyDirectory(DirectoryService):
    """Wraps a directory; snapshots carry measurement error.

    Parameters
    ----------
    inner:
        The ground-truth directory.
    bandwidth_sigma / latency_sigma:
        Log-normal error magnitudes applied per pair, per snapshot.
    symmetric:
        Whether a pair's two directions err identically (one probe per
        pair) or independently (one probe per direction).
    """

    def __init__(
        self,
        inner: DirectoryService,
        *,
        bandwidth_sigma: float = 0.2,
        latency_sigma: float = 0.0,
        symmetric: bool = True,
        rng: RngLike = None,
    ):
        self._inner = inner
        self._bandwidth_sigma = check_positive(
            "bandwidth_sigma", bandwidth_sigma, allow_zero=True
        )
        self._latency_sigma = check_positive(
            "latency_sigma", latency_sigma, allow_zero=True
        )
        self._symmetric = bool(symmetric)
        self._rng = to_rng(rng)

    @property
    def inner(self) -> DirectoryService:
        """The wrapped ground-truth directory."""
        return self._inner

    @property
    def num_procs(self) -> int:
        return self._inner.num_procs

    @property
    def time(self) -> float:
        return self._inner.time

    def advance(self, dt: float) -> None:
        self._inner.advance(dt)

    def true_snapshot(self) -> DirectorySnapshot:
        """The wrapped directory's noise-free view."""
        return self._inner.snapshot()

    def snapshot(self) -> DirectorySnapshot:
        return perturb_snapshot(
            self._inner.snapshot(),
            bandwidth_sigma=self._bandwidth_sigma,
            latency_sigma=self._latency_sigma,
            symmetric=self._symmetric,
            rng=self._rng,
        )
