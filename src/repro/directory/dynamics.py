"""Background-load processes for time-varying network performance.

Shared environments see continuously changing load (paper Section 1:
"Network conditions change continuously, and run-time loads cannot be
determined apriori").  A :class:`LoadProcess` produces a *load factor*
``f(t) >= 0``: the fraction of a link's capacity consumed by competing
traffic.  A link with raw bandwidth ``B`` and load ``f`` offers
``B / (1 + f)`` to the application — equivalent to the directory's
equal-division rule with ``f`` "phantom" competing flows — while latency
grows mildly with queueing as ``T * (1 + f)``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.util.rng import RngLike, to_rng
from repro.util.validation import check_positive


class LoadProcess(abc.ABC):
    """A stochastic process giving background load over time."""

    @abc.abstractmethod
    def load_at(self, time: float) -> float:
        """Load factor at absolute time ``time`` (seconds); >= 0."""

    def effective_bandwidth(self, raw: float, time: float) -> float:
        """Capacity left for the application at ``time``."""
        return raw / (1.0 + self.load_at(time))

    def effective_latency(self, raw: float, time: float) -> float:
        """Start-up cost inflated by queueing at ``time``."""
        return raw * (1.0 + self.load_at(time))


class StaticLoad(LoadProcess):
    """Constant background load."""

    def __init__(self, load: float = 0.0):
        self._load = check_positive("load", load, allow_zero=True)

    def load_at(self, time: float) -> float:
        return self._load


class RandomWalkLoad(LoadProcess):
    """Mean-reverting (Ornstein-Uhlenbeck-style) load in log space.

    ``log(load + eps)`` follows a discretised OU process sampled lazily on
    a fixed grid, so queries are deterministic for a given seed regardless
    of query order, and load stays non-negative with multiplicative
    fluctuations — the empirically typical shape of shared-link load.

    Parameters
    ----------
    mean:
        Long-run mean load factor.
    volatility:
        Step standard deviation in log space.
    reversion:
        Pull toward the mean per step, in (0, 1].
    step:
        Grid resolution in seconds.
    """

    def __init__(
        self,
        *,
        mean: float = 1.0,
        volatility: float = 0.3,
        reversion: float = 0.1,
        step: float = 1.0,
        rng: RngLike = None,
    ):
        self._log_mean = math.log(check_positive("mean", mean) + 1e-9)
        self._volatility = check_positive("volatility", volatility, allow_zero=True)
        if not (0 < reversion <= 1):
            raise ValueError(f"reversion must be in (0, 1], got {reversion}")
        self._reversion = reversion
        self._step = check_positive("step", step)
        self._rng = to_rng(rng)
        self._samples = [self._log_mean]

    def _extend_to(self, index: int) -> None:
        while len(self._samples) <= index:
            prev = self._samples[-1]
            nxt = (
                prev
                + self._reversion * (self._log_mean - prev)
                + self._volatility * self._rng.standard_normal()
            )
            self._samples.append(nxt)

    def load_at(self, time: float) -> float:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        index = int(time / self._step)
        self._extend_to(index)
        return float(math.exp(self._samples[index]))


class SpikeLoad(LoadProcess):
    """Poisson-arriving load spikes with exponential decay.

    Models bursty competing transfers: spikes of height ``magnitude``
    arrive at rate ``rate`` per second and decay with time constant
    ``decay`` seconds.  Spike times are pre-sampled over ``horizon``.
    """

    def __init__(
        self,
        *,
        rate: float = 0.05,
        magnitude: float = 4.0,
        decay: float = 10.0,
        base: float = 0.2,
        horizon: float = 3600.0,
        rng: RngLike = None,
    ):
        check_positive("rate", rate)
        self._magnitude = check_positive("magnitude", magnitude)
        self._decay = check_positive("decay", decay)
        self._base = check_positive("base", base, allow_zero=True)
        check_positive("horizon", horizon)
        rng = to_rng(rng)
        count = rng.poisson(rate * horizon)
        self._spike_times = np.sort(rng.uniform(0.0, horizon, size=count))

    def load_at(self, time: float) -> float:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        past = self._spike_times[self._spike_times <= time]
        decayed = np.exp(-(time - past) / self._decay)
        return float(self._base + self._magnitude * decayed.sum())


class DiurnalLoad(LoadProcess):
    """Sinusoidal load with a configurable period (daily cycle by default)."""

    def __init__(
        self,
        *,
        mean: float = 1.0,
        amplitude: float = 0.8,
        period: float = 86_400.0,
        phase: float = 0.0,
    ):
        self._mean = check_positive("mean", mean, allow_zero=True)
        self._amplitude = check_positive("amplitude", amplitude, allow_zero=True)
        if self._amplitude > self._mean:
            raise ValueError("amplitude must not exceed mean (load must stay >= 0)")
        self._period = check_positive("period", period)
        self._phase = float(phase)

    def load_at(self, time: float) -> float:
        return self._mean + self._amplitude * math.sin(
            2 * math.pi * time / self._period + self._phase
        )


class LoadDirectory(DirectoryService):
    """A directory whose answers are an inner directory under load.

    Applies one :class:`LoadProcess` uniformly to every off-diagonal
    pair: bandwidth shrinks to ``B / (1 + f(t))`` and latency inflates
    to ``T * (1 + f(t))`` — the same model
    :class:`~repro.directory.network_directory.TopologyDirectory`
    applies per link, here at the end-to-end pair level so any directory
    (static tables, GUSTO, traces) gains time variation without a
    topology.  The load is *real* competing traffic, not measurement
    error, so there is no separate ``true_snapshot``.
    """

    def __init__(self, inner: DirectoryService, process: LoadProcess):
        self._inner = inner
        self._process = process

    @property
    def inner(self) -> DirectoryService:
        return self._inner

    @property
    def num_procs(self) -> int:
        return self._inner.num_procs

    @property
    def time(self) -> float:
        return self._inner.time

    def advance(self, dt: float) -> None:
        self._inner.advance(dt)

    def snapshot(self) -> DirectorySnapshot:
        base = self._inner.snapshot()
        factor = 1.0 + check_positive(
            "load", self._process.load_at(self.time), allow_zero=True
        )
        off = ~np.eye(base.num_procs, dtype=bool)
        latency = np.where(off, base.latency * factor, base.latency)
        bandwidth = np.where(off, base.bandwidth / factor, base.bandwidth)
        return DirectorySnapshot(
            latency=latency, bandwidth=bandwidth, time=base.time
        )
