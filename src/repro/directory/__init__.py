"""Directory service: run-time network performance information.

Modelled on the Globus Metacomputing Directory Service (MDS) and the CMU
ReMoS API (paper Section 3.1): applications query current end-to-end
latency and bandwidth between any processor pair, and the answers change
over time as background load varies.

* :class:`~repro.directory.service.DirectoryService` — the query API;
* :class:`~repro.directory.service.DirectorySnapshot` — an immutable
  point-in-time view, the input to cost-matrix construction;
* :class:`~repro.directory.static.StaticDirectory` — fixed matrices
  (e.g. the GUSTO tables);
* :class:`~repro.directory.network_directory.TopologyDirectory` — derives
  answers from a link-level :class:`~repro.network.topology.Metacomputer`
  with per-link background-load processes;
* :mod:`repro.directory.dynamics` — background-load processes;
* :mod:`repro.directory.perturb` — pairwise perturbations of snapshots
  (for adaptivity experiments).
"""

from repro.directory.dynamics import (
    DiurnalLoad,
    LoadDirectory,
    LoadProcess,
    RandomWalkLoad,
    SpikeLoad,
    StaticLoad,
)
from repro.directory.factory import (
    DIRECTORY_FLAVOURS,
    make_directory,
    parse_directory_spec,
)
from repro.directory.forecast import (
    ForecastDirectory,
    SnapshotHistory,
    ewma_forecast,
    forecast_error,
    linear_forecast,
)
from repro.directory.network_directory import TopologyDirectory
from repro.directory.noisy import NoisyDirectory
from repro.directory.perturb import perturb_snapshot
from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.directory.static import StaticDirectory, gusto_directory

__all__ = [
    "DIRECTORY_FLAVOURS",
    "DirectoryService",
    "DirectorySnapshot",
    "DiurnalLoad",
    "ForecastDirectory",
    "LoadDirectory",
    "LoadProcess",
    "NoisyDirectory",
    "make_directory",
    "parse_directory_spec",
    "RandomWalkLoad",
    "SnapshotHistory",
    "SpikeLoad",
    "StaticDirectory",
    "StaticLoad",
    "TopologyDirectory",
    "ewma_forecast",
    "forecast_error",
    "gusto_directory",
    "linear_forecast",
    "perturb_snapshot",
]
