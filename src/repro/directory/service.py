"""Directory service API and snapshots."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.validation import check_index


@dataclass(frozen=True)
class DirectorySnapshot:
    """Immutable point-in-time view of pairwise network performance.

    Attributes
    ----------
    latency:
        ``[src, dst]`` start-up costs ``T_ij`` in seconds; zero diagonal.
    bandwidth:
        ``[src, dst]`` transfer rates ``B_ij`` in bytes/second; ``inf``
        diagonal (local copies are free under the paper's model).
    time:
        Directory clock at which the snapshot was taken, in seconds.
    """

    latency: np.ndarray
    bandwidth: np.ndarray
    time: float = 0.0

    def __post_init__(self) -> None:
        latency = np.asarray(self.latency, dtype=float)
        bandwidth = np.asarray(self.bandwidth, dtype=float)
        if latency.ndim != 2 or latency.shape[0] != latency.shape[1]:
            raise ValueError(f"latency must be square, got {latency.shape}")
        if bandwidth.shape != latency.shape:
            raise ValueError(
                f"bandwidth shape {bandwidth.shape} != latency shape "
                f"{latency.shape}"
            )
        if np.any(latency < 0) or np.any(np.isnan(latency)):
            raise ValueError("latencies must be non-negative and not NaN")
        if np.any(bandwidth <= 0):
            raise ValueError("bandwidths must be positive")
        latency = latency.copy()
        bandwidth = bandwidth.copy()
        latency.flags.writeable = False
        bandwidth.flags.writeable = False
        object.__setattr__(self, "latency", latency)
        object.__setattr__(self, "bandwidth", bandwidth)

    @property
    def num_procs(self) -> int:
        return self.latency.shape[0]

    def pair(self, src: int, dst: int) -> Tuple[float, float]:
        """``(T_ij, B_ij)`` for one ordered pair."""
        check_index("src", src, self.num_procs)
        check_index("dst", dst, self.num_procs)
        return float(self.latency[src, dst]), float(self.bandwidth[src, dst])

    def transfer_time(self, src: int, dst: int, size_bytes: float) -> float:
        """The paper's cost model for one message: ``T_ij + m / B_ij``."""
        if src == dst:
            return 0.0
        t, b = self.pair(src, dst)
        return t + size_bytes / b


class DirectoryService(abc.ABC):
    """Query interface for current network performance.

    Concrete directories answer per-pair queries against their *current*
    state and can be advanced in time; :meth:`snapshot` freezes the
    current state for schedule construction, matching the paper's usage
    ("schedules are developed at run-time, based on network performance
    information obtained from a directory service").
    """

    @property
    @abc.abstractmethod
    def num_procs(self) -> int:
        """Number of compute nodes known to the directory."""

    @property
    @abc.abstractmethod
    def time(self) -> float:
        """Current directory clock in seconds."""

    @abc.abstractmethod
    def snapshot(self) -> DirectorySnapshot:
        """Freeze current latency/bandwidth matrices."""

    @abc.abstractmethod
    def advance(self, dt: float) -> None:
        """Advance the directory clock by ``dt`` seconds, evolving load."""

    # Convenience per-pair queries (MDS-style API).

    def latency(self, src: int, dst: int) -> float:
        """Current start-up cost ``T_ij`` in seconds."""
        return self.snapshot().pair(src, dst)[0]

    def bandwidth(self, src: int, dst: int) -> float:
        """Current end-to-end bandwidth ``B_ij`` in bytes/second."""
        return self.snapshot().pair(src, dst)[1]
