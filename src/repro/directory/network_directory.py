"""Directory service derived from a link-level topology.

:class:`TopologyDirectory` answers MDS-style queries by routing through a
:class:`~repro.network.topology.Metacomputer` and applying per-link
background-load processes: end-to-end latency is the (load-inflated) sum
of link latencies, end-to-end bandwidth is the (load-deflated) bottleneck
link.  This is the "directory over a real substrate" used by the
adaptivity experiments and the fluid-simulation ablation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.directory.dynamics import LoadProcess, StaticLoad
from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.network.paths import all_paths
from repro.network.topology import Metacomputer

Edge = Tuple[str, str]


def _canonical(u: str, v: str) -> Edge:
    return (u, v) if u <= v else (v, u)


class TopologyDirectory(DirectoryService):
    """A directory whose answers come from a topology plus load processes.

    Parameters
    ----------
    system:
        The link-level metacomputer.
    load_factory:
        Called once per link (with the canonical edge) to create its
        background-load process; defaults to no load.  Pass e.g.
        ``lambda edge: RandomWalkLoad(rng=...)`` for stochastic drift.
    software_overhead:
        Fixed per-message software start-up cost added to every pair's
        latency (the 10-50 ms regime the paper quotes comes mostly from
        software overheads, not wire latency).
    """

    def __init__(
        self,
        system: Metacomputer,
        *,
        load_factory: Optional[Callable[[Edge], LoadProcess]] = None,
        software_overhead: float = 0.0,
    ):
        if system.num_procs == 0:
            raise ValueError("system has no compute nodes")
        if not system.is_connected():
            raise ValueError("system topology is not connected")
        self._system = system
        self._software_overhead = float(software_overhead)
        self._time = 0.0
        self._paths = all_paths(system)
        factory = load_factory or (lambda edge: StaticLoad(0.0))
        self._loads: Dict[Edge, LoadProcess] = {
            _canonical(u, v): factory(_canonical(u, v))
            for u, v, _ in system.links()
        }

    @property
    def system(self) -> Metacomputer:
        return self._system

    @property
    def num_procs(self) -> int:
        return self._system.num_procs

    @property
    def time(self) -> float:
        return self._time

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self._time += dt

    def link_conditions(self, edge: Edge) -> Tuple[float, float]:
        """Current effective ``(latency, bandwidth)`` of one link."""
        edge = _canonical(*edge)
        link = self._system.link(*edge)
        load = self._loads[edge]
        return (
            load.effective_latency(link.latency, self._time),
            load.effective_bandwidth(link.bandwidth, self._time),
        )

    def snapshot(self) -> DirectorySnapshot:
        n = self.num_procs
        latency = np.zeros((n, n))
        bandwidth = np.full((n, n), np.inf)
        # Evaluate each link once per snapshot, then aggregate per path.
        conditions = {
            edge: self.link_conditions(edge) for edge in self._loads
        }
        for (src, dst), info in self._paths.items():
            lat = self._software_overhead
            bw = np.inf
            for edge in info.edges:
                edge_lat, edge_bw = conditions[edge]
                lat += edge_lat
                bw = min(bw, edge_bw)
            latency[src, dst] = lat
            bandwidth[src, dst] = bw
        return DirectorySnapshot(latency=latency, bandwidth=bandwidth, time=self._time)
