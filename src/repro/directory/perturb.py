"""Pairwise perturbation of directory snapshots.

Adaptivity experiments (paper Sections 5 and 6.3) need "the same network,
a bit later": bandwidths drifted by some multiplicative factor, a few
pairs degraded sharply, and so on.  :func:`perturb_snapshot` produces a
new snapshot from an old one without touching the underlying directory.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.util.rng import RngLike, to_rng
from repro.util.validation import check_positive


def perturb_snapshot(
    snapshot: DirectorySnapshot,
    *,
    bandwidth_sigma: float = 0.0,
    latency_sigma: float = 0.0,
    degrade_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    degrade_factor: float = 1.0,
    symmetric: bool = True,
    time_delta: float = 0.0,
    rng: RngLike = None,
) -> DirectorySnapshot:
    """Return a multiplicatively perturbed copy of ``snapshot``.

    Parameters
    ----------
    bandwidth_sigma, latency_sigma:
        Standard deviations of log-normal multiplicative noise applied per
        pair (0 disables).
    degrade_pairs:
        Ordered pairs whose bandwidth is additionally divided by
        ``degrade_factor`` (e.g. a backbone link suddenly congested).
    degrade_factor:
        Must be >= 1; 1 means no targeted degradation.
    symmetric:
        Apply identical noise to ``(i, j)`` and ``(j, i)``.
    time_delta:
        Advance the snapshot's timestamp.
    """
    check_positive("bandwidth_sigma", bandwidth_sigma, allow_zero=True)
    check_positive("latency_sigma", latency_sigma, allow_zero=True)
    if degrade_factor < 1.0:
        raise ValueError(f"degrade_factor must be >= 1, got {degrade_factor}")
    rng = to_rng(rng)
    n = snapshot.num_procs

    def noise(sigma: float) -> np.ndarray:
        if sigma == 0.0:
            return np.ones((n, n))
        factors = np.exp(rng.normal(0.0, sigma, size=(n, n)))
        if symmetric:
            upper = np.triu_indices(n, k=1)
            factors.T[upper] = factors[upper]
        np.fill_diagonal(factors, 1.0)
        return factors

    latency = snapshot.latency * noise(latency_sigma)
    bandwidth = snapshot.bandwidth * noise(bandwidth_sigma)

    if degrade_pairs:
        bandwidth = bandwidth.copy()
        for src, dst in degrade_pairs:
            if src == dst:
                raise ValueError("cannot degrade a diagonal pair")
            bandwidth[src, dst] /= degrade_factor
            if symmetric:
                bandwidth[dst, src] /= degrade_factor

    np.fill_diagonal(latency, 0.0)
    return DirectorySnapshot(
        latency=latency,
        bandwidth=bandwidth,
        time=snapshot.time + time_delta,
    )
