"""One factory for every directory flavour (``make_scheduler``'s twin).

CLI consumers (``serve``, ``bench``, ``check``) and tests describe a
directory as a compact spec string — ``"static"``, ``"noisy:sigma=0.1"``,
``"dynamics:process=diurnal,period=40"``, ``"forecast:mode=linear"`` —
and :func:`make_directory` builds the corresponding
:class:`~repro.directory.service.DirectoryService`.  Wrapping flavours
(noisy, dynamics, forecast, drift) wrap a base flavour selected with the
``inner=`` option (``static`` by default, ``gusto`` for the paper's five
sites).

Spec grammar: ``name[:key=value[,key=value...]]``.  Values parse as
bool/int/float when they look like one, else stay strings.  Explicit
keyword arguments to :func:`make_directory` override spec-string
options.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.directory.dynamics import (
    DiurnalLoad,
    LoadDirectory,
    RandomWalkLoad,
    SpikeLoad,
    StaticLoad,
)
from repro.directory.forecast import ForecastDirectory
from repro.directory.noisy import NoisyDirectory
from repro.directory.perturb import perturb_snapshot
from repro.directory.service import DirectoryService
from repro.directory.static import StaticDirectory, gusto_directory
from repro.util.rng import RngLike, to_rng
from repro.util.spec import format_spec, parse_spec, parse_value

#: Spec names accepted by :func:`make_directory`.
DIRECTORY_FLAVOURS = (
    "static",
    "gusto",
    "noisy",
    "perturb",
    "dynamics",
    "forecast",
    "drift",
)

_LOAD_PROCESSES = {
    "static": StaticLoad,
    "walk": RandomWalkLoad,
    "spike": SpikeLoad,
    "diurnal": DiurnalLoad,
}


# Kept as an alias: tests and older call sites import the underscore name.
_parse_value = parse_value


def parse_directory_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """``"noisy:sigma=0.1" -> ("noisy", {"sigma": 0.1})``."""
    return parse_spec(
        spec, DIRECTORY_FLAVOURS,
        kind="directory", name_kind="directory flavour",
    )


def format_directory_spec(
    name: str, options: Optional[Dict[str, Any]] = None
) -> str:
    """Canonical inverse of :func:`parse_directory_spec`.

    ``parse_directory_spec(format_directory_spec(name, options))``
    recovers ``(name, options)`` exactly; unknown flavours are rejected
    with the same error the parser raises.
    """
    if name not in DIRECTORY_FLAVOURS:
        raise KeyError(
            f"unknown directory flavour {name!r}; "
            f"known: {', '.join(DIRECTORY_FLAVOURS)}"
        )
    return format_spec(name, options)


def _pop(options: Dict[str, Any], key: str, default: Any) -> Any:
    return options.pop(key) if key in options else default


def _base_directory(
    options: Dict[str, Any], num_procs: int, rng
) -> DirectoryService:
    """The ground-truth directory a wrapping flavour wraps."""
    inner = _pop(options, "inner", "static")
    if inner == "gusto":
        return gusto_directory()
    if inner != "static":
        raise ValueError(
            f"inner must be 'static' or 'gusto', got {inner!r}"
        )
    from repro.network.generators import random_pairwise_parameters

    latency, bandwidth = random_pairwise_parameters(num_procs, rng=rng)
    return StaticDirectory(latency, bandwidth)


def _reject_unknown(name: str, options: Dict[str, Any]) -> None:
    if options:
        raise TypeError(
            f"unknown option(s) {sorted(options)} for directory "
            f"flavour {name!r}"
        )


def make_directory(
    spec: str,
    *,
    num_procs: int = 8,
    rng: RngLike = None,
    **overrides: Any,
) -> DirectoryService:
    """Build a directory service from a compact spec string.

    Parameters
    ----------
    spec:
        ``name[:key=value,...]`` — one of :data:`DIRECTORY_FLAVOURS`:

        * ``static`` — fixed random pairwise tables (seeded by ``rng``);
        * ``gusto`` — the paper's five-site GUSTO tables;
        * ``noisy`` — measurement error on a base
          (``sigma``/``latency_sigma``/``symmetric``);
        * ``perturb`` — a one-shot multiplicatively perturbed static
          world (``sigma``, ``latency_sigma``, ``degrade_factor``);
        * ``dynamics`` — a base under a background-load process
          (``process`` in ``static|walk|spike|diurnal`` plus that
          process's own keywords);
        * ``forecast`` — plan on an EWMA/linear forecast of a base
          (``mode``, ``alpha``, ``horizon``, ``window``);
        * ``drift`` — the serve-style synthetic compounding drift trace
          (``ticks``, ``dt``, ``sigma``, ``burst_sigma``,
          ``burst_every``, ``seed``).

        Wrapping flavours accept ``inner=static|gusto``.
    num_procs:
        Size of generated base tables (ignored for ``gusto`` bases).
    rng:
        Seeds base generation and any stochastic wrapper.
    overrides:
        Keyword options merged over the spec string's (keywords win).
    """
    name, options = parse_directory_spec(spec)
    options.update(overrides)
    rng = to_rng(rng)

    if name == "static":
        directory = _base_directory({**options, "inner": "static"}, num_procs, rng)
        options.pop("inner", None)
        _reject_unknown(name, options)
        return directory

    if name == "gusto":
        _reject_unknown(name, options)
        return gusto_directory()

    if name == "noisy":
        sigma = _pop(options, "sigma", 0.2)
        latency_sigma = _pop(options, "latency_sigma", 0.0)
        symmetric = _pop(options, "symmetric", True)
        base = _base_directory(options, num_procs, rng)
        _reject_unknown(name, options)
        return NoisyDirectory(
            base,
            bandwidth_sigma=float(sigma),
            latency_sigma=float(latency_sigma),
            symmetric=bool(symmetric),
            rng=rng,
        )

    if name == "perturb":
        sigma = _pop(options, "sigma", 0.3)
        latency_sigma = _pop(options, "latency_sigma", 0.0)
        degrade_factor = _pop(options, "degrade_factor", 1.0)
        base = _base_directory(options, num_procs, rng)
        _reject_unknown(name, options)
        perturbed = perturb_snapshot(
            base.snapshot(),
            bandwidth_sigma=float(sigma),
            latency_sigma=float(latency_sigma),
            degrade_factor=float(degrade_factor),
            rng=rng,
        )
        return StaticDirectory(perturbed.latency, perturbed.bandwidth)

    if name == "dynamics":
        process_name = _pop(options, "process", "diurnal")
        process_cls = _LOAD_PROCESSES.get(process_name)
        if process_cls is None:
            raise KeyError(
                f"unknown load process {process_name!r}; "
                f"known: {', '.join(_LOAD_PROCESSES)}"
            )
        base = _base_directory(options, num_procs, rng)
        # Remaining options belong to the load process itself.
        if process_cls in (RandomWalkLoad, SpikeLoad):
            options.setdefault("rng", rng)
        try:
            process = process_cls(**options)
        except TypeError as exc:
            raise TypeError(
                f"bad option(s) for load process {process_name!r}: {exc}"
            ) from None
        return LoadDirectory(base, process)

    if name == "forecast":
        mode = _pop(options, "mode", "ewma")
        alpha = _pop(options, "alpha", 0.5)
        horizon = _pop(options, "horizon", 1.0)
        window = _pop(options, "window", 16)
        base = _base_directory(options, num_procs, rng)
        _reject_unknown(name, options)
        return ForecastDirectory(
            base,
            mode=str(mode),
            alpha=float(alpha),
            horizon=float(horizon),
            window=int(window),
        )

    # name == "drift"
    from repro.sim.replay import TraceDirectory, synthetic_drift_trace

    ticks = _pop(options, "ticks", 64)
    dt = _pop(options, "dt", 1.0)
    sigma = _pop(options, "sigma", 0.02)
    burst_sigma = _pop(options, "burst_sigma", 0.5)
    burst_every = _pop(options, "burst_every", 0)
    seed = _pop(options, "seed", 0)
    base = _base_directory(options, num_procs, rng)
    _reject_unknown(name, options)
    trace = synthetic_drift_trace(
        base.snapshot(),
        ticks=int(ticks),
        dt=float(dt),
        base_sigma=float(sigma),
        burst_sigma=float(burst_sigma),
        burst_every=int(burst_every),
        seed=int(seed),
    )
    return TraceDirectory(trace)
