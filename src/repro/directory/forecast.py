"""Directory forecasting: predicting network performance from history.

Section 6.3's premise is that directory information goes stale within a
collective.  The contemporaneous remedy (cf. the Network Weather
Service) is to *predict*: keep a short history of snapshots and
extrapolate each pair's bandwidth/latency to the moment the schedule
will actually run.  Planning on the forecast instead of the last
observation shrinks the estimate error the checkpointing machinery has
to absorb.

* :class:`SnapshotHistory` — a bounded deque of timestamped snapshots;
* :func:`ewma_forecast` — exponentially weighted moving average (a
  stable level estimator, the NWS default family);
* :func:`linear_forecast` — per-pair linear trend extrapolation, for
  drifting conditions;
* :func:`forecast_error` — mean relative error of a forecast against a
  realised snapshot, the metric the bench sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

import numpy as np

from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.util.validation import check_positive, check_probability


class SnapshotHistory:
    """A bounded, time-ordered window of directory snapshots."""

    def __init__(self, maxlen: int = 16):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._window: Deque[DirectorySnapshot] = deque(maxlen=maxlen)

    def push(self, snapshot: DirectorySnapshot) -> None:
        if self._window and snapshot.time < self._window[-1].time:
            raise ValueError(
                f"snapshot at t={snapshot.time} is older than the last "
                f"recorded one (t={self._window[-1].time})"
            )
        if self._window and snapshot.num_procs != self._window[-1].num_procs:
            raise ValueError("snapshot size changed mid-history")
        self._window.append(snapshot)

    def __len__(self) -> int:
        return len(self._window)

    @property
    def latest(self) -> DirectorySnapshot:
        if not self._window:
            raise ValueError("history is empty")
        return self._window[-1]

    def snapshots(self) -> Iterable[DirectorySnapshot]:
        return tuple(self._window)


def ewma_forecast(
    history: SnapshotHistory, *, alpha: float = 0.5
) -> DirectorySnapshot:
    """EWMA level forecast over the history window.

    ``alpha`` is the weight of newer observations; ``alpha -> 1``
    degenerates to "use the latest snapshot".  Infinite diagonal
    bandwidths pass through untouched.
    """
    check_probability("alpha", alpha)
    snapshots = list(history.snapshots())
    if not snapshots:
        raise ValueError("history is empty")
    latency = snapshots[0].latency.copy()
    bandwidth = snapshots[0].bandwidth.copy()
    for snapshot in snapshots[1:]:
        latency = (1 - alpha) * latency + alpha * snapshot.latency
        finite = np.isfinite(bandwidth) & np.isfinite(snapshot.bandwidth)
        # substitute zeros on the infinite (diagonal) entries so the
        # blend never produces 0 * inf = NaN, then restore them.
        blended = (1 - alpha) * np.where(finite, bandwidth, 0.0) + (
            alpha * np.where(finite, snapshot.bandwidth, 0.0)
        )
        bandwidth = np.where(finite, blended, snapshot.bandwidth)
    return DirectorySnapshot(
        latency=latency, bandwidth=bandwidth, time=snapshots[-1].time
    )


def linear_forecast(
    history: SnapshotHistory, horizon: float
) -> DirectorySnapshot:
    """Per-pair trend extrapolation ``horizon`` seconds ahead.

    Latencies get an ordinary least-squares linear trend (floored at 0).
    Bandwidths are fitted in **log space**: load changes multiply
    bandwidth rather than add to it (a halving is a halving whether the
    link is fast or slow), so geometric trends — the common case — are
    extrapolated exactly.  Falls back to the latest snapshot when fewer
    than two observations exist.
    """
    check_positive("horizon", horizon, allow_zero=True)
    snapshots = list(history.snapshots())
    if not snapshots:
        raise ValueError("history is empty")
    latest = snapshots[-1]
    if len(snapshots) < 2:
        return DirectorySnapshot(
            latency=latest.latency,
            bandwidth=latest.bandwidth,
            time=latest.time + horizon,
        )
    times = np.array([s.time for s in snapshots])
    t_pred = latest.time + horizon
    centered = times - times.mean()
    denom = float((centered**2).sum())

    def extrapolate(stack: np.ndarray) -> np.ndarray:
        mean = stack.mean(axis=0)
        if denom == 0:
            return mean
        slope = np.tensordot(centered, stack - mean, axes=(0, 0)) / denom
        return mean + slope * (t_pred - times.mean())

    latency = np.maximum(
        extrapolate(np.stack([s.latency for s in snapshots])), 0.0
    )
    bw_stack = np.stack([s.bandwidth for s in snapshots])
    finite = np.all(np.isfinite(bw_stack), axis=0) & np.all(
        bw_stack > 0, axis=0
    )
    log_pred = extrapolate(np.log(np.where(finite, bw_stack, 1.0)))
    # floor far below any real bandwidth: a collapsing trend predicts a
    # near-dead link, never a zero/negative one (which the snapshot type
    # rightly rejects).
    bandwidth = np.where(
        finite, np.maximum(np.exp(log_pred), 1e-12), latest.bandwidth
    )
    return DirectorySnapshot(
        latency=latency, bandwidth=bandwidth, time=t_pred
    )


class ForecastDirectory(DirectoryService):
    """A directory whose snapshots are *forecasts* of an inner directory.

    Implements the :class:`~repro.directory.service.DirectoryService`
    protocol: every :meth:`snapshot` first records the inner directory's
    current observation into a bounded :class:`SnapshotHistory`, then
    answers with a forecast over the window — EWMA level
    (``mode="ewma"``) or per-pair linear trend extrapolated ``horizon``
    seconds ahead (``mode="linear"``).  :meth:`true_snapshot` exposes
    the inner observation itself, so the adaptive runtime plans on the
    forecast and executes on the truth — forecast error shows up as
    regret, exactly like measurement noise does for
    :class:`~repro.directory.noisy.NoisyDirectory`.
    """

    def __init__(
        self,
        inner,
        *,
        mode: str = "ewma",
        alpha: float = 0.5,
        horizon: float = 1.0,
        window: int = 16,
    ):
        if mode not in ("ewma", "linear"):
            raise ValueError(
                f"mode must be 'ewma' or 'linear', got {mode!r}"
            )
        check_probability("alpha", alpha)
        check_positive("horizon", horizon, allow_zero=True)
        self._inner = inner
        self._mode = mode
        self._alpha = alpha
        self._horizon = horizon
        self._history = SnapshotHistory(maxlen=window)

    @property
    def inner(self):
        return self._inner

    @property
    def history(self) -> SnapshotHistory:
        return self._history

    @property
    def num_procs(self) -> int:
        return self._inner.num_procs

    @property
    def time(self) -> float:
        return self._inner.time

    def advance(self, dt: float) -> None:
        self._inner.advance(dt)

    def true_snapshot(self) -> DirectorySnapshot:
        """The inner directory's unforecast observation."""
        inner_true = getattr(self._inner, "true_snapshot", None)
        if inner_true is not None:
            return inner_true()
        return self._inner.snapshot()

    def snapshot(self) -> DirectorySnapshot:
        observed = self._inner.snapshot()
        if (
            len(self._history) == 0
            or observed.time > self._history.latest.time
        ):
            self._history.push(observed)
        if self._mode == "ewma":
            return ewma_forecast(self._history, alpha=self._alpha)
        return linear_forecast(self._history, self._horizon)


def forecast_error(
    forecast: DirectorySnapshot, realised: DirectorySnapshot
) -> float:
    """Mean relative bandwidth error of ``forecast`` vs ``realised``."""
    if forecast.num_procs != realised.num_procs:
        raise ValueError("snapshots differ in size")
    mask = np.isfinite(realised.bandwidth) & ~np.eye(
        realised.num_procs, dtype=bool
    )
    if not mask.any():
        return 0.0
    rel = np.abs(
        forecast.bandwidth[mask] - realised.bandwidth[mask]
    ) / realised.bandwidth[mask]
    return float(rel.mean())
