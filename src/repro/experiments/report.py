"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.experiments.harness import SweepResult
from repro.experiments.quality import QualityStats
from repro.util.tables import format_series, format_table


def render_sweep(result: SweepResult, *, precision: int = 3) -> str:
    """The figure's series: completion time per algorithm vs P, plus LB."""
    series: Dict[str, tuple] = {"lower_bound": result.lower_bound}
    series.update(result.completion)
    title = (
        f"workload={result.workload}  trials={result.trials}  "
        "(mean completion time, seconds)"
    )
    return format_series(
        "P", result.proc_counts, series, precision=precision, title=title
    )


def render_improvement(result: SweepResult, *, precision: int = 2) -> str:
    """Speedup of each non-baseline algorithm over the baseline, per P."""
    series = {
        name: result.improvement_over_baseline(name)
        for name in result.completion
        if name != "baseline"
    }
    return format_series(
        "P",
        result.proc_counts,
        series,
        precision=precision,
        title=f"workload={result.workload}  (speedup over baseline)",
    )


def render_quality(
    stats: Mapping[str, QualityStats], *, precision: int = 3
) -> str:
    """Ratio-to-lower-bound summary, one row per algorithm."""
    rows = [
        [
            s.algorithm,
            s.samples,
            s.min_ratio,
            s.mean_ratio,
            s.geo_mean_ratio,
            s.max_ratio,
            s.max_excess_percent,
        ]
        for s in stats.values()
    ]
    return format_table(
        ["algorithm", "n", "min", "mean", "geo mean", "max",
         "worst % over LB"],
        rows,
        precision=precision,
        title="schedule quality relative to the lower bound",
    )
