"""Experiment harness reproducing the paper's Section 5 evaluation.

* :mod:`repro.experiments.harness` — seeded parameter sweeps over
  processor counts and workloads;
* :mod:`repro.experiments.figures` — one driver per paper figure
  (Figures 9-12);
* :mod:`repro.experiments.quality` — the Section 5 ratio-to-lower-bound
  quality claims;
* :mod:`repro.experiments.report` — plain-text rendering of results;
* :mod:`repro.experiments.runtime_sweep` — adaptivity gain of the
  online serving runtime vs never/always replanning.
"""

from repro.experiments.figures import (
    FIGURE_DRIVERS,
    figure09_small_messages,
    figure10_large_messages,
    figure11_mixed_messages,
    figure12_servers,
)
from repro.experiments.harness import SweepResult, run_sweep
from repro.experiments.quality import QualityStats, quality_stats
from repro.experiments.report import render_quality, render_sweep
from repro.experiments.runtime_sweep import (
    RuntimeSweepResult,
    SERVE_POLICIES,
    run_runtime_sweep,
)

__all__ = [
    "FIGURE_DRIVERS",
    "QualityStats",
    "RuntimeSweepResult",
    "SERVE_POLICIES",
    "SweepResult",
    "figure09_small_messages",
    "figure10_large_messages",
    "figure11_mixed_messages",
    "figure12_servers",
    "quality_stats",
    "render_quality",
    "render_sweep",
    "run_runtime_sweep",
    "run_sweep",
]
