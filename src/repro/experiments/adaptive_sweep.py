"""Sweeps for the adaptivity experiments (paper Section 6.3).

How much does checkpoint rescheduling buy as a function of how hard the
network moves?  For each drift magnitude (log-normal sigma applied to
every pair's bandwidth shortly after the collective starts), run the
stale plan and the checkpointing policies over several trials and report
mean completion times and the adaptivity gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

import repro
from repro.adaptive.checkpoint import (
    CheckpointPolicy,
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.core.openshop import schedule_openshop
from repro.directory.service import DirectorySnapshot
from repro.model.messages import MixedSizes
from repro.util.rng import stable_seed, to_rng


@dataclass(frozen=True)
class AdaptiveSweepResult:
    """Mean completion times per (drift sigma, policy)."""

    sigmas: Tuple[float, ...]
    num_procs: int
    trials: int
    completion: Dict[str, Tuple[float, ...]]  # policy -> per-sigma means
    post_drift_lb: Tuple[float, ...]

    def gain(self, policy: str) -> Tuple[float, ...]:
        """Completion-time reduction of ``policy`` vs no checkpoints."""
        stale = self.completion["none"]
        ours = self.completion[policy]
        return tuple(
            (s - o) / s if s > 0 else 0.0 for s, o in zip(stale, ours)
        )


def run_adaptive_sweep(
    *,
    sigmas: Sequence[float] = (0.0, 0.4, 0.8, 1.2, 1.6),
    num_procs: int = 12,
    trials: int = 5,
    drift_fraction: float = 0.1,
    seed: int = 0,
) -> AdaptiveSweepResult:
    """Drift-magnitude sweep of the checkpointing policies.

    ``drift_fraction`` places the reshuffle at that fraction of the
    planned completion time.  Policies compared: none, every-P events
    (O(P) checkpoints), halving (O(log P)).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    policies: Dict[str, CheckpointPolicy] = {
        "none": NoCheckpoints(),
        "every_p": EveryKEvents(num_procs),
        "halving": HalvingCheckpoints(),
    }
    completion: Dict[str, list] = {name: [] for name in policies}
    lbs = []
    for sigma in sigmas:
        per_policy = {name: [] for name in policies}
        per_sigma_lb = []
        for trial in range(trials):
            rng = to_rng(stable_seed("adaptive-sweep", seed, sigma, trial))
            latency, bandwidth = repro.random_pairwise_parameters(
                num_procs, rng=rng
            )
            snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
            sizes = MixedSizes().sizes(num_procs, rng=rng)
            estimate = repro.TotalExchangeProblem.from_snapshot(
                snapshot, sizes
            )
            drift_at = (
                drift_fraction * schedule_openshop(estimate).completion_time
            )
            moved = repro.perturb_snapshot(
                snapshot, bandwidth_sigma=sigma, rng=rng
            )
            actual = repro.TotalExchangeProblem.from_snapshot(moved, sizes)
            per_sigma_lb.append(actual.lower_bound())
            provider = piecewise_cost_provider(
                [0.0, drift_at], [estimate.cost, actual.cost]
            )
            for name, policy in policies.items():
                result = run_adaptive(estimate, provider, policy=policy)
                per_policy[name].append(result.completion_time)
        lbs.append(float(np.mean(per_sigma_lb)))
        for name in policies:
            completion[name].append(float(np.mean(per_policy[name])))
    return AdaptiveSweepResult(
        sigmas=tuple(float(s) for s in sigmas),
        num_procs=num_procs,
        trials=trials,
        completion={k: tuple(v) for k, v in completion.items()},
        post_drift_lb=tuple(lbs),
    )
