"""Drivers for the paper's Figures 9-12.

Each driver runs the corresponding Section 5 simulation: completion time
versus processor count (up to 50) for the baseline, max/min matching,
greedy, and open shop schedulers, on the figure's workload:

* Figure 9 — uniform small messages (1 kB);
* Figure 10 — uniform large messages (1 MB);
* Figure 11 — random mix of 1 kB / 1 MB messages;
* Figure 12 — 20 % of processors are servers sending 1 MB to every
  client; all other messages are 1 kB.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.experiments.harness import DEFAULT_PROC_COUNTS, SweepResult, run_sweep
from repro.model.messages import MixedSizes, ServerClientSizes, UniformSizes
from repro.util.units import KILOBYTE, MEGABYTE


def figure09_small_messages(
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    seed: int = 0,
) -> SweepResult:
    """Figure 9: all-to-all with small (1 kB) messages."""
    return run_sweep(
        "fig09-small",
        UniformSizes(KILOBYTE),
        proc_counts=proc_counts,
        trials=trials,
        seed=seed,
    )


def figure10_large_messages(
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    seed: int = 0,
) -> SweepResult:
    """Figure 10: all-to-all with large (1 MB) messages."""
    return run_sweep(
        "fig10-large",
        UniformSizes(MEGABYTE),
        proc_counts=proc_counts,
        trials=trials,
        seed=seed,
    )


def figure11_mixed_messages(
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    seed: int = 0,
) -> SweepResult:
    """Figure 11: all-to-all with a random 1 kB / 1 MB mix."""
    return run_sweep(
        "fig11-mixed",
        MixedSizes(KILOBYTE, MEGABYTE, small_probability=0.5),
        proc_counts=proc_counts,
        trials=trials,
        seed=seed,
    )


def figure12_servers(
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    seed: int = 0,
) -> SweepResult:
    """Figure 12: 20 % of the processors are multimedia servers."""
    return run_sweep(
        "fig12-servers",
        ServerClientSizes(server_fraction=0.2,
                          large_bytes=MEGABYTE, small_bytes=KILOBYTE),
        proc_counts=proc_counts,
        trials=trials,
        seed=seed,
    )


#: Figure id -> driver, for the CLI and benches.
FIGURE_DRIVERS: Dict[str, Callable[..., SweepResult]] = {
    "9": figure09_small_messages,
    "10": figure10_large_messages,
    "11": figure11_mixed_messages,
    "12": figure12_servers,
}
