"""Seeded parameter sweeps over processor counts and workloads.

Reproduces the paper's simulation methodology (Section 5): for each
processor count, generate random pairwise network characteristics using
the GUSTO directory values as a guideline, build the communication matrix
for the workload's message sizes, run every scheduling algorithm, and
record completion times alongside the lower bound.

Every (workload, P, trial) cell gets its own deterministic RNG stream, so
results are reproducible and independent of evaluation order, and all
algorithms see the *same* instances.  That per-cell seeding is also what
makes the sweep embarrassingly parallel: ``run_sweep(..., workers=N)``
farms cells out to a process pool and reassembles results in the same
nested order as the serial loop, so parallel output is bit-identical to
serial output.
"""

from __future__ import annotations

import concurrent.futures

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.core.registry import Scheduler, iter_specs
from repro.directory.service import DirectorySnapshot
from repro.model.messages import SizeSpec
from repro.network.generators import random_pairwise_parameters
from repro.util.rng import stable_seed, to_rng

#: The sweep defaults follow the paper: "systems with up to 50 processors".
DEFAULT_PROC_COUNTS: Tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class SweepResult:
    """Results of one workload sweep.

    ``completion[name][k]`` is the mean completion time of algorithm
    ``name`` at ``proc_counts[k]``; ``ratio_samples[name]`` pools the
    per-instance completion/lower-bound ratios across the whole sweep;
    ``raw[name][k]`` keeps the per-trial completion times behind each
    mean so confidence intervals can be computed after the fact.
    """

    workload: str
    proc_counts: Tuple[int, ...]
    trials: int
    completion: Dict[str, Tuple[float, ...]]
    lower_bound: Tuple[float, ...]
    ratio_samples: Dict[str, Tuple[float, ...]]
    raw: Dict[str, Tuple[Tuple[float, ...], ...]]

    def mean_ratio(self, name: str) -> float:
        samples = self.ratio_samples[name]
        return float(np.mean(samples))

    def max_ratio(self, name: str) -> float:
        return float(np.max(self.ratio_samples[name]))

    def completion_interval(self, name: str, *, confidence: float = 0.95):
        """Per-P :class:`~repro.util.stats.MeanCI` of the completion time."""
        from repro.util.stats import mean_ci

        return tuple(
            mean_ci(samples, confidence=confidence)
            for samples in self.raw[name]
        )

    def improvement_over_baseline(self, name: str) -> Tuple[float, ...]:
        """Per-P speedup of ``name`` over the baseline algorithm."""
        if "baseline" not in self.completion:
            raise KeyError("sweep did not include the baseline algorithm")
        base = self.completion["baseline"]
        ours = self.completion[name]
        return tuple(b / o if o > 0 else 1.0 for b, o in zip(base, ours))


def _sweep_cell(
    workload: str,
    size_spec: SizeSpec,
    seed: int,
    num_procs: int,
    trial: int,
    algorithms: Mapping[str, Scheduler],
    gen_kwargs: Dict[str, Tuple[float, float]],
    memoize: bool,
) -> Tuple[float, Dict[str, float]]:
    """One (P, trial) cell: build the instance, run every algorithm.

    Module-level (not a closure) so a process pool can pickle it; the
    cell is fully determined by its arguments via the stable per-cell
    seed, which is what makes parallel execution bit-identical to
    serial.
    """
    rng = to_rng(stable_seed(workload, seed, num_procs, trial))
    latency, bandwidth = random_pairwise_parameters(
        num_procs, rng=rng, **gen_kwargs
    )
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = TotalExchangeProblem.from_snapshot(snapshot, size_spec, rng=rng)
    if memoize:
        from repro.perf.memo import default_schedule_cache, lower_bound_cached

        cache = default_schedule_cache()
        lb = lower_bound_cached(problem)
        times = {
            name: cache.get_or_compute(problem, scheduler, name=name)
            .completion_time
            for name, scheduler in algorithms.items()
        }
    else:
        lb = problem.lower_bound()
        times = {
            name: scheduler(problem).completion_time
            for name, scheduler in algorithms.items()
        }
    return lb, times


def run_sweep(
    workload: str,
    size_spec: SizeSpec,
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    algorithms: Optional[Mapping[str, Scheduler]] = None,
    seed: int = 0,
    latency_range: Optional[Tuple[float, float]] = None,
    bandwidth_range: Optional[Tuple[float, float]] = None,
    workers: Optional[int] = None,
    memoize: bool = False,
) -> SweepResult:
    """Run the Section 5 sweep for one workload.

    Parameters
    ----------
    workload:
        Label folded into each cell's RNG seed (and into reports).
    size_spec:
        Message-size generator for the workload.
    trials:
        Independent random networks per processor count; means are
        reported, ratio samples are pooled.
    algorithms:
        Defaults to the paper's five (baseline, max/min matching, greedy,
        open shop).
    latency_range / bandwidth_range:
        Forwarded to the GUSTO-guided generator when given.
    workers:
        When given (> 1), run the (P, trial) cells on a process pool of
        that size.  Cells are seeded independently and results are
        reassembled in serial order, so the output is bit-identical to a
        serial run; schedulers and the size spec must be picklable
        (registry schedulers and the built-in size specs are).
    memoize:
        Answer repeated instances from :mod:`repro.perf.memo`'s
        process-wide schedule/lower-bound caches.  Worth it when the
        same sweep cells are re-run in one process (e.g. regenerating
        figures); with ``workers`` the caches are per worker process.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    algorithms = (
        dict(algorithms)
        if algorithms is not None
        else {spec.name: spec.fn for spec in iter_specs(tier="paper")}
    )

    gen_kwargs = {}
    if latency_range is not None:
        gen_kwargs["latency_range"] = latency_range
    if bandwidth_range is not None:
        gen_kwargs["bandwidth_range"] = bandwidth_range

    completion: Dict[str, List[float]] = {name: [] for name in algorithms}
    ratio_samples: Dict[str, List[float]] = {name: [] for name in algorithms}
    raw: Dict[str, List[Tuple[float, ...]]] = {name: [] for name in algorithms}
    lower_bounds: List[float] = []

    cells = [
        (int(num_procs), trial)
        for num_procs in proc_counts
        for trial in range(trials)
    ]
    if workers is not None and workers > 1 and len(cells) > 1:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = [
                pool.submit(
                    _sweep_cell, workload, size_spec, seed, num_procs,
                    trial, algorithms, gen_kwargs, memoize,
                )
                for num_procs, trial in cells
            ]
            cell_results = [future.result() for future in futures]
    else:
        cell_results = [
            _sweep_cell(
                workload, size_spec, seed, num_procs, trial,
                algorithms, gen_kwargs, memoize,
            )
            for num_procs, trial in cells
        ]

    # Reassemble in the serial nested order (P-major, trial-minor): the
    # cell list and pool.map both preserve order, so this aggregation is
    # identical for serial and parallel runs.
    results_by_cell = dict(zip(cells, cell_results))
    for num_procs in proc_counts:
        per_alg_times = {name: [] for name in algorithms}
        per_p_lbs = []
        for trial in range(trials):
            lb, times = results_by_cell[(int(num_procs), trial)]
            per_p_lbs.append(lb)
            for name in algorithms:
                t = times[name]
                per_alg_times[name].append(t)
                ratio_samples[name].append(t / lb if lb > 0 else 1.0)
        lower_bounds.append(float(np.mean(per_p_lbs)))
        for name in algorithms:
            completion[name].append(float(np.mean(per_alg_times[name])))
            raw[name].append(tuple(per_alg_times[name]))

    return SweepResult(
        workload=workload,
        proc_counts=tuple(int(p) for p in proc_counts),
        trials=trials,
        completion={k: tuple(v) for k, v in completion.items()},
        lower_bound=tuple(lower_bounds),
        ratio_samples={k: tuple(v) for k, v in ratio_samples.items()},
        raw={k: tuple(v) for k, v in raw.items()},
    )
