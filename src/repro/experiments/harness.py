"""Seeded parameter sweeps over processor counts and workloads.

Reproduces the paper's simulation methodology (Section 5): for each
processor count, generate random pairwise network characteristics using
the GUSTO directory values as a guideline, build the communication matrix
for the workload's message sizes, run every scheduling algorithm, and
record completion times alongside the lower bound.

Every (workload, P, trial) cell gets its own deterministic RNG stream, so
results are reproducible and independent of evaluation order, and all
algorithms see the *same* instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.core.registry import ALL_SCHEDULERS, Scheduler
from repro.directory.service import DirectorySnapshot
from repro.model.messages import SizeSpec
from repro.network.generators import random_pairwise_parameters
from repro.util.rng import stable_seed, to_rng

#: The sweep defaults follow the paper: "systems with up to 50 processors".
DEFAULT_PROC_COUNTS: Tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class SweepResult:
    """Results of one workload sweep.

    ``completion[name][k]`` is the mean completion time of algorithm
    ``name`` at ``proc_counts[k]``; ``ratio_samples[name]`` pools the
    per-instance completion/lower-bound ratios across the whole sweep;
    ``raw[name][k]`` keeps the per-trial completion times behind each
    mean so confidence intervals can be computed after the fact.
    """

    workload: str
    proc_counts: Tuple[int, ...]
    trials: int
    completion: Dict[str, Tuple[float, ...]]
    lower_bound: Tuple[float, ...]
    ratio_samples: Dict[str, Tuple[float, ...]]
    raw: Dict[str, Tuple[Tuple[float, ...], ...]]

    def mean_ratio(self, name: str) -> float:
        samples = self.ratio_samples[name]
        return float(np.mean(samples))

    def max_ratio(self, name: str) -> float:
        return float(np.max(self.ratio_samples[name]))

    def completion_interval(self, name: str, *, confidence: float = 0.95):
        """Per-P :class:`~repro.util.stats.MeanCI` of the completion time."""
        from repro.util.stats import mean_ci

        return tuple(
            mean_ci(samples, confidence=confidence)
            for samples in self.raw[name]
        )

    def improvement_over_baseline(self, name: str) -> Tuple[float, ...]:
        """Per-P speedup of ``name`` over the baseline algorithm."""
        if "baseline" not in self.completion:
            raise KeyError("sweep did not include the baseline algorithm")
        base = self.completion["baseline"]
        ours = self.completion[name]
        return tuple(b / o if o > 0 else 1.0 for b, o in zip(base, ours))


def run_sweep(
    workload: str,
    size_spec: SizeSpec,
    *,
    proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
    trials: int = 3,
    algorithms: Optional[Mapping[str, Scheduler]] = None,
    seed: int = 0,
    latency_range: Optional[Tuple[float, float]] = None,
    bandwidth_range: Optional[Tuple[float, float]] = None,
) -> SweepResult:
    """Run the Section 5 sweep for one workload.

    Parameters
    ----------
    workload:
        Label folded into each cell's RNG seed (and into reports).
    size_spec:
        Message-size generator for the workload.
    trials:
        Independent random networks per processor count; means are
        reported, ratio samples are pooled.
    algorithms:
        Defaults to the paper's five (baseline, max/min matching, greedy,
        open shop).
    latency_range / bandwidth_range:
        Forwarded to the GUSTO-guided generator when given.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    algorithms = dict(algorithms) if algorithms is not None else dict(ALL_SCHEDULERS)

    gen_kwargs = {}
    if latency_range is not None:
        gen_kwargs["latency_range"] = latency_range
    if bandwidth_range is not None:
        gen_kwargs["bandwidth_range"] = bandwidth_range

    completion: Dict[str, List[float]] = {name: [] for name in algorithms}
    ratio_samples: Dict[str, List[float]] = {name: [] for name in algorithms}
    raw: Dict[str, List[Tuple[float, ...]]] = {name: [] for name in algorithms}
    lower_bounds: List[float] = []

    for num_procs in proc_counts:
        per_alg_times = {name: [] for name in algorithms}
        per_p_lbs = []
        for trial in range(trials):
            rng = to_rng(stable_seed(workload, seed, num_procs, trial))
            latency, bandwidth = random_pairwise_parameters(
                num_procs, rng=rng, **gen_kwargs
            )
            snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
            problem = TotalExchangeProblem.from_snapshot(
                snapshot, size_spec, rng=rng
            )
            lb = problem.lower_bound()
            per_p_lbs.append(lb)
            for name, scheduler in algorithms.items():
                t = scheduler(problem).completion_time
                per_alg_times[name].append(t)
                ratio_samples[name].append(t / lb if lb > 0 else 1.0)
        lower_bounds.append(float(np.mean(per_p_lbs)))
        for name in algorithms:
            completion[name].append(float(np.mean(per_alg_times[name])))
            raw[name].append(tuple(per_alg_times[name]))

    return SweepResult(
        workload=workload,
        proc_counts=tuple(int(p) for p in proc_counts),
        trials=trials,
        completion={k: tuple(v) for k, v in completion.items()},
        lower_bound=tuple(lower_bounds),
        ratio_samples={k: tuple(v) for k, v in ratio_samples.items()},
        raw={k: tuple(v) for k, v in raw.items()},
    )
