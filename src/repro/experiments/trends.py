"""Trend analysis over sweep results.

The figures' most important *shape* is not any single number but the
slopes: the baseline's ratio to the lower bound grows with the system
size while the adaptive algorithms stay flat.  This module fits those
trends so benches can assert them mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.harness import SweepResult


@dataclass(frozen=True)
class RatioTrend:
    """Least-squares fit of (ratio to LB) against processor count."""

    algorithm: str
    slope_per_processor: float
    intercept: float
    ratio_at_min_p: float
    ratio_at_max_p: float

    @property
    def grows(self) -> bool:
        """True when quality degrades noticeably with scale."""
        return self.slope_per_processor > 1e-4

    @property
    def flat(self) -> bool:
        """True when quality is essentially scale-independent.

        Threshold 2e-3 per processor: under 10 % quality drift across
        the paper's whole P = 5..50 range.
        """
        return abs(self.slope_per_processor) <= 2e-3


def ratio_trends(result: SweepResult) -> Dict[str, RatioTrend]:
    """Fit a per-algorithm linear trend of mean ratio vs P."""
    procs = np.asarray(result.proc_counts, dtype=float)
    if procs.size < 2:
        raise ValueError("need at least two processor counts for a trend")
    trends: Dict[str, RatioTrend] = {}
    for name, series in result.completion.items():
        ratios = np.asarray(series) / np.asarray(result.lower_bound)
        slope, intercept = np.polyfit(procs, ratios, 1)
        trends[name] = RatioTrend(
            algorithm=name,
            slope_per_processor=float(slope),
            intercept=float(intercept),
            ratio_at_min_p=float(ratios[0]),
            ratio_at_max_p=float(ratios[-1]),
        )
    return trends
