"""Adaptivity-gain sweep through the serving runtime (Section 6 online).

The checkpoint sweep (:mod:`repro.experiments.adaptive_sweep`) measures
one collective interrupted mid-flight.  This sweep measures the
*serving* story instead: a long-lived :class:`repro.runtime.AdaptiveSession`
facing a compounding drift trace, compared against the two degenerate
policies that bracket it —

* ``never`` — plan once, reuse forever (the stale-plan strawman);
* ``adaptive`` — the default reuse/refine/reschedule thresholds;
* ``always`` — recompute from scratch every tick (the quality ceiling,
  at maximum scheduling cost).

For each drift magnitude we report the mean executed makespan, the mean
predicted-vs-executed regret, and the scheduling effort (ticks that ran
the scheduler or the refiner) — the quality/effort trade-off the
adaptive policy is supposed to win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.model.messages import MixedSizes
from repro.network.generators import random_pairwise_parameters
from repro.runtime import AdaptiveSession, PolicyConfig
from repro.sim.replay import TraceDirectory, synthetic_drift_trace
from repro.util.rng import stable_seed, to_rng

#: The serving policies bracketing the adaptive one.
SERVE_POLICIES: Dict[str, PolicyConfig] = {
    "never": PolicyConfig(
        reuse_threshold=float("inf"),
        refine_threshold=float("inf"),
        repair_threshold=float("inf"),
        max_reuse_ticks=10**9,
        max_plan_age_ticks=10**9,
    ),
    "adaptive": PolicyConfig(),
    # repair_threshold=0 keeps "always" a pure full-reschedule ceiling:
    # localised drift must not be diverted to the cheaper repair tier.
    "always": PolicyConfig(
        reuse_threshold=0.0, refine_threshold=0.0, repair_threshold=0.0
    ),
}


@dataclass(frozen=True)
class RuntimeSweepResult:
    """Per-(sigma, policy) serving outcomes, averaged over trials."""

    sigmas: Tuple[float, ...]
    num_procs: int
    ticks: int
    trials: int
    executed: Dict[str, Tuple[float, ...]]  # policy -> mean makespan
    regret: Dict[str, Tuple[float, ...]]  # policy -> mean |regret|
    effort: Dict[str, Tuple[float, ...]]  # policy -> mean scheduling ticks

    def gain(self, policy: str = "adaptive") -> Tuple[float, ...]:
        """Executed-makespan reduction of ``policy`` vs never replanning."""
        stale = self.executed["never"]
        ours = self.executed[policy]
        return tuple(
            (s - o) / s if s > 0 else 0.0 for s, o in zip(stale, ours)
        )


def run_runtime_sweep(
    *,
    sigmas: Sequence[float] = (0.0, 0.1, 0.3),
    num_procs: int = 8,
    ticks: int = 12,
    trials: int = 3,
    burst_every: int = 0,
    scheduler: str = "openshop",
    seed: int = 0,
) -> RuntimeSweepResult:
    """Serve the same drift traces under each policy and compare.

    Every policy sees byte-identical traces and message sizes (seeded
    per ``(sigma, trial)``), so differences are purely the policy's.
    ``sigmas`` are the per-tick drift magnitudes of the compounding
    random walk (:func:`repro.sim.replay.synthetic_drift_trace`).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    executed: Dict[str, list] = {name: [] for name in SERVE_POLICIES}
    regret: Dict[str, list] = {name: [] for name in SERVE_POLICIES}
    effort: Dict[str, list] = {name: [] for name in SERVE_POLICIES}
    for sigma in sigmas:
        per = {
            name: {"executed": [], "regret": [], "effort": []}
            for name in SERVE_POLICIES
        }
        for trial in range(trials):
            rng = to_rng(stable_seed("runtime-sweep", seed, sigma, trial))
            latency, bandwidth = random_pairwise_parameters(
                num_procs, rng=rng
            )
            base = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
            sizes = MixedSizes().sizes(num_procs, rng=rng)
            trace = synthetic_drift_trace(
                base,
                ticks=ticks,
                base_sigma=float(sigma),
                burst_every=burst_every,
                seed=stable_seed("runtime-sweep-trace", seed, sigma, trial),
            )
            for name, policy in SERVE_POLICIES.items():
                session = AdaptiveSession(
                    TraceDirectory(trace),
                    sizes,
                    scheduler=scheduler,
                    policy=policy,
                )
                results = [session.tick(dt=0.0)]
                results += [session.tick(dt=1.0) for _ in range(ticks - 1)]
                events = [r.event for r in results]
                per[name]["executed"].append(
                    float(np.mean([e.executed_makespan for e in events]))
                )
                per[name]["regret"].append(
                    float(np.mean([abs(e.regret) for e in events]))
                )
                summary = session.summary()
                per[name]["effort"].append(
                    float(
                        summary["decisions"]["reschedule"]
                        + summary["decisions"]["refine"]
                    )
                )
        for name in SERVE_POLICIES:
            executed[name].append(float(np.mean(per[name]["executed"])))
            regret[name].append(float(np.mean(per[name]["regret"])))
            effort[name].append(float(np.mean(per[name]["effort"])))
    return RuntimeSweepResult(
        sigmas=tuple(float(s) for s in sigmas),
        num_procs=num_procs,
        ticks=ticks,
        trials=trials,
        executed={k: tuple(v) for k, v in executed.items()},
        regret={k: tuple(v) for k, v in regret.items()},
        effort={k: tuple(v) for k, v in effort.items()},
    )
