"""Section 5 quality claims: schedule quality relative to the lower bound.

The paper's text summarises the figures with ratio-to-lower-bound claims:
open shop within 10 % (often 2 %), matchings within ~15 %, greedy within
~25 %, baseline up to 6x.  :func:`quality_stats` computes those ratios
from sweep results so the claims can be checked mechanically (see
``benchmarks/test_sec5_quality_claims.py`` and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.experiments.harness import SweepResult
from repro.util.stats import geometric_mean


@dataclass(frozen=True)
class QualityStats:
    """Ratio-to-lower-bound statistics for one algorithm."""

    algorithm: str
    samples: int
    min_ratio: float
    mean_ratio: float
    geo_mean_ratio: float
    max_ratio: float

    @property
    def max_excess_percent(self) -> float:
        """Worst-case percentage above the lower bound."""
        return (self.max_ratio - 1.0) * 100.0


def quality_stats(
    results: Iterable[SweepResult],
) -> Dict[str, QualityStats]:
    """Pool ratio samples across sweeps, per algorithm."""
    pooled: Dict[str, list] = {}
    for result in results:
        for name, samples in result.ratio_samples.items():
            pooled.setdefault(name, []).extend(samples)
    stats = {}
    for name, samples in pooled.items():
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError(f"no samples for algorithm {name!r}")
        stats[name] = QualityStats(
            algorithm=name,
            samples=int(arr.size),
            min_ratio=float(arr.min()),
            mean_ratio=float(arr.mean()),
            geo_mean_ratio=geometric_mean(arr.tolist()),
            max_ratio=float(arr.max()),
        )
    return stats
