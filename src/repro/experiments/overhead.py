"""Scheduling-overhead break-even analysis (paper Section 6.2 motivation).

"The overhead for repeatedly calculating the communication schedule at
run-time can be expensive, especially when the number of processors is
large."  This module quantifies the trade the paper is worried about:
the wall-clock cost of *computing* a schedule against the simulated
communication time it saves over the baseline.  The break-even message
size is where savings start covering the computation; below it,
adaptivity does not pay per invocation (and the incremental techniques
of `repro.adaptive` become relevant).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

import repro
from repro.core.registry import Scheduler, get_scheduler
from repro.directory.service import DirectorySnapshot
from repro.model.messages import UniformSizes
from repro.perf.memo import ScheduleCache
from repro.util.rng import stable_seed, to_rng


@dataclass(frozen=True)
class OverheadPoint:
    """One (P, message size) cell of the overhead analysis."""

    num_procs: int
    message_bytes: float
    scheduling_seconds: float
    baseline_comm: float
    adaptive_comm: float

    @property
    def savings(self) -> float:
        """Communication seconds saved over the baseline."""
        return self.baseline_comm - self.adaptive_comm

    @property
    def net_benefit(self) -> float:
        """Savings minus the cost of computing the schedule."""
        return self.savings - self.scheduling_seconds

    @property
    def pays_off(self) -> bool:
        return self.net_benefit > 0


def measure_scheduling_seconds(
    scheduler: Scheduler,
    problem: repro.TotalExchangeProblem,
    *,
    reps: int = 3,
    cache: Optional[ScheduleCache] = None,
) -> float:
    """Best-of-``reps`` wall-clock cost of one scheduling invocation.

    With ``cache``, the last computed schedule is donated to it, so a
    caller that also needs the schedule's completion time gets a cache
    hit instead of paying for yet another scheduling run.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    best = float("inf")
    schedule = None
    for _ in range(reps):
        start = time.perf_counter()
        schedule = scheduler(problem)
        best = min(best, time.perf_counter() - start)
    if cache is not None and schedule is not None:
        cache.put(problem, scheduler, schedule)
    return best


def run_overhead_analysis(
    *,
    algorithm: str = "openshop",
    proc_counts: Sequence[int] = (10, 30, 50),
    message_sizes: Sequence[float] = (1e3, 1e5, 1e6),
    trials: int = 3,
    seed: int = 0,
) -> Tuple[OverheadPoint, ...]:
    """Sweep (P, message size) cells of the scheduling-cost trade.

    Each cell averages ``trials`` GUSTO-guided random networks;
    scheduling time is measured on this machine, communication times are
    simulated.  A real run-time system would compare the same numbers.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    scheduler = get_scheduler(algorithm)
    # Timing runs donate their last schedule to this cache, so the
    # completion-time lookup below never schedules a fourth time.
    cache = ScheduleCache()
    cached_scheduler = cache.wrap(scheduler)
    points = []
    for num_procs in proc_counts:
        for message_bytes in message_sizes:
            sched_costs, base_comms, adaptive_comms = [], [], []
            for trial in range(trials):
                rng = to_rng(
                    stable_seed("overhead", seed, num_procs,
                                message_bytes, trial)
                )
                latency, bandwidth = repro.random_pairwise_parameters(
                    num_procs, rng=rng
                )
                snapshot = DirectorySnapshot(
                    latency=latency, bandwidth=bandwidth
                )
                problem = repro.TotalExchangeProblem.from_snapshot(
                    snapshot, UniformSizes(message_bytes)
                )
                sched_costs.append(
                    measure_scheduling_seconds(
                        scheduler, problem, cache=cache
                    )
                )
                base_comms.append(
                    repro.schedule_baseline(problem).completion_time
                )
                adaptive_comms.append(
                    cached_scheduler(problem).completion_time
                )
            points.append(
                OverheadPoint(
                    num_procs=num_procs,
                    message_bytes=float(message_bytes),
                    scheduling_seconds=float(np.mean(sched_costs)),
                    baseline_comm=float(np.mean(base_comms)),
                    adaptive_comm=float(np.mean(adaptive_comms)),
                )
            )
    return tuple(points)
