"""Adaptivity extensions (paper Sections 6.2 and 6.3).

The paper's schedules are computed once, at communication start, from a
directory snapshot.  Two sketched extensions are implemented here:

* :mod:`repro.adaptive.checkpoint` — mid-communication rescheduling: an
  initial schedule built from estimates is revisited at checkpoints
  (after each step's worth of events, or after half the remaining events)
  and the unstarted remainder is rescheduled against current conditions;
* :mod:`repro.adaptive.incremental` — refining an existing schedule after
  a small set of bandwidth changes, cheaper than scheduling from scratch.
"""

from repro.adaptive.checkpoint import (
    AdaptiveResult,
    CheckpointPolicy,
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    PiecewiseCosts,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.adaptive.incremental import RefineResult, refine_orders

__all__ = [
    "AdaptiveResult",
    "CheckpointPolicy",
    "EveryKEvents",
    "HalvingCheckpoints",
    "NoCheckpoints",
    "PiecewiseCosts",
    "RefineResult",
    "piecewise_cost_provider",
    "refine_orders",
    "run_adaptive",
]
