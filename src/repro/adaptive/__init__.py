"""Adaptivity extensions (paper Sections 6.2 and 6.3).

The paper's schedules are computed once, at communication start, from a
directory snapshot.  Two sketched extensions are implemented here:

* :mod:`repro.adaptive.checkpoint` — mid-communication rescheduling: an
  initial schedule built from estimates is revisited at checkpoints
  (after each step's worth of events, or after half the remaining events)
  and the unstarted remainder is rescheduled against current conditions;
* :mod:`repro.adaptive.incremental` — refining an existing schedule after
  a small set of bandwidth changes, cheaper than scheduling from scratch;
* :mod:`repro.adaptive.delta` — delta-rescheduling: repairing an
  existing schedule in place when links are *repriced*, keeping clean
  events frozen and re-inserting only the dirty remainder.
"""

from repro.adaptive.checkpoint import (
    AdaptiveResult,
    CheckpointPolicy,
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    PiecewiseCosts,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.adaptive.delta import (
    DeltaRepairResult,
    repair_plan,
    repair_schedule_delta,
)
from repro.adaptive.incremental import (
    RefineResult,
    changed_mask,
    changed_pairs,
    dirty_fraction,
    refine_orders,
)

__all__ = [
    "AdaptiveResult",
    "CheckpointPolicy",
    "DeltaRepairResult",
    "EveryKEvents",
    "HalvingCheckpoints",
    "NoCheckpoints",
    "PiecewiseCosts",
    "RefineResult",
    "changed_mask",
    "changed_pairs",
    "dirty_fraction",
    "piecewise_cost_provider",
    "refine_orders",
    "repair_plan",
    "repair_schedule_delta",
    "run_adaptive",
]
