"""Delta-rescheduling: repair an existing plan instead of rebuilding it.

A drift tick that crosses the refine threshold used to trigger a full
reschedule — ~5 s of flat open-shop list scheduling at P = 1024 — even
when only a handful of links were repriced.  This module generalises the
fault layer's residual-reschedule machinery (:mod:`repro.faults.repair`,
"these links died") to the far more common serving case of "these links
were repriced": diff the old and new cost matrices into dirty pairs and
splice the incumbent plan instead of rebuilding it.

The repair has two regimes, picked by what the reprice did to the
event durations:

* **nothing grew** (every ``new <= old`` duration) — every event keeps
  its old start with its new duration.  Each new window is a subset of
  its old window, and old windows were mutually disjoint per port, so
  no conflict can appear.  Pairs repriced to zero become the usual
  zero-duration markers at their old start.
* **something grew** (any ``new > old``) — a grown event no longer fits
  its old window, and in a tightly packed plan no *other* vacated
  window fits it either (every freed slot holds exactly an old
  duration), so repairing around frozen start times would cascade the
  grown rows to the tail of the plan.  Instead the repair freezes each
  port's *availability profile in order form*: every send and receive
  port keeps the exact sequence the incumbent plan proved feasible, and
  start times are recomputed in one earliest-start pass over the events
  in old start order (``start = max(send avail, recv avail)``).  Events
  ahead of every cascade keep their old start bit-for-bit; events
  behind a grown one slide by the accumulated growth excess — the plan
  shifts locally instead of re-packing globally.  Zero-duration
  markers never occupy a port, so they keep their old starts, and
  appeared pairs (a self-message on a node that previously had none)
  are appended after the ordered events.

The first splice of a plan computes, in the same sequential pass as the
start times, each event's dependency *level* (the longest predecessor
chain through the two port sequences behind it) and leaves the levels
on the repaired schedule as a pair-keyed matrix.  Splices preserve
per-port order, so the levels stay a valid wave partition for every
later repair of the lineage: all events of one level touch distinct
ports, and the recompute collapses to one vectorized gather/max/scatter
against the 2n port clocks per level — ~P events per numpy call, the
steady-state cost the drift bench measures.  The repaired
makespan stays within a few percent of a from-scratch reschedule at the
dirty fractions the policy routes here (see
``PolicyConfig.repair_max_dirty_fraction``) because the incumbent
ordering is near-optimal for the mildly repriced costs.  Zero drift
returns the old schedule *object* — repair is then bit-identical to
reuse.

Hierarchical plans are repaired at block granularity by
:meth:`repro.core.hierarchical.HierarchicalScheduler.delta_repair`;
:func:`repair_plan` dispatches to it when the scheduler offers the hook
and falls back to the flat event-level repair here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule, schedule_from_unsorted_columns
from repro.timing.validate import _event_columns, check_schedule_fast


# Attribute under which a repaired schedule carries its pair-keyed
# level matrix for the next repair in the lineage (see module docstring).
_LEVELS_ATTR = "_delta_levels"

# Sort orders memoised on the (frozen) incumbent: its start order never
# changes, and the level order only changes when the event set does, so
# a plan repaired on every serving tick pays each argsort once.
_ORDER_ATTR = "_delta_start_order"
_LEVEL_ORDER_ATTR = "_delta_level_order"
_HAS_EVENT_ATTR = "_delta_has_event"


def _compute_levels_and_starts(
    n: int,
    srcs: np.ndarray,
    dsts: np.ndarray,
    durs: np.ndarray,
) -> tuple:
    """One sequential pass: earliest starts and DAG depth per event.

    Events are processed front to back in the given per-port order;
    each starts as soon as both its send and receive port are free, and
    its *level* is the longest predecessor chain behind it (one more
    than the deepest of its two port predecessors).  Levels are what
    make the next repair in the lineage cheap — see
    :func:`_execute_by_levels`.
    """
    send_level = [0] * n
    recv_level = [0] * n
    send_avail = [0.0] * n
    recv_avail = [0.0] * n
    levels = []
    starts = []
    for i, j, d in zip(srcs.tolist(), dsts.tolist(), durs.tolist()):
        li = send_level[i]
        lj = recv_level[j]
        level = li if li > lj else lj
        a = send_avail[i]
        b = recv_avail[j]
        t = a if a > b else b
        levels.append(level)
        starts.append(t)
        f = t + d
        send_avail[i] = f
        recv_avail[j] = f
        level += 1
        send_level[i] = level
        recv_level[j] = level
    return np.asarray(starts), np.asarray(levels, dtype=np.int64)


def _execute_by_levels(
    n: int,
    srcs: np.ndarray,
    dsts: np.ndarray,
    durs: np.ndarray,
    levels: np.ndarray,
    order: np.ndarray = None,
) -> np.ndarray:
    """Earliest start times, one vectorized step per dependency level.

    ``levels`` must be strictly increasing along every send and receive
    port's event sequence (the DAG-depth property of
    :func:`_compute_levels_and_starts`, which repairs preserve).  All
    events of one level then touch distinct ports, so the whole level
    is one gather/max/scatter against the 2n port clocks — ~P events
    per numpy call instead of a per-event Python step.  ``order``, when
    given, must be a stable argsort of ``levels`` (callers repairing
    the same plan every tick memoise it).
    """
    total = srcs.shape[0]
    if order is None:
        order = np.argsort(levels, kind="stable")
    s = srcs[order]
    r = dsts[order] + n
    d = durs[order]
    ranked = levels[order]
    bounds = np.flatnonzero(np.concatenate(([True], ranked[1:] != ranked[:-1])))
    bounds = np.append(bounds, total)
    avail = np.zeros(2 * n)
    out = np.empty(total)
    for k in range(bounds.shape[0] - 1):
        sl = slice(bounds[k], bounds[k + 1])
        t = np.maximum(avail[s[sl]], avail[r[sl]])
        out[sl] = t
        finish = t + d[sl]
        avail[s[sl]] = finish
        avail[r[sl]] = finish
    result = np.empty(total)
    result[order] = out
    return result


@dataclass(frozen=True)
class DeltaRepairResult:
    """Outcome of one delta repair.

    Attributes
    ----------
    schedule:
        The repaired schedule, valid for the new costs.
    dirty_pairs:
        Pairs whose cost changed at all between basis and new matrix.
    reinserted:
        Events the splice actually moved to a new start time (plus
        appeared self-messages); zero when every event kept its slot.
    frozen:
        Events kept at their old start (clean, shrunk, and every event
        ahead of the cascades).
    identical:
        True when the costs did not move at all and ``schedule`` *is*
        the old schedule object (repair == reuse, bit-identically).
    """

    schedule: Schedule
    dirty_pairs: int
    reinserted: int
    frozen: int
    identical: bool = False

    @property
    def completion_time(self) -> float:
        return self.schedule.completion_time


def repair_schedule_delta(
    schedule: Schedule,
    basis_cost: np.ndarray,
    problem: TotalExchangeProblem,
    *,
    validate: bool = True,
) -> DeltaRepairResult:
    """Repair ``schedule`` (planned for ``basis_cost``) for ``problem``.

    ``schedule`` must be a valid full-coverage plan for ``basis_cost``.
    The result is a valid full-coverage plan for ``problem.cost``; with
    ``validate`` (the default) it is checked inline by
    :func:`~repro.timing.validate.check_schedule_fast` before being
    returned, so an invalid repair can never escape into serving.
    """
    basis = np.asarray(basis_cost, dtype=float)
    new_cost = problem.cost
    n = problem.num_procs
    if schedule.num_procs != n:
        raise ValueError(
            f"schedule covers {schedule.num_procs} processors, "
            f"problem has {n}"
        )
    if basis.shape != new_cost.shape:
        raise ValueError(
            f"basis shape {basis.shape} != cost shape {new_cost.shape}"
        )
    if np.array_equal(basis, new_cost):
        return DeltaRepairResult(
            schedule=schedule,
            dirty_pairs=0,
            reinserted=0,
            frozen=len(schedule),
            identical=True,
        )

    starts, srcs, dsts, durations = _event_columns(schedule)
    new_dur = new_cost[srcs, dsts]
    grown = new_dur > durations

    # Required pairs the old plan has no event for at all (a
    # self-message appearing on a node that previously had none —
    # off-diagonal pairs are always covered by a valid plan's markers).
    flat_new = new_cost.reshape(-1)
    has_event = schedule.__dict__.get(_HAS_EVENT_ATTR)
    if has_event is None:
        has_event = np.zeros(n * n, dtype=bool)
        has_event[srcs * n + dsts] = True
        schedule.__dict__[_HAS_EVENT_ATTR] = has_event
    appeared = np.flatnonzero((flat_new > 0) & ~has_event)

    sizes = (
        np.asarray(problem.sizes, dtype=float)
        if problem.sizes is not None
        else None
    )

    levels = None
    if not grown.any() and appeared.size == 0:
        # Strict freeze: every new window is a subset of its old window.
        out_starts = starts
        out_srcs = srcs
        out_dsts = dsts
        out_durs = new_dur
        reinserted = 0
    else:
        # Order-preserving splice: positive events re-executed in old
        # start order against the frozen per-port sequences; markers
        # (zero new duration) occupy no port time and keep their slot;
        # appeared self-messages go after the ordered events.
        start_order = schedule.__dict__.get(_ORDER_ATTR)
        if start_order is None:
            start_order = np.argsort(starts, kind="stable")
            schedule.__dict__[_ORDER_ATTR] = start_order
        positive = start_order[new_dur[start_order] > 0]
        ev_srcs = np.concatenate([srcs[positive], appeared // n])
        ev_dsts = np.concatenate([dsts[positive], appeared % n])
        ev_durs = np.concatenate([new_dur[positive], flat_new[appeared]])
        level_mat = None
        cached = schedule.__dict__.get(_LEVELS_ATTR)
        if cached is not None and cached.shape == (n, n):
            levels = cached[ev_srcs, ev_dsts]
            # pairs the matrix has never seen (former markers grown to
            # a positive duration, appeared self-messages) go after
            # everything, each on its own level so no port can clash
            unseen = np.flatnonzero(levels < 0)
            if unseen.size:
                top = int(levels.max()) + 1 if levels.size > unseen.size else 0
                levels[unseen] = top + np.arange(unseen.size)
            else:
                level_mat = cached
        if levels is not None:
            memo = schedule.__dict__.get(_LEVEL_ORDER_ATTR)
            if memo is not None and np.array_equal(memo[0], levels):
                level_order = memo[1]
            else:
                level_order = np.argsort(levels, kind="stable")
                schedule.__dict__[_LEVEL_ORDER_ATTR] = (levels, level_order)
            ev_starts = _execute_by_levels(
                n, ev_srcs, ev_dsts, ev_durs, levels, level_order
            )
        else:
            ev_starts, levels = _compute_levels_and_starts(
                n, ev_srcs, ev_dsts, ev_durs
            )
        moved = int(
            np.count_nonzero(ev_starts[: positive.size] != starts[positive])
        )
        reinserted = moved + int(appeared.size)
        markers = np.flatnonzero(new_dur == 0)
        if markers.size:
            out_starts = np.concatenate([starts[markers], ev_starts])
            out_srcs = np.concatenate([srcs[markers], ev_srcs])
            out_dsts = np.concatenate([dsts[markers], ev_dsts])
            out_durs = np.concatenate([new_dur[markers], ev_durs])
        else:
            out_starts = ev_starts
            out_srcs = ev_srcs
            out_dsts = ev_dsts
            out_durs = ev_durs

    if sizes is not None:
        out_sizes = sizes[out_srcs, out_dsts]
    else:
        out_sizes = np.zeros(out_srcs.shape[0])

    repaired = schedule_from_unsorted_columns(
        n, out_starts, out_srcs, out_dsts, out_durs, out_sizes
    )
    if levels is not None:
        # Hand the level structure to the next repair in the lineage.
        # Splices preserve per-port order (starts strictly increase
        # along a port), so the levels stay a valid wave partition for
        # every later repair of this plan.  Skipped if any pair somehow
        # holds two events — the matrix could not tell them apart.
        # When the levels came whole from the incumbent's cache the
        # matrix is unchanged and is passed along as-is.
        if level_mat is None:
            mat = np.full((n, n), -1, dtype=np.int64)
            mat[ev_srcs, ev_dsts] = levels
            if int(np.count_nonzero(mat >= 0)) == ev_srcs.shape[0]:
                level_mat = mat
        if level_mat is not None:
            repaired.__dict__[_LEVELS_ATTR] = level_mat
            # the incumbent has the same per-port orders, so callers
            # that repair the same plan repeatedly (the session keeps
            # its plan anchored across repair ticks) warm up after one
            # splice
            schedule.__dict__[_LEVELS_ATTR] = level_mat
    if validate:
        check_schedule_fast(repaired, new_cost)
    return DeltaRepairResult(
        schedule=repaired,
        dirty_pairs=int(np.count_nonzero(new_cost != basis)),
        reinserted=reinserted,
        frozen=len(schedule) + int(appeared.size) - reinserted,
        identical=False,
    )


def repair_plan(
    schedule: Schedule,
    basis_cost: np.ndarray,
    problem: TotalExchangeProblem,
    *,
    scheduler=None,
    validate: bool = True,
):
    """Repair a plan, preferring the scheduler's own delta hook.

    Schedulers that keep plan-level state (the hierarchical scheduler's
    block decomposition) expose ``delta_repair(problem, validate=...)``
    returning a :class:`DeltaRepairResult` or ``None``; this dispatcher
    tries the hook first (duck-typed, like the session's fault hooks)
    and falls back to the flat event-level
    :func:`repair_schedule_delta`.  Returns ``None`` only when neither
    path produced a valid repair — the caller should fully reschedule.
    """
    hook = getattr(scheduler, "delta_repair", None)
    if hook is not None:
        try:
            result = hook(problem, validate=validate)
        except Exception:  # noqa: BLE001 — repair must never take serving down
            result = None
        if result is not None:
            return result
    if schedule is None:
        return None
    try:
        return repair_schedule_delta(
            schedule, basis_cost, problem, validate=validate
        )
    except Exception:  # noqa: BLE001 — see above
        return None
