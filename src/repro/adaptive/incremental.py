"""Incremental schedule refinement (paper Section 6.2).

For sensor-style applications that perform the same total exchange over
and over, recomputing a schedule from scratch at every invocation is
expensive (``O(P^4)`` for the matching scheduler).  The paper proposes
refining the previous schedule against the directory's *changed*
bandwidths instead.

The refinement here is local search over the order-based schedule form:

1. **Targeted pass** — only senders touching a changed pair re-sort their
   dispatch order by the new costs (longest first, the greedy intuition);
2. **Swap pass** — first-improvement adjacent swaps in sender orders,
   accepted when the executed completion time drops; repeated up to
   ``max_passes`` times.

Each candidate is evaluated with one executor run (``O(P^2 log P)``), so
a full refinement costs ``O(passes * P^3 log P)`` — asymptotically and
practically cheaper than matching from scratch, and the evaluation count
is reported so experiments can chart the cost/quality trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_orders
from repro.timing.events import Schedule


@dataclass(frozen=True)
class RefineResult:
    """Outcome of :func:`refine_orders`."""

    orders: SendOrders
    schedule: Schedule
    initial_time: float
    evaluations: int

    @property
    def completion_time(self) -> float:
        return self.schedule.completion_time

    @property
    def improvement(self) -> float:
        """Fractional completion-time reduction over the stale schedule."""
        if self.initial_time == 0:
            return 0.0
        return 1.0 - self.completion_time / self.initial_time


def changed_pairs(
    old: TotalExchangeProblem,
    new: TotalExchangeProblem,
    *,
    rtol: float = 1e-6,
) -> Set[Tuple[int, int]]:
    """Pairs whose cost moved by more than ``rtol`` relatively."""
    if old.num_procs != new.num_procs:
        raise ValueError("instances differ in processor count")
    scale = np.maximum(old.cost, 1e-300)
    moved = np.abs(new.cost - old.cost) / scale > rtol
    srcs, dsts = np.nonzero(moved)
    return set(zip(srcs.tolist(), dsts.tolist()))


def refine_orders(
    orders: Sequence[Sequence[int]],
    new_problem: TotalExchangeProblem,
    *,
    old_problem: Optional[TotalExchangeProblem] = None,
    max_passes: int = 2,
) -> RefineResult:
    """Refine ``orders`` for ``new_problem``'s costs.

    ``old_problem`` (the instance the orders were built for) focuses the
    targeted pass on senders whose costs actually changed; without it,
    every sender is treated as changed.
    """
    if max_passes < 0:
        raise ValueError(f"max_passes must be >= 0, got {max_passes}")
    current: List[List[int]] = [list(sender) for sender in orders]
    evaluations = 0

    def evaluate(candidate: SendOrders) -> float:
        nonlocal evaluations
        evaluations += 1
        return execute_orders(
            new_problem, candidate, validate=False
        ).completion_time

    initial_time = evaluate(current)
    best_time = initial_time

    # Every candidate differs from `current` in exactly one sender row, so
    # both passes mutate `current` in place and undo rejected moves instead
    # of deep-copying all P rows per evaluation (the seed behaviour, an
    # O(P^2) copy per candidate that dominated refinement at scale).  The
    # accept/reject decisions, and therefore the result, are unchanged —
    # tests/test_golden_equivalence.py pins this against the seed logic.

    # Pass 1: re-sort affected senders longest-first under the new costs.
    if old_problem is not None:
        affected = {src for src, _ in changed_pairs(old_problem, new_problem)}
    else:
        affected = set(range(new_problem.num_procs))
    cost = new_problem.cost
    for src in sorted(affected):
        old_row = current[src]
        current[src] = sorted(old_row, key=lambda dst: (-cost[src, dst], dst))
        time = evaluate(current)
        if time < best_time:
            best_time = time
        else:
            current[src] = old_row

    # Pass 2+: first-improvement adjacent swaps.
    for _ in range(max_passes):
        improved = False
        for src in range(new_problem.num_procs):
            row = current[src]
            for k in range(len(row) - 1):
                row[k], row[k + 1] = row[k + 1], row[k]
                time = evaluate(current)
                if time < best_time - 1e-12:
                    best_time = time
                    improved = True
                else:
                    row[k], row[k + 1] = row[k + 1], row[k]
        if not improved:
            break

    return RefineResult(
        orders=current,
        schedule=execute_orders(new_problem, current, validate=False),
        initial_time=initial_time,
        evaluations=evaluations,
    )
