"""Incremental schedule refinement (paper Section 6.2).

For sensor-style applications that perform the same total exchange over
and over, recomputing a schedule from scratch at every invocation is
expensive (``O(P^4)`` for the matching scheduler).  The paper proposes
refining the previous schedule against the directory's *changed*
bandwidths instead.

The refinement here is local search over the order-based schedule form:

1. **Targeted pass** — only senders touching a changed pair re-sort their
   dispatch order by the new costs (longest first, the greedy intuition);
2. **Swap pass** — first-improvement adjacent swaps in sender orders,
   accepted when the executed completion time drops; repeated up to
   ``max_passes`` times.

Each candidate is evaluated with one executor run (``O(P^2 log P)``), so
a full refinement costs ``O(passes * P^3 log P)`` — asymptotically and
practically cheaper than matching from scratch, and the evaluation count
is reported so experiments can chart the cost/quality trade-off.

``evaluation="delta"`` replaces most of those executor runs with an
incremental screen: a candidate changes exactly one sender's order, so
its completion time is first *estimated* by simulating only that
sender's chain against the frozen receiver-busy profiles of the
incumbent execution (everything other senders do is held fixed).
Candidates whose estimate cannot beat the incumbent are rejected
without a full run; only promising ones pay for the executor, and every
*accepted* move is still verified by a full run — so the refined result
is never worse than the stale plan, exactly as in exact mode.  The
default stays exact full re-execution (pinned against the seed by
tests/test_golden_equivalence.py); the serving runtime opts into delta
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_orders
from repro.timing.events import Schedule


@dataclass(frozen=True)
class RefineResult:
    """Outcome of :func:`refine_orders`."""

    orders: SendOrders
    schedule: Schedule
    initial_time: float
    evaluations: int
    #: Candidates rejected by the delta screen without a full executor
    #: run (always 0 in the default exact mode).
    screened: int = 0

    @property
    def completion_time(self) -> float:
        return self.schedule.completion_time

    @property
    def improvement(self) -> float:
        """Fractional completion-time reduction over the stale schedule."""
        if self.initial_time == 0:
            return 0.0
        return 1.0 - self.completion_time / self.initial_time


def changed_mask(
    old_cost: np.ndarray,
    new_cost: np.ndarray,
    *,
    rtol: float = 1e-6,
) -> np.ndarray:
    """Boolean ``[src, dst]`` bitmap of pairs that moved beyond ``rtol``.

    Fully vectorized — one subtract/divide/compare over the matrices,
    no per-pair Python.  Pairs appearing from zero count as moved (the
    relative change against a near-zero basis is effectively infinite);
    pairs at zero in both matrices do not.
    """
    old_cost = np.asarray(old_cost, dtype=float)
    new_cost = np.asarray(new_cost, dtype=float)
    if old_cost.shape != new_cost.shape:
        raise ValueError(
            f"cost shapes differ: {old_cost.shape} vs {new_cost.shape}"
        )
    scale = np.maximum(old_cost, 1e-300)
    return np.abs(new_cost - old_cost) / scale > rtol


def dirty_fraction(
    basis: np.ndarray,
    current: np.ndarray,
    *,
    rtol: float = 0.05,
) -> float:
    """Fraction of relevant pairs whose cost moved beyond ``rtol``.

    Relevant pairs are those positive in either matrix.  This is the
    *localisation* signal the repair policy tier gates on: mean drift
    (:func:`repro.runtime.policy.drift_magnitude`) cannot distinguish
    uniform repricing (where delta repair degenerates to a tail append
    of everything) from a few links moving a lot (where it shines).
    """
    moved = changed_mask(basis, current, rtol=rtol)
    relevant = (np.asarray(basis) > 0) | (np.asarray(current) > 0)
    total = int(np.count_nonzero(relevant))
    if not total:
        return 0.0
    return float(np.count_nonzero(moved & relevant)) / total


def changed_pairs(
    old: TotalExchangeProblem,
    new: TotalExchangeProblem,
    *,
    rtol: float = 1e-6,
) -> Set[Tuple[int, int]]:
    """Pairs whose cost moved by more than ``rtol`` relatively."""
    if old.num_procs != new.num_procs:
        raise ValueError("instances differ in processor count")
    moved = changed_mask(old.cost, new.cost, rtol=rtol)
    srcs, dsts = np.nonzero(moved)
    return set(zip(srcs.tolist(), dsts.tolist()))


def _receiver_profiles(
    schedule: Schedule, src: int, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Frozen receiver-busy profiles of ``schedule`` excluding ``src``.

    Returns ``(busy_starts, busy_finishes, bounds, other_max)`` where
    receiver ``d``'s intervals (sorted by start) live at
    ``[bounds[d]:bounds[d + 1])`` and ``other_max`` is the latest finish
    among all events not sent by ``src``.
    """
    from repro.timing.validate import _event_columns

    starts, srcs, dsts, durations = _event_columns(schedule)
    sel = (srcs != src) & (durations > 0)
    starts = starts[sel]
    dsts = dsts[sel]
    finishes = starts + durations[sel]
    other_max = float(finishes.max()) if finishes.size else 0.0
    order = np.lexsort((starts, dsts))
    dsts = dsts[order]
    bounds = np.searchsorted(dsts, np.arange(n + 1))
    return starts[order], finishes[order], bounds, other_max


def _screen_estimate(
    profiles: Tuple[np.ndarray, np.ndarray, np.ndarray, float],
    src: int,
    row: Sequence[int],
    cost: np.ndarray,
) -> float:
    """Estimated completion of a candidate differing only in ``src``'s row.

    Simulates ``src``'s serialized chain first-fit into the frozen
    receiver gaps; everything else is held at its incumbent timing.  A
    heuristic screen, not a bound — accepted moves are always verified
    by a full executor run.
    """
    busy_starts, busy_finishes, bounds, other_max = profiles
    t = 0.0
    for dst in row:
        duration = cost[src, dst]
        if duration <= 0:
            continue
        lo = bounds[dst]
        hi = bounds[dst + 1]
        if lo == hi:
            t += duration
            continue
        # gap 0: [t, first busy start); gap i >= 1: from busy interval
        # i - 1's finish (clamped to t); the gap after the last busy
        # interval always fits.
        gap_starts = np.concatenate(
            ([t], np.maximum(busy_finishes[lo:hi], t))
        )
        gap_ends = np.concatenate((busy_starts[lo:hi], [np.inf]))
        ok = gap_starts + duration <= gap_ends + 1e-12
        start = float(gap_starts[int(np.argmax(ok))])
        t = start + duration
    return max(other_max, t)


def refine_orders(
    orders: Sequence[Sequence[int]],
    new_problem: TotalExchangeProblem,
    *,
    old_problem: Optional[TotalExchangeProblem] = None,
    max_passes: int = 2,
    evaluation: str = "execute",
) -> RefineResult:
    """Refine ``orders`` for ``new_problem``'s costs.

    ``old_problem`` (the instance the orders were built for) focuses the
    targeted pass on senders whose costs actually changed; without it,
    every sender is treated as changed.

    ``evaluation`` selects how candidates are costed: ``"execute"`` (the
    default) runs the full executor per candidate, exactly the seed
    behaviour; ``"delta"`` screens each candidate first with an
    incremental single-sender estimate against the incumbent's frozen
    receiver profiles and only executes promising ones.  Accepted moves
    are always verified by a full run in both modes.
    """
    if max_passes < 0:
        raise ValueError(f"max_passes must be >= 0, got {max_passes}")
    if evaluation not in ("execute", "delta"):
        raise ValueError(
            f"evaluation must be 'execute' or 'delta', got {evaluation!r}"
        )
    delta = evaluation == "delta"
    current: List[List[int]] = [list(sender) for sender in orders]
    n = new_problem.num_procs
    cost = new_problem.cost
    evaluations = 0
    screened = 0

    def run(candidate: SendOrders) -> Schedule:
        nonlocal evaluations
        evaluations += 1
        return execute_orders(new_problem, candidate, validate=False)

    incumbent = run(current)
    initial_time = incumbent.completion_time
    best_time = initial_time
    # src -> frozen receiver profiles of the incumbent execution;
    # invalidated wholesale whenever a move is accepted.
    profiles: dict = {}

    # Every candidate differs from `current` in exactly one sender row, so
    # both passes mutate `current` in place and undo rejected moves instead
    # of deep-copying all P rows per evaluation (the seed behaviour, an
    # O(P^2) copy per candidate that dominated refinement at scale).  The
    # accept/reject decisions, and therefore the result, are unchanged —
    # tests/test_golden_equivalence.py pins this against the seed logic.

    def try_move(src: int, margin: float) -> bool:
        """Cost the mutated ``current``; accept iff it beats the best."""
        nonlocal best_time, incumbent, screened
        if delta:
            prof = profiles.get(src)
            if prof is None:
                prof = profiles[src] = _receiver_profiles(incumbent, src, n)
            estimate = _screen_estimate(prof, src, current[src], cost)
            if not estimate < best_time - margin:
                screened += 1
                return False
        schedule = run(current)
        if schedule.completion_time < best_time - margin:
            best_time = schedule.completion_time
            incumbent = schedule
            profiles.clear()
            return True
        return False

    # Pass 1: re-sort affected senders longest-first under the new costs.
    if old_problem is not None:
        affected = {src for src, _ in changed_pairs(old_problem, new_problem)}
    else:
        affected = set(range(n))
    for src in sorted(affected):
        old_row = current[src]
        current[src] = sorted(old_row, key=lambda dst: (-cost[src, dst], dst))
        if not try_move(src, 0.0):
            current[src] = old_row

    # Pass 2+: first-improvement adjacent swaps.
    for _ in range(max_passes):
        improved = False
        for src in range(n):
            row = current[src]
            for k in range(len(row) - 1):
                row[k], row[k + 1] = row[k + 1], row[k]
                if try_move(src, 1e-12):
                    improved = True
                else:
                    row[k], row[k + 1] = row[k + 1], row[k]
        if not improved:
            break

    return RefineResult(
        orders=current,
        schedule=execute_orders(new_problem, current, validate=False),
        initial_time=initial_time,
        evaluations=evaluations,
        screened=screened,
    )
