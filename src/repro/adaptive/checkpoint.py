"""Checkpoint-based mid-communication rescheduling (paper Section 6.3).

"An initial communication schedule can be derived using estimates of the
communication times.  The schedule can then be modified at intermediate
checkpoints" — after each communication event / step (O(P) checkpoints)
or after half the remaining events complete (O(log P) checkpoints).

The simulation here executes a planned schedule under *actual* (possibly
drifting) costs supplied by a time-dependent cost provider.  At each
checkpoint the events that have not yet started are cancelled and
rescheduled from the provider's current matrix; in-flight events always
complete.  Rescheduling is skipped when estimates still match reality to
within ``reschedule_threshold`` (the paper's "large enough to require
rescheduling" test).

Truncation soundness: the executor serialises per sender and per
receiver, so any event influenced by a cancelled event would itself start
at or after the checkpoint and is therefore also cancelled — cutting at a
checkpoint time never leaves dangling dependencies.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.openshop import openshop_events
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import Scheduler
from repro.timing.events import CommEvent, Schedule

#: Plans the remaining events from a warm state: receives the remaining
#: instance plus current per-port availability vectors, returns the event
#: pairs in planned start order.
Planner = Callable[
    [TotalExchangeProblem, List[float], List[float]], List[Tuple[int, int]]
]


def openshop_planner(
    problem: TotalExchangeProblem,
    send_free: List[float],
    recv_free: List[float],
) -> List[Tuple[int, int]]:
    """Warm-start open shop planning (the default re-planner).

    Rescheduling mid-collective meets skewed port availabilities (some
    ports still busy with in-flight work); planning against them instead
    of a cold start keeps the new plan's order consistent with reality.
    """
    events = openshop_events(
        problem.cost,
        problem.positive_events(),
        list(send_free),
        list(recv_free),
    )
    events.sort(key=lambda e: (e.start, e.src, e.dst))
    return [(e.src, e.dst) for e in events]


def cold_planner(scheduler: Scheduler) -> Planner:
    """Adapt a plain scheduler (which assumes idle ports) into a Planner."""

    def plan(
        problem: TotalExchangeProblem,
        send_free: List[float],
        recv_free: List[float],
    ) -> List[Tuple[int, int]]:
        schedule = scheduler(problem)
        return [
            (e.src, e.dst)
            for e in sorted(schedule, key=lambda e: (e.start, e.src, e.dst))
            if problem.cost[e.src, e.dst] > 0
        ]

    return plan

class PiecewiseCosts:
    """Piecewise-constant network conditions over time.

    ``matrices[k]`` holds the cost each message *would* take if wholly
    transferred under segment ``k``'s conditions; segment ``k`` spans
    ``[times[k], times[k+1])`` and the last segment extends forever.

    A transfer in flight when conditions change speeds up or slows down:
    its duration is found by integrating progress (fraction completed per
    second is ``1 / cost_k``) across segments — so congestion arriving
    mid-transfer genuinely hurts, and in-flight work cannot "lock in" the
    old price.
    """

    def __init__(self, times: Sequence[float], costs: Sequence[np.ndarray]):
        if len(times) != len(costs) or not times:
            raise ValueError("need equally many times and costs, at least one")
        if times[0] != 0:
            raise ValueError("first breakpoint must be time 0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        self.times = [float(t) for t in times]
        self.matrices = [np.asarray(c, dtype=float) for c in costs]
        shape = self.matrices[0].shape
        if any(m.shape != shape for m in self.matrices):
            raise ValueError("all cost matrices must share a shape")

    def segment_at(self, time: float) -> int:
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        return max(index, 0)

    def cost_at(self, time: float) -> np.ndarray:
        """The instantaneous cost matrix in force at ``time``."""
        return self.matrices[self.segment_at(time)]

    def transfer_time(self, src: int, dst: int, start: float) -> float:
        """Duration of a transfer beginning at ``start`` (integrated)."""
        k = self.segment_at(start)
        t = start
        remaining = 1.0  # fraction of the message left
        while True:
            cost = float(self.matrices[k][src, dst])
            if cost <= 0:
                return t - start  # free under current conditions: done now
            end = self.times[k + 1] if k + 1 < len(self.times) else np.inf
            needed = remaining * cost
            if t + needed <= end:
                return t + needed - start
            remaining -= (end - t) / cost
            t = end
            k += 1


#: Network conditions: a PiecewiseCosts, or a bare callable sampled at an
#: event's start time (legacy form; no mid-transfer adjustment).
CostProvider = Callable[[float], np.ndarray]


def piecewise_cost_provider(
    times: Sequence[float], costs: Sequence[np.ndarray]
) -> PiecewiseCosts:
    """Build :class:`PiecewiseCosts` (name kept for the provider API)."""
    return PiecewiseCosts(times, costs)


def _as_conditions(provider) -> PiecewiseCosts:
    """Normalise a provider into PiecewiseCosts semantics."""
    if isinstance(provider, PiecewiseCosts):
        return provider

    class _Sampled(PiecewiseCosts):
        """Wraps a callable: duration sampled at start, no integration."""

        def __init__(self, fn):
            self._fn = fn

        def cost_at(self, time: float) -> np.ndarray:  # type: ignore[override]
            return np.asarray(self._fn(time), dtype=float)

        def transfer_time(self, src, dst, start):  # type: ignore[override]
            return float(self.cost_at(start)[src, dst])

    return _Sampled(provider)


class CheckpointPolicy(abc.ABC):
    """Decides after how many completions the next checkpoint fires."""

    @abc.abstractmethod
    def next_checkpoint(self, remaining_events: int) -> Optional[int]:
        """Completions before the next checkpoint; None disables."""


class EveryKEvents(CheckpointPolicy):
    """Checkpoint every ``k`` completed events.

    ``k = P`` approximates the paper's O(P) per-step checkpoints (one
    step of total exchange is ~P events).
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def next_checkpoint(self, remaining_events: int) -> Optional[int]:
        return self.k if remaining_events > self.k else None


class HalvingCheckpoints(CheckpointPolicy):
    """Checkpoint after half the remaining events (O(log P) checkpoints)."""

    def next_checkpoint(self, remaining_events: int) -> Optional[int]:
        half = remaining_events // 2
        return half if half >= 1 else None


class NoCheckpoints(CheckpointPolicy):
    """Never reschedule (the non-adaptive baseline)."""

    def next_checkpoint(self, remaining_events: int) -> Optional[int]:
        return None


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of an adaptive (or baseline) run."""

    schedule: Schedule
    checkpoint_times: Tuple[float, ...]
    reschedules: int
    #: Checkpoints where the threshold test suppressed rescheduling.
    skipped_reschedules: int

    @property
    def completion_time(self) -> float:
        return self.schedule.completion_time


def _execute_dynamic(
    plan: Sequence[Tuple[int, int]],
    conditions: PiecewiseCosts,
    send_free: List[float],
    recv_free: List[float],
) -> List[CommEvent]:
    """Strict order-preserving execution with time-dependent costs.

    ``plan`` lists the events in planned start order; both each sender's
    dispatch order and each receiver's service order follow it, matching
    :func:`repro.sim.engine.execute_steps_strict`.  Each event starts
    when its two port predecessors finish; its duration is the
    conditions' integrated transfer time from that start.  The
    availability vectors carry over from earlier phases (in-flight work
    at a checkpoint keeps its ports busy into the new phase).

    Zero-duration events (a pair whose actual cost collapsed to 0) are
    kept so the checkpoint logic still sees them complete.
    """
    events: List[CommEvent] = []
    for src, dst in plan:
        start = max(send_free[src], recv_free[dst])
        duration = conditions.transfer_time(src, dst, start)
        finish = start + duration
        send_free[src] = finish
        recv_free[dst] = finish
        events.append(
            CommEvent(start=start, src=src, dst=dst, duration=duration)
        )
    return events


def run_adaptive(
    estimate: TotalExchangeProblem,
    cost_provider,
    *,
    policy: CheckpointPolicy,
    scheduler: Optional[Scheduler] = None,
    planner: Optional[Planner] = None,
    reschedule_threshold: float = 0.0,
) -> AdaptiveResult:
    """Execute total exchange with checkpoint rescheduling.

    Parameters
    ----------
    estimate:
        The planning-time instance (costs from the initial directory
        snapshot).  Defines which messages exist.
    cost_provider:
        A :class:`PiecewiseCosts` (preferred: in-flight transfers adapt
        to condition changes) or a callable ``time -> cost matrix``
        (sampled at each event's start).  Must keep zero entries zero (a
        message cannot appear mid-run).
    policy:
        When to checkpoint; :class:`NoCheckpoints` gives the non-adaptive
        baseline under the same actual conditions.
    scheduler:
        Plain scheduler used cold (ports assumed idle) for the initial
        plan and every re-plan.  Mutually exclusive with ``planner``.
    planner:
        Warm-state planner receiving the remaining instance plus current
        port availabilities.  Defaults to :func:`openshop_planner`.
    reschedule_threshold:
        Skip rescheduling at a checkpoint when the mean relative change
        between the estimate used for the current plan and the current
        actual matrix (over remaining events) is below this value.
    """
    if scheduler is not None and planner is not None:
        raise ValueError("pass either scheduler or planner, not both")
    if planner is None:
        planner = cold_planner(scheduler) if scheduler else openshop_planner
    conditions = _as_conditions(cost_provider)
    n = estimate.num_procs
    all_pairs = set(estimate.positive_events())
    remaining = set(all_pairs)

    send_free = [0.0] * n
    recv_free = [0.0] * n
    now = 0.0
    committed: List[CommEvent] = []
    checkpoint_times: List[float] = []
    reschedules = 0
    skipped = 0

    # The estimate each phase was planned from (for the threshold test).
    plan_basis = estimate.cost.copy()
    plan: Optional[List[Tuple[int, int]]] = None

    while remaining:
        if plan is None:
            sub = estimate.restricted_to(remaining)
            current = np.where(sub.cost > 0, conditions.cost_at(now), 0.0)
            plan_basis = current
            plan = [
                pair
                for pair in planner(
                    TotalExchangeProblem(cost=current), send_free, recv_free
                )
                if pair in remaining
            ]

        phase_events = _execute_dynamic(
            plan,
            conditions,
            list(send_free),
            list(recv_free),
        )
        phase_events.sort(key=lambda e: e.finish)

        k = policy.next_checkpoint(len(remaining))
        if k is None or k >= len(phase_events):
            committed.extend(phase_events)
            remaining.clear()
            break

        # Checkpoint at the finish of the k-th completing event; keep
        # everything that started before it.
        t_cp = phase_events[k - 1].finish
        kept = [
            e
            for e in phase_events
            if e.start < t_cp or (e.duration == 0 and e.finish <= t_cp)
        ]
        if len(kept) == len(phase_events):
            committed.extend(phase_events)
            remaining.clear()
            break
        committed.extend(kept)
        for event in kept:
            remaining.discard((event.src, event.dst))
            send_free[event.src] = max(send_free[event.src], event.finish)
            recv_free[event.dst] = max(recv_free[event.dst], event.finish)
        now = t_cp
        checkpoint_times.append(t_cp)

        # Threshold test: is reality far enough from the plan's basis?
        current = conditions.cost_at(now)
        rel_changes = [
            abs(current[p] - plan_basis[p]) / plan_basis[p]
            for p in remaining
            if plan_basis[p] > 0
        ]
        mean_change = float(np.mean(rel_changes)) if rel_changes else 0.0
        if mean_change >= reschedule_threshold:
            plan = None  # forces a re-plan next iteration
            reschedules += 1
        else:
            skipped += 1
            plan = [pair for pair in plan if pair in remaining]

    # Free markers for coverage parity.
    for src in range(n):
        for dst in range(n):
            if src != dst and estimate.cost[src, dst] == 0:
                committed.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0)
                )
    return AdaptiveResult(
        schedule=Schedule.from_events(n, committed),
        checkpoint_times=tuple(checkpoint_times),
        reschedules=reschedules,
        skipped_reschedules=skipped,
    )
