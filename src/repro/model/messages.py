"""Message-size specifications for total exchange.

A size spec produces the ``[src, dst]`` matrix of message sizes (bytes)
that a collective pattern must move.  The paper's experiments use uniform
1 kB, uniform 1 MB, a random mix of the two, and a client-server pattern
(Section 5); richer application-derived patterns live in
:mod:`repro.workloads`.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import RngLike, to_rng
from repro.util.units import KILOBYTE, MEGABYTE
from repro.util.validation import check_positive, check_probability


class SizeSpec(abc.ABC):
    """Produces a message-size matrix for a given processor count."""

    @abc.abstractmethod
    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        """Return a ``[src, dst]`` byte-size matrix with a zero diagonal."""

    @staticmethod
    def _blank(num_procs: int) -> np.ndarray:
        if num_procs <= 0:
            raise ValueError(f"num_procs must be positive, got {num_procs}")
        return np.zeros((num_procs, num_procs))


class UniformSizes(SizeSpec):
    """Every off-diagonal message has the same size."""

    def __init__(self, size_bytes: float = KILOBYTE):
        self._size = check_positive("size_bytes", size_bytes)

    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        matrix = self._blank(num_procs)
        matrix[:] = self._size
        np.fill_diagonal(matrix, 0.0)
        return matrix


class MixedSizes(SizeSpec):
    """Each message is independently small or large.

    The paper's "random mix" workload: every message is 1 kB with
    probability ``small_probability`` and 1 MB otherwise.
    """

    def __init__(
        self,
        small_bytes: float = KILOBYTE,
        large_bytes: float = MEGABYTE,
        small_probability: float = 0.5,
    ):
        self._small = check_positive("small_bytes", small_bytes)
        self._large = check_positive("large_bytes", large_bytes)
        self._p_small = check_probability("small_probability", small_probability)

    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        rng = to_rng(rng)
        small = rng.random((num_procs, num_procs)) < self._p_small
        matrix = np.where(small, self._small, self._large).astype(float)
        np.fill_diagonal(matrix, 0.0)
        return matrix


class ServerClientSizes(SizeSpec):
    """The paper's Figure 12 scenario: a server fraction sends large data.

    A fraction of the processors are *servers* (20 % in the paper's
    experiment) holding partitioned multimedia data.  Server-to-client
    messages are large; client-to-client, client-to-server, and
    server-to-server messages are small.  "Data is also assumed to be
    partitioned over the servers, so that the load on the servers is
    balanced" — with uniform per-pair sizes each server carries the same
    outgoing volume, so the balance condition holds by construction.
    """

    def __init__(
        self,
        server_fraction: float = 0.2,
        large_bytes: float = MEGABYTE,
        small_bytes: float = KILOBYTE,
        *,
        first_servers: bool = True,
    ):
        self._fraction = check_probability("server_fraction", server_fraction)
        if self._fraction == 0.0:
            raise ValueError("server_fraction must be > 0")
        self._large = check_positive("large_bytes", large_bytes)
        self._small = check_positive("small_bytes", small_bytes)
        self._first_servers = bool(first_servers)

    def num_servers(self, num_procs: int) -> int:
        """How many processors act as servers (at least one)."""
        return max(1, int(round(self._fraction * num_procs)))

    def server_set(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        """Indices of the server processors."""
        k = self.num_servers(num_procs)
        if self._first_servers:
            return np.arange(k)
        return np.sort(to_rng(rng).choice(num_procs, size=k, replace=False))

    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        servers = self.server_set(num_procs, rng=rng)
        is_server = np.zeros(num_procs, dtype=bool)
        is_server[servers] = True
        matrix = np.full((num_procs, num_procs), self._small)
        # server rows -> client columns get the large payload
        matrix[np.ix_(is_server, ~is_server)] = self._large
        np.fill_diagonal(matrix, 0.0)
        return matrix


class ParetoSizes(SizeSpec):
    """Heavy-tailed message sizes (bounded Pareto).

    Real application traffic is rarely bimodal: a few huge transfers
    dominate the volume while most messages are small.  Sizes are drawn
    from a Pareto distribution with shape ``alpha`` and scale
    ``minimum_bytes``, truncated at ``cap_bytes`` so a single sample
    cannot dwarf the rest of the experiment.
    """

    def __init__(
        self,
        minimum_bytes: float = KILOBYTE,
        alpha: float = 1.3,
        cap_bytes: float = 100 * MEGABYTE,
    ):
        self._minimum = check_positive("minimum_bytes", minimum_bytes)
        self._alpha = check_positive("alpha", alpha)
        self._cap = check_positive("cap_bytes", cap_bytes)
        if self._cap < self._minimum:
            raise ValueError("cap_bytes must be >= minimum_bytes")

    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        rng = to_rng(rng)
        raw = self._minimum * (
            1.0 + rng.pareto(self._alpha, size=(num_procs, num_procs))
        )
        matrix = np.minimum(raw, self._cap)
        np.fill_diagonal(matrix, 0.0)
        return matrix


class MessageSizes(SizeSpec):
    """A fixed, explicit size matrix wrapped as a spec."""

    def __init__(self, matrix: np.ndarray):
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"size matrix must be square, got {arr.shape}")
        if np.any(arr < 0):
            raise ValueError("message sizes must be non-negative")
        arr = arr.copy()
        np.fill_diagonal(arr, 0.0)
        self._matrix = arr

    def sizes(self, num_procs: int, *, rng: RngLike = None) -> np.ndarray:
        if num_procs != self._matrix.shape[0]:
            raise ValueError(
                f"fixed size matrix is {self._matrix.shape[0]}x"
                f"{self._matrix.shape[0]}, asked for {num_procs} processors"
            )
        return self._matrix.copy()
