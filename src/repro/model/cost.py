"""Communication-cost matrices from directory snapshots.

``cost[i, j] = T_ij + m_ij / B_ij`` — the paper's linear model for the
message from ``P_i`` to ``P_j``.  Note the *internal* convention is
src-major; the paper's matrix ``C`` is the transpose (``C_{i,j}`` is the
time from ``P_j`` to ``P_i``).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.model.messages import SizeSpec
from repro.util.rng import RngLike


def cost_matrix(
    snapshot: DirectorySnapshot,
    sizes: Union[np.ndarray, SizeSpec],
    *,
    rng: RngLike = None,
) -> np.ndarray:
    """Build the ``[src, dst]`` communication-time matrix in seconds.

    ``sizes`` may be an explicit byte matrix or a
    :class:`~repro.model.messages.SizeSpec` (sampled with ``rng``).
    Diagonal entries are zero: the paper treats local copies as free.
    Zero-size off-diagonal messages also cost zero (no message is sent).
    """
    if isinstance(sizes, SizeSpec):
        size_matrix = sizes.sizes(snapshot.num_procs, rng=rng)
    else:
        size_matrix = np.asarray(sizes, dtype=float)
    if size_matrix.shape != (snapshot.num_procs, snapshot.num_procs):
        raise ValueError(
            f"size matrix shape {size_matrix.shape} does not match "
            f"{snapshot.num_procs} processors"
        )
    if np.any(size_matrix < 0):
        raise ValueError("message sizes must be non-negative")

    with np.errstate(invalid="ignore"):
        cost = snapshot.latency + size_matrix / snapshot.bandwidth
    cost = np.where(size_matrix == 0, 0.0, cost)
    np.fill_diagonal(cost, 0.0)
    return cost


class CommunicationModel:
    """Convenience wrapper binding a snapshot for repeated cost queries."""

    def __init__(self, snapshot: DirectorySnapshot):
        self._snapshot = snapshot

    @property
    def snapshot(self) -> DirectorySnapshot:
        return self._snapshot

    @property
    def num_procs(self) -> int:
        return self._snapshot.num_procs

    def transfer_time(self, src: int, dst: int, size_bytes: float) -> float:
        """Time for a single ``size_bytes`` message from ``src`` to ``dst``."""
        return self._snapshot.transfer_time(src, dst, size_bytes)

    def cost_matrix(
        self, sizes: Union[np.ndarray, SizeSpec], *, rng: RngLike = None
    ) -> np.ndarray:
        """Cost matrix for a full total-exchange size pattern."""
        return cost_matrix(self._snapshot, sizes, rng=rng)
