"""Extended communication models (paper Section 6.1).

The base model allows one send and one receive per node at a time.  The
paper sketches two relaxations, both implemented here as parameter objects
consumed by the execution-engine variants in :mod:`repro.sim.variants`:

* **Interleaved receive** — multithreading (as in Nexus) lets a node
  receive several messages concurrently, at a context-switching overhead
  ``alpha``: receiving ``k`` messages that individually take ``t_1..t_k``
  simultaneously takes ``(1 + alpha) * (t_1 + ... + t_k)``.
* **Finite receive buffers** — a sender blocks only until its message is
  *buffered* at the receiver; the receiver drains the buffer one message
  at a time.  With a large buffer this decouples senders from slow
  receivers; with a zero-capacity buffer it degenerates to the base model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class InterleavedReceiveModel:
    """Parameters for interleaved (multithreaded) receives.

    Attributes
    ----------
    alpha:
        Context-switch overhead; total time for a batch of simultaneous
        receives is ``(1 + alpha) *`` the sum of individual times.
    max_streams:
        Maximum number of simultaneous receive threads per node.
    """

    alpha: float = 0.1
    max_streams: int = 2

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha, allow_zero=True)
        if self.max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {self.max_streams}")

    def batch_time(self, durations) -> float:
        """Time to receive ``durations`` simultaneously on one node."""
        durations = list(durations)
        if len(durations) > self.max_streams:
            raise ValueError(
                f"{len(durations)} simultaneous receives exceeds "
                f"max_streams={self.max_streams}"
            )
        if len(durations) <= 1:
            return sum(durations)
        return (1.0 + self.alpha) * sum(durations)

    def effective_rate_factor(self, concurrent: int) -> float:
        """Per-stream progress rate with ``concurrent`` active receives.

        With ``k`` interleaved receives each stream progresses at
        ``1 / ((1 + alpha) * k)`` of its solo rate, so a batch of equal
        messages finishes in ``(1 + alpha) * k * t`` — consistent with
        :meth:`batch_time`.
        """
        if concurrent < 1:
            raise ValueError(f"concurrent must be >= 1, got {concurrent}")
        if concurrent == 1:
            return 1.0
        return 1.0 / ((1.0 + self.alpha) * concurrent)


@dataclass(frozen=True)
class FiniteBufferModel:
    """Parameters for buffered receives.

    Attributes
    ----------
    capacity_bytes:
        Buffer space per node.  A message can be deposited when free space
        covers its size; the sender is released at deposit time, and the
        receive completes when the receiver later drains the message.
    drain_rate:
        Bytes/second at which the receiver copies buffered messages into
        application memory (models the memcpy / protocol processing the
        receive thread still has to do).
    """

    capacity_bytes: float = 4_000_000.0
    drain_rate: float = 500_000_000.0

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes, allow_zero=True)
        check_positive("drain_rate", self.drain_rate)

    def drain_time(self, size_bytes: float) -> float:
        """Time for the receiver to drain one buffered message."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        return size_bytes / self.drain_rate
