"""Analytical communication model (paper Section 3.2).

The time to send an ``m``-byte message from ``P_i`` to ``P_j`` is
``T_ij + m / B_ij``; a node participates in at most one send and one
receive at a time, and contending receives serialise.  This package turns
directory snapshots plus message-size specifications into dense
communication-cost matrices, and provides the extended receive models of
Section 6.1 (interleaved multithreaded receive, finite receive buffers).
"""

from repro.model.cost import CommunicationModel, cost_matrix
from repro.model.extended import FiniteBufferModel, InterleavedReceiveModel
from repro.model.messages import (
    MessageSizes,
    MixedSizes,
    ParetoSizes,
    ServerClientSizes,
    SizeSpec,
    UniformSizes,
)

__all__ = [
    "CommunicationModel",
    "FiniteBufferModel",
    "InterleavedReceiveModel",
    "MessageSizes",
    "MixedSizes",
    "ParetoSizes",
    "ServerClientSizes",
    "SizeSpec",
    "UniformSizes",
    "cost_matrix",
]
