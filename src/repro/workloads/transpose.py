"""Matrix-transpose redistribution workload.

The paper's Section 4.1 motivating example: an ``N x N`` matrix initially
distributed by rows must be redistributed so every processor holds full
columns.  Processor ``i`` owns a contiguous block of rows; after the
transpose it owns a contiguous block of columns; the block of elements at
the intersection of ``i``'s rows and ``j``'s columns must travel from
``i`` to ``j`` — a total exchange whose message sizes follow the block
geometry.  With ``N`` not divisible by ``P`` the blocks are uneven, which
is exactly the message-size heterogeneity the schedulers exploit.
"""

from __future__ import annotations

import numpy as np


def block_lengths(total: int, parts: int) -> np.ndarray:
    """Contiguous block sizes distributing ``total`` items over ``parts``.

    The first ``total % parts`` blocks get the extra element, matching the
    usual HPF/ScaLAPACK block distribution.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    return np.array([base + (1 if i < extra else 0) for i in range(parts)])


def transpose_sizes(
    matrix_size: int,
    num_procs: int,
    *,
    itemsize: int = 8,
) -> np.ndarray:
    """Message sizes (bytes) for a row-block to column-block transpose.

    ``sizes[i, j] = rows_i * cols_j * itemsize`` for ``i != j``; the
    diagonal block stays local and is zero.

    Parameters
    ----------
    matrix_size:
        ``N``, the matrix dimension.
    num_procs:
        ``P``, the processor count.
    itemsize:
        Bytes per element (8 for float64).
    """
    if matrix_size <= 0:
        raise ValueError(f"matrix_size must be positive, got {matrix_size}")
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    rows = block_lengths(matrix_size, num_procs)
    cols = block_lengths(matrix_size, num_procs)
    sizes = np.outer(rows, cols).astype(float) * itemsize
    np.fill_diagonal(sizes, 0.0)
    return sizes
