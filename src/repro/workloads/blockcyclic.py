"""Block-cyclic array redistribution workload.

Changing the block size of a 1-D block-cyclic distribution (``cyclic(r)``
to ``cyclic(s)`` over the same processors) induces an all-to-some/
all-to-all communication whose per-pair volumes depend on how the old and
new block patterns interleave — the redistribution problem of the paper's
reference [19] (Lim, Bhat & Prasanna).  Volumes are computed exactly by
scanning element ownership, which is O(N) and plenty fast for
experiment-scale arrays.
"""

from __future__ import annotations

import numpy as np


def _owner(index: int, block: int, num_procs: int) -> int:
    """Owner of element ``index`` under a cyclic(``block``) distribution."""
    return (index // block) % num_procs


def block_cyclic_sizes(
    array_size: int,
    num_procs: int,
    *,
    old_block: int,
    new_block: int,
    itemsize: int = 8,
) -> np.ndarray:
    """Message sizes (bytes) for a cyclic(r) -> cyclic(s) redistribution.

    ``sizes[i, j]`` counts the elements owned by ``i`` under the old
    distribution and by ``j`` under the new one (``i != j``), times
    ``itemsize``.
    """
    if array_size < 0:
        raise ValueError(f"array_size must be >= 0, got {array_size}")
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    if old_block <= 0 or new_block <= 0:
        raise ValueError("block sizes must be positive")
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")

    indices = np.arange(array_size)
    old_owner = (indices // old_block) % num_procs
    new_owner = (indices // new_block) % num_procs
    sizes = np.zeros((num_procs, num_procs))
    np.add.at(sizes, (old_owner, new_owner), float(itemsize))
    np.fill_diagonal(sizes, 0.0)
    return sizes
