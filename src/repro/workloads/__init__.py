"""Application workloads generating total-exchange message patterns.

The paper motivates total exchange with array redistribution (a row-to-
column matrix transpose is an all-to-all personalized communication) and
evaluates a multimedia server scenario.  This package derives message-
size matrices from those applications:

* :mod:`repro.workloads.transpose` — 2-D matrix transpose between block
  row and block column distributions;
* :mod:`repro.workloads.blockcyclic` — block-cyclic array redistribution
  (the paper's reference [19] is the authors' own block-cyclic work);
* :mod:`repro.workloads.servers` — the Figure 12 multimedia client/server
  pattern (re-exported from :mod:`repro.model.messages`);
* :mod:`repro.workloads.mltraining` — data-parallel gradient
  synchronisation demand (ring all-reduce edges, parameter-server
  incast) for straggler-response serving experiments.
"""

from repro.model.messages import ServerClientSizes
from repro.workloads.adversarial import (
    caterpillar_killer,
    theorem2_chain,
    worst_case_search,
)
from repro.workloads.blockcyclic import block_cyclic_sizes
from repro.workloads.fft import butterfly_sizes, butterfly_stages, butterfly_time
from repro.workloads.mltraining import (
    allreduce_ring_sizes,
    parameter_server_sizes,
)
from repro.workloads.stencil import stencil_sizes
from repro.workloads.transpose import transpose_sizes

__all__ = [
    "ServerClientSizes",
    "allreduce_ring_sizes",
    "block_cyclic_sizes",
    "butterfly_sizes",
    "butterfly_stages",
    "butterfly_time",
    "caterpillar_killer",
    "parameter_server_sizes",
    "stencil_sizes",
    "theorem2_chain",
    "transpose_sizes",
    "worst_case_search",
]
