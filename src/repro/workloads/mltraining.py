"""Data-parallel ML training workloads: gradient synchronisation traffic.

Synchronous data-parallel training all-reduces one gradient block per
step, so its steady-state traffic is exactly the communication pattern
of the chosen all-reduce algorithm.  These helpers materialise that
traffic as per-pair size matrices so the serving runtime — which plans
arbitrary demand matrices — can drive gradient synchronisation through
:class:`~repro.runtime.AdaptiveSession` and react to stragglers with the
usual reuse/refine/repair/reschedule ladder.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def allreduce_ring_sizes(
    num_procs: int,
    block_bytes: float,
    *,
    ring: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Per-pair traffic of one ring all-reduce step.

    The reduce-scatter + all-gather ring moves ``2 (P-1)`` chunks of
    ``block_bytes / P`` over every directed ring edge, i.e.
    ``2 (P-1) / P * block_bytes`` per edge and nothing anywhere else —
    the bandwidth-optimal gradient synchronisation demand.  ``ring``
    reorders the edge set (default: rank order).
    """
    if num_procs < 1:
        raise ValueError(f"num_procs must be >= 1, got {num_procs}")
    if block_bytes < 0:
        raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
    n = num_procs
    sizes = np.zeros((n, n))
    if n == 1:
        return sizes
    if ring is None:
        ring = tuple(range(n))
    else:
        ring = tuple(int(node) for node in ring)
        if sorted(ring) != list(range(n)):
            raise ValueError(
                f"ring must be a permutation of range({n}), got {ring!r}"
            )
    per_edge = 2.0 * (n - 1) / n * float(block_bytes)
    for position in range(n):
        sizes[ring[position], ring[(position + 1) % n]] = per_edge
    return sizes


def parameter_server_sizes(
    num_procs: int,
    block_bytes: float,
    *,
    servers: int = 1,
) -> np.ndarray:
    """Per-pair traffic of one parameter-server synchronisation step.

    The first ``servers`` ranks shard the model; every worker pushes its
    full gradient (``block_bytes / servers`` per shard) to each server
    and pulls the updated shard back — the incast-heavy baseline the
    ring all-reduce exists to avoid.
    """
    if num_procs < 1:
        raise ValueError(f"num_procs must be >= 1, got {num_procs}")
    if block_bytes < 0:
        raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
    if not (1 <= servers <= num_procs):
        raise ValueError(
            f"servers must be in [1, {num_procs}], got {servers}"
        )
    sizes = np.zeros((num_procs, num_procs))
    shard = float(block_bytes) / servers
    for server in range(servers):
        for worker in range(servers, num_procs):
            sizes[worker, server] += shard
            sizes[server, worker] += shard
    return sizes
