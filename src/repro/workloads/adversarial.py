"""Adversarial instance generators and worst-case search.

Stress instances that drive specific schedulers toward their worst
behaviour — used in failure-injection tests and the robustness bench:

* :func:`caterpillar_killer` — long events placed on a permutation whose
  caterpillar displacements are all distinct, so *every* barrier step
  contains exactly one long event: the barrier-synchronised baseline
  pays ~``P`` long events while the lower bound is ~one long event plus
  short ones — a ratio approaching ``P`` (far beyond the ``P/2`` bound,
  which only holds for the order-preserving semantics).
* :func:`theorem2_chain` — re-export of the paper's tight instance
  family at arbitrary ``P`` (a chain of unit entries along one
  dependence path).
* :func:`worst_case_search` — random search for the instance maximising
  a scheduler's ratio to the lower bound, for empirical bound probing.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule
from repro.util.rng import RngLike, to_rng


def caterpillar_killer(
    num_procs: int, *, long: float = 1.0, short: float = 1e-3
) -> TotalExchangeProblem:
    """One long event per caterpillar step (requires odd ``num_procs``).

    The long entries sit on ``sigma(i) = 2i mod P``; the displacement of
    entry ``(i, 2i)`` is ``i mod P``, so each step ``1..P-1`` holds
    exactly one long event and the barrier baseline's completion is
    ``~(P-1) * long`` while the lower bound stays ``O(long + P*short)``.
    """
    if num_procs < 3 or num_procs % 2 == 0:
        raise ValueError("caterpillar_killer needs an odd P >= 3")
    if long <= 0 or short <= 0 or short > long:
        raise ValueError("need 0 < short <= long")
    cost = np.full((num_procs, num_procs), float(short))
    for i in range(1, num_procs):
        cost[i, (2 * i) % num_procs] = float(long)
    np.fill_diagonal(cost, 0.0)
    return TotalExchangeProblem(cost=cost)


def theorem2_chain(num_procs: int, *, epsilon: float = 1e-3) -> TotalExchangeProblem:
    """Generalisation of the paper's Theorem 2 instance to any ``P``.

    Unit entries are laid along one dependence path of the caterpillar:
    alternately "move down a column" (same sender, next step) and "move
    left along a row" (same receiver, next step), starting from the
    diagonal — so the order-preserving baseline must serialise ``P``
    unit entries while the lower bound is about two.
    """
    if num_procs < 2:
        raise ValueError("need at least 2 processors")
    if not (0 < epsilon < 1):
        raise ValueError("epsilon must be in (0, 1)")
    paper_c = np.full((num_procs, num_procs), float(epsilon))
    # walk the dependence path: start on the diagonal, alternate moves.
    row = col = num_procs // 2
    paper_c[row, col] = 1.0
    for step in range(num_procs - 1):
        if step % 2 == 0:
            row = (row + 1) % num_procs  # same column of C: same sender
        else:
            col = (col - 1) % num_procs  # same row of C: same receiver
        paper_c[row, col] = 1.0
    return TotalExchangeProblem.from_paper_matrix(paper_c)


def worst_case_search(
    scheduler: Callable[[TotalExchangeProblem], Schedule],
    num_procs: int,
    *,
    trials: int = 200,
    low: float = 0.01,
    high: float = 10.0,
    rng: RngLike = None,
) -> Tuple[TotalExchangeProblem, float]:
    """Random search for the scheduler's worst ratio-to-lower-bound.

    Returns ``(worst instance, worst ratio)`` over ``trials`` i.i.d.
    log-uniform instances — a cheap empirical probe of how tight an
    approximation bound is in practice.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = to_rng(rng)
    worst_problem = None
    worst_ratio = 0.0
    for _ in range(trials):
        cost = np.exp(
            rng.uniform(np.log(low), np.log(high), (num_procs, num_procs))
        )
        np.fill_diagonal(cost, 0.0)
        problem = TotalExchangeProblem(cost=cost)
        ratio = scheduler(problem).completion_time / problem.lower_bound()
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst_problem = problem
    return worst_problem, worst_ratio
