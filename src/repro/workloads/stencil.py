"""Stencil (halo-exchange) workloads.

Iterative PDE solvers decompose a 2-D domain over a process grid; each
step, neighbouring processes exchange halo strips.  The resulting
per-pair traffic is sparse and strongly local — the polar opposite of
total exchange — which makes it the placement-sensitive counterpart to
the all-to-all workloads: on a clustered metacomputer the winning
mapping keeps grid neighbours inside a site.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def grid_coords(rank: int, grid: Tuple[int, int]) -> Tuple[int, int]:
    """Row-major (row, col) coordinates of ``rank`` in the process grid."""
    rows, cols = grid
    if not (0 <= rank < rows * cols):
        raise ValueError(f"rank {rank} outside a {rows}x{cols} grid")
    return divmod(rank, cols)


def stencil_sizes(
    grid: Tuple[int, int],
    *,
    halo_bytes: float,
    diagonal_bytes: float = 0.0,
    periodic: bool = False,
) -> np.ndarray:
    """Per-pair halo traffic of one stencil exchange step.

    Parameters
    ----------
    grid:
        Process grid shape ``(rows, cols)``; ranks are row-major.
    halo_bytes:
        Bytes exchanged with each edge neighbour (north/south/east/west)
        — a 5-point stencil.
    diagonal_bytes:
        Bytes exchanged with corner neighbours (9-point stencils send
        small corner halos; 0 disables).
    periodic:
        Wrap the grid edges (torus) instead of truncating.
    """
    rows, cols = grid
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {grid}")
    if halo_bytes < 0 or diagonal_bytes < 0:
        raise ValueError("halo sizes must be non-negative")
    n = rows * cols
    sizes = np.zeros((n, n))

    def rank_of(r: int, c: int):
        if periodic:
            return (r % rows) * cols + (c % cols)
        if 0 <= r < rows and 0 <= c < cols:
            return r * cols + c
        return None

    edge_offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    corner_offsets = [(-1, -1), (-1, 1), (1, -1), (1, 1)]
    for rank in range(n):
        r, c = grid_coords(rank, grid)
        for dr, dc in edge_offsets:
            neighbour = rank_of(r + dr, c + dc)
            if neighbour is not None and neighbour != rank:
                sizes[rank, neighbour] += halo_bytes
        if diagonal_bytes > 0:
            for dr, dc in corner_offsets:
                neighbour = rank_of(r + dr, c + dc)
                if neighbour is not None and neighbour != rank:
                    sizes[rank, neighbour] += diagonal_bytes
    return sizes
