"""FFT butterfly exchange workloads.

The caterpillar baseline comes from SIMD FFT libraries (the paper's
reference [13]); the FFT's own communication is the butterfly: in stage
``k`` (of ``log2 P``), rank ``i`` exchanges a half-array message with
rank ``i XOR 2^k``.  Each stage is a perfect matching, so under the
one-port model a stage costs its slowest pair — which on a heterogeneous
network depends entirely on *which physical node runs which rank*,
making the butterfly the canonical client for placement optimisation
(:mod:`repro.placement`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot


def butterfly_stages(num_procs: int) -> List[List[Tuple[int, int]]]:
    """The butterfly's stages as lists of (lower, upper) rank pairs.

    ``num_procs`` must be a power of two; stage ``k`` pairs ``i`` with
    ``i XOR 2^k`` (each unordered pair listed once).
    """
    if num_procs < 2 or num_procs & (num_procs - 1):
        raise ValueError(
            f"butterfly needs a power-of-two rank count, got {num_procs}"
        )
    stages: List[List[Tuple[int, int]]] = []
    distance = 1
    while distance < num_procs:
        stage = [
            (i, i ^ distance) for i in range(num_procs) if i < (i ^ distance)
        ]
        stages.append(stage)
        distance *= 2
    return stages


def butterfly_sizes(
    num_procs: int, message_bytes: float
) -> np.ndarray:
    """Aggregate per-pair traffic of a full butterfly (both directions).

    Every rank exchanges ``message_bytes`` with one partner per stage,
    so the matrix has ``log2 P`` nonzero entries per row.
    """
    if message_bytes < 0:
        raise ValueError("message_bytes must be >= 0")
    sizes = np.zeros((num_procs, num_procs))
    for stage in butterfly_stages(num_procs):
        for a, b in stage:
            sizes[a, b] += message_bytes
            sizes[b, a] += message_bytes
    return sizes


def butterfly_time(
    snapshot: DirectorySnapshot,
    message_bytes: float,
    placement: Sequence[int],
) -> float:
    """Communication time of the butterfly under a rank placement.

    ``placement[rank]`` is the physical node executing that rank.  Each
    stage's exchanges run concurrently (a perfect matching, two messages
    per pair — one each way — which the two ports carry simultaneously),
    so a stage costs its slowest pairwise transfer and stages run back to
    back.
    """
    placement = list(placement)
    n = snapshot.num_procs
    if sorted(placement) != list(range(n)):
        raise ValueError("placement must be a permutation of the nodes")
    total = 0.0
    for stage in butterfly_stages(n):
        worst = 0.0
        for a, b in stage:
            u, v = placement[a], placement[b]
            worst = max(
                worst,
                snapshot.transfer_time(u, v, message_bytes),
                snapshot.transfer_time(v, u, message_bytes),
            )
        total += worst
    return total
