"""Data items, requests, and staging plans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.validation import check_positive


@dataclass(frozen=True)
class DataItem:
    """A named data object replicated at one or more source nodes."""

    name: str
    size_bytes: float
    sources: Tuple[int, ...]

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        if not self.sources:
            raise ValueError(f"item {self.name!r} has no sources")
        object.__setattr__(self, "sources", tuple(self.sources))


@dataclass(frozen=True)
class DataRequest:
    """A demand: deliver ``item`` to ``destination`` by ``deadline``.

    ``priority`` is a positive weight; higher priorities are scheduled
    first and weigh more in the satisfaction metrics.  ``arrival`` is
    when the request becomes known (and its transfer may start) —
    requests trickle in over a battle, they do not all exist at t=0.
    """

    item: DataItem
    destination: int
    deadline: float
    priority: float = 1.0
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.destination < 0:
            raise ValueError("destination must be a node index")
        if self.deadline < 0:
            raise ValueError("deadline must be >= 0")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        check_positive("priority", self.priority)


@dataclass(frozen=True)
class StagedTransfer:
    """One scheduled delivery: the chosen source, route, and timing.

    ``hops`` records each link traversal as
    ``((u, v), depart, arrive)`` — the reservation windows the scheduler
    committed, so link-serialisation can be audited after the fact.
    """

    request: DataRequest
    source: int
    route: Tuple[str, ...]  # graph vertices, node -> ... -> node
    start: float
    finish: float
    hops: Tuple[Tuple[Tuple[str, str], float, float], ...] = ()

    @property
    def on_time(self) -> bool:
        return self.finish <= self.request.deadline + 1e-12

    @property
    def tardiness(self) -> float:
        return max(0.0, self.finish - self.request.deadline)


@dataclass
class StagingPlan:
    """The scheduler's output: transfers plus any unroutable requests."""

    transfers: List[StagedTransfer] = field(default_factory=list)
    unroutable: List[DataRequest] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        return max((t.finish for t in self.transfers), default=0.0)

    def transfers_by_destination(self) -> Dict[int, List[StagedTransfer]]:
        by_dst: Dict[int, List[StagedTransfer]] = {}
        for transfer in self.transfers:
            by_dst.setdefault(transfer.request.destination, []).append(transfer)
        return by_dst
