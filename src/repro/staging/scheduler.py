"""The staging scheduler: multiple-source shortest path with reservations.

Follows the shape of Tan et al.'s heuristic (the paper's reference
[24]): requests are taken in priority order (deadline breaks ties); each
request is routed from its best replica over a time-expanded shortest
path, and the links along the chosen route are reserved so later
requests see the residual availability.

Link model: store-and-forward per hop; a link carries one transfer at a
time (its reservation horizon advances by the hop's transfer time), and
a hop cannot depart before the data has fully arrived at the hop's tail
node.  This is deliberately the *simplest* contention model that makes
requests interact — the knobs the paper cares about (deadlines,
priorities, replica choice, shared bottlenecks) all show up.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.topology import Metacomputer
from repro.staging.request import (
    DataRequest,
    StagedTransfer,
    StagingPlan,
)

Edge = Tuple[str, str]


def _canonical(u: str, v: str) -> Edge:
    return (u, v) if u <= v else (v, u)


def _earliest_arrival_route(
    system: Metacomputer,
    link_free: Dict[Edge, float],
    source_vertex: str,
    dest_vertex: str,
    size_bytes: float,
    release: float,
) -> Optional[Tuple[float, List[str]]]:
    """Time-aware Dijkstra: earliest arrival at ``dest_vertex``.

    Labels are arrival times; traversing an edge departs at
    ``max(arrival, link free time)`` and takes ``latency + size/bw``.
    """
    best: Dict[str, float] = {source_vertex: release}
    parent: Dict[str, str] = {}
    heap = [(release, source_vertex)]
    while heap:
        arrival, vertex = heapq.heappop(heap)
        if arrival > best.get(vertex, float("inf")):
            continue
        if vertex == dest_vertex:
            route = [vertex]
            while vertex in parent:
                vertex = parent[vertex]
                route.append(vertex)
            route.reverse()
            return arrival, route
        for neighbour in system.graph.neighbors(vertex):
            link = system.link(vertex, neighbour)
            depart = max(arrival, link_free.get(_canonical(vertex, neighbour), 0.0))
            hop_time = link.latency + size_bytes / link.bandwidth
            candidate = depart + hop_time
            if candidate < best.get(neighbour, float("inf")) - 1e-15:
                best[neighbour] = candidate
                parent[neighbour] = vertex
                heapq.heappush(heap, (candidate, neighbour))
    return None


def schedule_staging(
    system: Metacomputer,
    requests: Sequence[DataRequest],
    *,
    release_time: float = 0.0,
    order_by: str = "priority",
) -> StagingPlan:
    """Greedy staging plan over ``system`` for ``requests``.

    With ``order_by="priority"`` (the heuristic) requests are processed
    by decreasing priority, then increasing deadline; with
    ``order_by="arrival"`` they are processed in the given order (the
    QoS-blind ablation).  Each request gets the earliest-finishing
    (replica, route) available given earlier reservations, and its
    route's links are reserved.
    """
    plan = StagingPlan()
    link_free: Dict[Edge, float] = {}
    if order_by == "priority":
        ordered = sorted(
            requests, key=lambda r: (-r.priority, r.deadline, r.item.name)
        )
    elif order_by == "arrival":
        ordered = list(requests)
    else:
        raise ValueError(
            f"order_by must be 'priority' or 'arrival', got {order_by!r}"
        )
    num_procs = system.num_procs
    for request in ordered:
        if not (0 <= request.destination < num_procs):
            plan.unroutable.append(request)
            continue
        # a transfer can start no earlier than the plan's release time
        # and the request's own arrival
        release = max(release_time, request.arrival)
        dest_vertex = system.node_vertex(request.destination)
        best: Optional[Tuple[float, List[str], int]] = None
        for source in request.item.sources:
            if not (0 <= source < num_procs):
                continue
            if source == request.destination:
                best = (release, [dest_vertex], source)
                break
            found = _earliest_arrival_route(
                system,
                link_free,
                system.node_vertex(source),
                dest_vertex,
                request.item.size_bytes,
                release,
            )
            if found is not None and (best is None or found[0] < best[0]):
                best = (found[0], found[1], source)
        if best is None:
            plan.unroutable.append(request)
            continue
        finish, route, source = best
        # Reserve the route hop by hop, replaying the departure logic.
        arrival = release
        hops = []
        for u, v in zip(route, route[1:]):
            link = system.link(u, v)
            edge = _canonical(u, v)
            depart = max(arrival, link_free.get(edge, 0.0))
            hop_time = link.latency + request.item.size_bytes / link.bandwidth
            link_free[edge] = depart + hop_time
            arrival = depart + hop_time
            hops.append((edge, depart, arrival))
        plan.transfers.append(
            StagedTransfer(
                request=request,
                source=source,
                route=tuple(route),
                start=release,
                finish=finish,
                hops=tuple(hops),
            )
        )
    return plan


@dataclass(frozen=True)
class StagingMetrics:
    """Outcome summary of a staging plan."""

    total_requests: int
    delivered: int
    on_time: int
    weighted_satisfaction: float
    max_tardiness: float
    completion_time: float

    @property
    def on_time_rate(self) -> float:
        if self.total_requests == 0:
            return 1.0
        return self.on_time / self.total_requests


def evaluate_plan(plan: StagingPlan) -> StagingMetrics:
    """Score a staging plan against its requests' deadlines."""
    total = len(plan.transfers) + len(plan.unroutable)
    on_time = sum(1 for t in plan.transfers if t.on_time)
    weight_total = sum(t.request.priority for t in plan.transfers) + sum(
        r.priority for r in plan.unroutable
    )
    weight_met = sum(t.request.priority for t in plan.transfers if t.on_time)
    return StagingMetrics(
        total_requests=total,
        delivered=len(plan.transfers),
        on_time=on_time,
        weighted_satisfaction=(
            weight_met / weight_total if weight_total > 0 else 1.0
        ),
        max_tardiness=max(
            (t.tardiness for t in plan.transfers), default=0.0
        ),
        completion_time=plan.completion_time,
    )
