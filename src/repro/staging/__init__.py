"""Data staging over heterogeneous networks (paper Section 2 / 6.4).

The BADD (Battlefield Awareness and Data Dissemination) program posed a
staging problem the paper cites via Tan et al. [24]: data items sit at
source machines, each *request* names an item, a destination, a
real-time deadline, and a priority, and items move over a shared
heterogeneous network where link capacity serialises transfers.  The
reference heuristic routes each request over a multiple-source
shortest-path and reserves link time greedily in priority/deadline
order.

* :mod:`repro.staging.request` — items, requests, and the staged plan;
* :mod:`repro.staging.scheduler` — the multiple-source shortest-path
  heuristic with per-link time reservations, plus metrics.
"""

from repro.staging.request import DataItem, DataRequest, StagedTransfer, StagingPlan
from repro.staging.scheduler import (
    StagingMetrics,
    evaluate_plan,
    schedule_staging,
)

__all__ = [
    "DataItem",
    "DataRequest",
    "StagedTransfer",
    "StagingMetrics",
    "StagingPlan",
    "evaluate_plan",
    "schedule_staging",
]
