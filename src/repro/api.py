"""The one import for building repro objects from spec strings.

Every parameterized family in the codebase is addressed by the same
compact grammar — ``name[:key=value,...]`` — parsed and formatted by
exactly one implementation (:mod:`repro.util.spec`).  This facade
gathers the four factories plus the grammar itself, so callers (and
the daemon's wire protocol, which carries nothing but these strings)
never touch per-subsystem parsing quirks:

=============  ==========================================  =======================
family         example spec                                factory
=============  ==========================================  =======================
scheduler      ``"openshop_partitioned:chunks=4"``         :func:`make_scheduler`
directory      ``"noisy:sigma=0.1"``                       :func:`make_directory`
collective     ``"allreduce:variant=tree"``                :func:`make_collective`
fault profile  ``"blackout:src=0,dst=1,at=2,recover=3"``   :func:`make_fault_profile`
=============  ==========================================  =======================

Identical behaviour everywhere, by construction: values parse the same
(``true``/``false`` booleans, int/float narrowing, strings otherwise),
malformed options raise the same ``ValueError`` naming the bad token,
and ``parse -> format -> parse`` round-trips for every family — the
fuzz suite in ``tests/test_api_facade.py`` pins this.

One registry-specific wrinkle is preserved: scheduler names such as
``"matching_min:auction"`` *are* registered names containing ``:``, so
:func:`parse_scheduler_spec` checks the registry before applying the
grammar.

Fault profiles are the one list-valued family: a profile is
``;``-joined fault entries (each entry in the shared grammar) or a
named preset (``"smoke"``, ``"none"``).

The ops surface rides the same grammar: SLO specs
(``"p99_decision_latency:threshold=0.5,window=30"``, parsed by
:func:`parse_slo_spec`) and notifier specs (``"file:path=alerts.jsonl"``,
:func:`make_notifier`).  This facade also re-exports the
:class:`MetricsSink` protocol and its implementations — the one way
metrics leave a session or daemon (see :mod:`repro.ops`).
"""

from __future__ import annotations

from repro.collectives.registry import (
    format_collective_spec,
    make_collective,
    parse_collective_spec,
)
from repro.core.registry import (
    format_scheduler_spec,
    make_scheduler,
    parse_scheduler_spec,
)
from repro.directory.factory import (
    format_directory_spec,
    make_directory,
    parse_directory_spec,
)
from repro.faults.models import (
    format_fault_entry,
    format_fault_profile,
    parse_fault_entry,
    parse_fault_profile,
)
from repro.ops.backup import BackupManager
from repro.ops.sink import MetricsSink, MultiSink, NullSink, StoreSink
from repro.ops.slo import (
    SloMonitor,
    SloSpec,
    format_slo_spec,
    make_notifier,
    parse_slo_spec,
)
from repro.ops.store import MetricsStore
from repro.util.spec import (
    format_spec,
    format_value,
    parse_spec,
    parse_value,
)

#: Canonical alias: the fault factory, named like its three siblings.
make_fault_profile = parse_fault_profile

__all__ = [
    "BackupManager",
    "MetricsSink",
    "MetricsStore",
    "MultiSink",
    "NullSink",
    "SloMonitor",
    "SloSpec",
    "StoreSink",
    "format_collective_spec",
    "format_directory_spec",
    "format_fault_entry",
    "format_fault_profile",
    "format_scheduler_spec",
    "format_slo_spec",
    "format_spec",
    "format_value",
    "make_collective",
    "make_directory",
    "make_fault_profile",
    "make_notifier",
    "make_scheduler",
    "parse_collective_spec",
    "parse_directory_spec",
    "parse_fault_entry",
    "parse_fault_profile",
    "parse_scheduler_spec",
    "parse_slo_spec",
    "parse_spec",
    "parse_value",
]
