"""Seeded adversarial instance generation for the correctness harness.

The hand-picked golden instances in the test suite pin the kernels at a
few processor counts; this module supplies the *other* end of the
spectrum — randomized :class:`~repro.core.problem.TotalExchangeProblem`s
drawn from families chosen to stress exactly the places where the
optimized kernels diverge from the seed implementations:

* tie-breaking (``near_tie``, ``all_equal``, ``integer`` — many exactly
  equal costs, so the ``(time, index)`` tie-break order is load-bearing);
* penalty arithmetic (``sparse``, ``zero`` — masked entries and
  zero-duration markers);
* heterogeneity (``hetero``, ``asymmetric``, ``hotspot`` — the wide
  latency/bandwidth spreads of the paper's metacomputing setting);
* degenerate shapes (``P in {1, 2}`` drawn regularly, and
  ``self_messages`` — positive diagonals as in Theorem 2's tight
  instance, which occupy both ports of a node at once);
* two-level structure (``clustered`` — logical homogeneous clusters
  with skewed sizes, singletons, and a near-partitioned cluster,
  exercising the hierarchical scheduler's detection and splice).

Every instance is reproducible from ``(family, num_procs, seed)`` via
:func:`build_instance`, which is what the failure artifacts record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.util.rng import stable_seed

#: A family builder returns a ``[src, dst]`` cost matrix for ``p`` procs.
FamilyBuilder = Callable[[np.random.Generator, int], np.ndarray]


def _zero_diagonal(cost: np.ndarray) -> np.ndarray:
    np.fill_diagonal(cost, 0.0)
    return cost


def _uniform(rng: np.random.Generator, p: int) -> np.ndarray:
    return _zero_diagonal(rng.uniform(0.5, 10.0, size=(p, p)))


def _hetero(rng: np.random.Generator, p: int) -> np.ndarray:
    # Lognormal spread over ~3 orders of magnitude: fast LAN links next
    # to slow WAN links, the paper's metacomputing regime.
    return _zero_diagonal(rng.lognormal(mean=0.0, sigma=1.5, size=(p, p)))


def _sparse(rng: np.random.Generator, p: int) -> np.ndarray:
    cost = rng.uniform(0.5, 10.0, size=(p, p))
    cost[rng.random((p, p)) < 0.6] = 0.0
    return _zero_diagonal(cost)


def _near_tie(rng: np.random.Generator, p: int) -> np.ndarray:
    # A handful of base values plus jitter far above the comparison
    # tolerances but far below the value scale: picks hinge on the
    # tie-break order without degenerating into exact ties.
    base = rng.choice([1.0, 2.0, 5.0], size=(p, p))
    return _zero_diagonal(base + rng.uniform(0.0, 1e-6, size=(p, p)))


def _all_equal(rng: np.random.Generator, p: int) -> np.ndarray:
    return _zero_diagonal(np.full((p, p), float(rng.integers(1, 5))))


def _integer(rng: np.random.Generator, p: int) -> np.ndarray:
    # Small integer costs: many exact ties and many zeros at once.
    return _zero_diagonal(rng.integers(0, 5, size=(p, p)).astype(float))


def _zero(rng: np.random.Generator, p: int) -> np.ndarray:
    return np.zeros((p, p))


def _asymmetric(rng: np.random.Generator, p: int) -> np.ndarray:
    # cost[i, j] and cost[j, i] differ by orders of magnitude: fast
    # uplinks over slow downlinks, stressing the send/receive port split.
    cost = rng.uniform(0.5, 2.0, size=(p, p))
    cost[np.tril_indices(p, -1)] *= 50.0
    return _zero_diagonal(cost)


def _hotspot(rng: np.random.Generator, p: int) -> np.ndarray:
    # One dominant sender row and one dominant receiver column: the
    # lower bound is concentrated on a single port.
    cost = rng.uniform(0.1, 1.0, size=(p, p))
    cost[rng.integers(0, p)] *= 30.0
    cost[:, rng.integers(0, p)] *= 30.0
    return _zero_diagonal(cost)


def _self_messages(rng: np.random.Generator, p: int) -> np.ndarray:
    # Positive diagonal entries (allowed by the schedule semantics —
    # Theorem 2's tight instance uses them) on a sparse background.
    cost = rng.uniform(0.5, 10.0, size=(p, p))
    cost[rng.random((p, p)) < 0.3] = 0.0
    diagonal = rng.uniform(0.5, 5.0, size=p)
    diagonal[rng.random(p) < 0.5] = 0.0
    np.fill_diagonal(cost, diagonal)
    return cost


def _clustered(rng: np.random.Generator, p: int) -> np.ndarray:
    # Two-level bandwidth structure à la Estefanel/Mounié: nodes fall
    # into clusters of skewed sizes (singletons included), intra-cluster
    # links are cheap, inter-cluster links are one to two orders of
    # magnitude dearer with a per-cluster-pair level, and one cluster is
    # near-partitioned from the rest (~50x worse again).  Stresses the
    # hierarchical scheduler's detection, splice, and degenerate paths.
    k = int(rng.integers(1, p + 1))
    labels = rng.integers(0, k, size=p)  # skewed sizes, possibly empty ids
    intra = rng.uniform(0.5, 1.5, size=(p, p))
    scale = rng.uniform(np.log(8.0), np.log(64.0), size=(k, k))
    inter_level = np.exp(scale)
    remote = int(rng.integers(0, k))
    inter_level[remote, :] *= 50.0
    inter_level[:, remote] *= 50.0
    cost = intra * inter_level[np.ix_(labels, labels)]
    same = labels[:, None] == labels[None, :]
    cost[same] = intra[same]
    cost *= rng.uniform(0.95, 1.05, size=(p, p))
    return _zero_diagonal(cost)


#: Registered families, in deterministic iteration order.
FAMILIES: Dict[str, FamilyBuilder] = {
    "uniform": _uniform,
    "hetero": _hetero,
    "sparse": _sparse,
    "near_tie": _near_tie,
    "all_equal": _all_equal,
    "integer": _integer,
    "zero": _zero,
    "asymmetric": _asymmetric,
    "hotspot": _hotspot,
    "self_messages": _self_messages,
    "clustered": _clustered,
}


@dataclass(frozen=True)
class CheckInstance:
    """One generated instance plus its reproduction coordinates."""

    seed: int
    family: str
    problem: TotalExchangeProblem

    @property
    def num_procs(self) -> int:
        return self.problem.num_procs


def draw_num_procs(rng: np.random.Generator, p_max: int) -> int:
    """Draw a processor count biased toward the interesting small sizes.

    Degenerate ``P in {1, 2}`` appear regularly, the exactly-solvable
    range ``P <= 6`` dominates (so the exact-solver differential gets
    coverage), and the tail stretches up to ``p_max``.
    """
    if p_max < 1:
        raise ValueError(f"p_max must be >= 1, got {p_max}")
    roll = rng.random()
    if roll < 0.15:
        return int(rng.integers(1, min(2, p_max) + 1))
    if roll < 0.60 and p_max >= 3:
        return int(rng.integers(3, min(6, p_max) + 1))
    return int(rng.integers(1, p_max + 1))


def build_instance(family: str, num_procs: int, seed: int) -> CheckInstance:
    """Rebuild the instance recorded by a failure artifact."""
    if family not in FAMILIES:
        known = ", ".join(FAMILIES)
        raise KeyError(f"unknown instance family {family!r}; known: {known}")
    rng = np.random.default_rng(seed)
    cost = FAMILIES[family](rng, num_procs)
    return CheckInstance(
        seed=seed, family=family, problem=TotalExchangeProblem(cost=cost)
    )


def generate_instances(
    count: int, *, p_max: int = 12, base_seed: int = 0
) -> Iterator[CheckInstance]:
    """Yield ``count`` reproducible adversarial instances.

    Families rotate round-robin so every family is exercised even at
    small counts; the processor count and matrix entries are drawn from
    a per-instance stream keyed by ``(base_seed, index)``, so instance
    ``k`` is identical regardless of how many instances are generated.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    names: Tuple[str, ...] = tuple(FAMILIES)
    for k in range(count):
        family = names[k % len(names)]
        seed = stable_seed("repro.check", base_seed, family, k)
        shape_rng = np.random.default_rng(stable_seed("repro.check.p", seed))
        num_procs = draw_num_procs(shape_rng, p_max)
        yield build_instance(family, num_procs, seed)
