"""The collectives family: every registered collective must deliver.

``check --collectives`` audits 100% of
:func:`repro.collectives.iter_collective_specs` — old and new — on
seeded heterogeneous directories:

* a **per-family delivery/semantics oracle**: after the last event every
  rank holds exactly what the collective promises (fan-out reachability
  for broadcasts/scatters, fan-in accumulation for gathers/reductions,
  gossip closure for all-reduces/barriers, full pair coverage via the
  total-exchange oracle for the exchange patterns);
* **round/volume guarantee caps** for the log-round families:
  ``ceil(log2 P)`` rounds for ``broadcast_log`` / ``allbroadcast`` /
  ``reduction``, ``2 (P-1)`` steps and ``2 (P-1)/P`` per-node volume for
  the ``allreduce`` ring, ``sum(d_a - 1)`` fabric-constrained rounds for
  ``alltoall_direct``;
* **operand-flow replay** over the planner's round annotations: a
  reduction sender ships exactly the partial it holds and never double
  counts; every all-to-all block is held by its sender when sent;
* **differential references**: each new planner's (vectorized) event
  timings must match an independent scalar re-execution of the same
  round structure bit-exactly.

Every schedule also passes the fast one-port checker.  Run it via
``python -m repro.cli check --collectives``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.check.oracle import oracle_violations
from repro.collectives.allreduce import (
    AllreducePlan,
    allreduce_log_tree,
    allreduce_rs_ag,
)
from repro.collectives.direct import (
    DirectExchangePlan,
    alltoall_direct_plan,
    fabric_dims,
    fabric_edges,
)
from repro.collectives.logrounds import (
    RoundEntry,
    RoundPlan,
    allbroadcast_plan,
    broadcast_log_plan,
    log2_rounds,
    reduction_log_plan,
)
from repro.collectives.patterns import allgather_problem, alltoall_problem
from repro.collectives.registry import iter_collective_specs
from repro.directory.factory import make_directory
from repro.directory.service import DirectorySnapshot
from repro.timing.events import Schedule
from repro.timing.validate import ScheduleError, check_schedule_fast
from repro.util.tables import format_table

#: Slack for comparing event times against arrival times.
TIME_TOL = 1e-9


# ---------------------------------------------------------------------------
# Generic per-family delivery audits (schedule-level, payload-free).
# ---------------------------------------------------------------------------


def fanout_violations(schedule: Schedule, *, root: int = 0) -> List[str]:
    """Broadcast/scatter reachability: data flows root -> everyone.

    Walking events in time order, every sender must already have been
    reached when its send starts, and every rank must have been reached
    by the end.
    """
    violations: List[str] = []
    reached: Dict[int, float] = {root: 0.0}
    for event in schedule.events:
        if event.src == event.dst:
            continue
        arrived = reached.get(event.src)
        if arrived is None:
            violations.append(
                f"rank {event.src} sends at {event.start:.6g} without "
                f"ever being reached from root {root}"
            )
        elif event.start < arrived - TIME_TOL:
            violations.append(
                f"rank {event.src} sends at {event.start:.6g} before its "
                f"own data arrives at {arrived:.6g}"
            )
        finish = event.finish
        previous = reached.get(event.dst)
        reached[event.dst] = finish if previous is None else min(
            previous, finish
        )
    missing = sorted(set(range(schedule.num_procs)) - set(reached))
    if missing:
        violations.append(f"ranks never reached from root {root}: {missing}")
    return violations


def _knowledge_closure(schedule: Schedule) -> List[Dict[int, float]]:
    """Per-rank arrival times under transfer-everything semantics.

    Every event forwards everything its sender knew when the send
    started; the return value maps, for each rank, known source rank ->
    earliest arrival time.  This is the *most generous* reading of an
    unannotated schedule, so a rank missing knowledge here is a hard
    delivery failure for any accumulate-style collective.
    """
    n = schedule.num_procs
    known: List[Dict[int, float]] = [{rank: 0.0} for rank in range(n)]
    for event in schedule.events:
        if event.src == event.dst:
            continue
        finish = event.finish
        target = known[event.dst]
        for origin, arrived in known[event.src].items():
            if arrived <= event.start + TIME_TOL:
                previous = target.get(origin)
                if previous is None or finish < previous:
                    target[origin] = finish
    return known


def fanin_violations(schedule: Schedule, *, root: int = 0) -> List[str]:
    """Gather/reduce delivery: the root ends up holding every rank's part."""
    known = _knowledge_closure(schedule)
    missing = sorted(
        set(range(schedule.num_procs)) - set(known[root])
    )
    if missing:
        return [
            f"root {root} never receives contributions from ranks "
            f"{missing}"
        ]
    return []


def gossip_violations(schedule: Schedule) -> List[str]:
    """All-reduce/barrier/all-broadcast closure: everyone hears everyone."""
    known = _knowledge_closure(schedule)
    everyone = set(range(schedule.num_procs))
    violations: List[str] = []
    for rank, arrivals in enumerate(known):
        missing = sorted(everyone - set(arrivals))
        if missing:
            violations.append(
                f"rank {rank} never receives data from ranks {missing}"
            )
    return violations


def port_violations(schedule: Schedule) -> List[str]:
    """One-port validity via the fast checker, as a violations list."""
    try:
        check_schedule_fast(schedule)
    except ScheduleError as exc:
        return list(exc.violations) or [str(exc)]
    return []


# ---------------------------------------------------------------------------
# Plan-level oracles over round/payload annotations.
# ---------------------------------------------------------------------------


def round_structure_violations(
    entries: Sequence[RoundEntry],
    num_procs: int,
    *,
    max_rounds: Optional[int] = None,
    exact_rounds: Optional[int] = None,
) -> List[str]:
    """Round indices are sane and each node uses each port once a round."""
    violations: List[str] = []
    rounds = 1 + max((e.round for e in entries), default=-1)
    if exact_rounds is not None and rounds != exact_rounds:
        violations.append(
            f"used {rounds} rounds, the optimal structure takes exactly "
            f"{exact_rounds}"
        )
    if max_rounds is not None and rounds > max_rounds:
        violations.append(
            f"used {rounds} rounds, cap is {max_rounds}"
        )
    seen_send: Set[Tuple[int, int]] = set()
    seen_recv: Set[Tuple[int, int]] = set()
    for entry in entries:
        if entry.round < 0:
            violations.append(f"negative round index {entry.round}")
        if not (0 <= entry.src < num_procs and 0 <= entry.dst < num_procs):
            violations.append(
                f"event {entry.src}->{entry.dst} outside [0, {num_procs})"
            )
            continue
        send_key = (entry.round, entry.src)
        recv_key = (entry.round, entry.dst)
        if send_key in seen_send:
            violations.append(
                f"rank {entry.src} sends twice in round {entry.round}"
            )
        if recv_key in seen_recv:
            violations.append(
                f"rank {entry.dst} receives twice in round {entry.round}"
            )
        seen_send.add(send_key)
        seen_recv.add(recv_key)
    return violations


def block_flow_violations(
    entries: Sequence[RoundEntry],
    initial: Dict[int, Set[Any]],
    required: Dict[int, Set[Any]],
) -> List[str]:
    """Replay payload flow: senders hold what they send, targets get theirs.

    ``initial`` maps rank -> items present at t=0; ``required`` maps
    rank -> items that must have arrived by the end.
    """
    violations: List[str] = []
    arrival: Dict[int, Dict[Any, float]] = {
        rank: {item: 0.0 for item in items}
        for rank, items in initial.items()
    }
    for entry in entries:
        holder = arrival.setdefault(entry.src, {})
        target = arrival.setdefault(entry.dst, {})
        for item in entry.payload:
            at = holder.get(item)
            if at is None:
                violations.append(
                    f"round {entry.round}: {entry.src}->{entry.dst} sends "
                    f"{item!r} the sender never held"
                )
            elif at > entry.start + TIME_TOL:
                violations.append(
                    f"round {entry.round}: {entry.src}->{entry.dst} sends "
                    f"{item!r} at {entry.start:.6g} before it arrives at "
                    f"{at:.6g}"
                )
            finish = entry.finish
            previous = target.get(item)
            if previous is None or finish < previous:
                target[item] = finish
    for rank in sorted(required):
        missing = sorted(
            (item for item in required[rank]
             if item not in arrival.get(rank, {})),
            key=repr,
        )
        if missing:
            violations.append(
                f"rank {rank} never receives {missing[:5]}"
                + (f" (+{len(missing) - 5} more)" if len(missing) > 5 else "")
            )
    return violations


def reduction_flow_violations(
    plan: RoundPlan, *, root: int = 0
) -> List[str]:
    """Operand flow of a halving reduction tree.

    Every sender ships exactly the partial it has accumulated, then
    drops out; no contribution is ever folded twice; the root ends with
    all P contributions and never relinquishes its own.
    """
    n = plan.num_procs
    violations: List[str] = []
    contrib: Dict[int, Set[int]] = {i: {i} for i in range(n)}
    retired: Set[int] = set()
    for entry in plan.entries:
        if entry.src in retired:
            violations.append(
                f"round {entry.round}: rank {entry.src} sends again after "
                f"relinquishing its partial"
            )
        if entry.dst in retired:
            violations.append(
                f"round {entry.round}: retired rank {entry.dst} receives"
            )
        payload = set(entry.payload)
        if payload != contrib[entry.src]:
            violations.append(
                f"round {entry.round}: rank {entry.src} sends "
                f"{sorted(payload)} but holds {sorted(contrib[entry.src])}"
            )
        doubled = payload & contrib[entry.dst]
        if doubled:
            violations.append(
                f"round {entry.round}: contributions {sorted(doubled)} "
                f"folded into rank {entry.dst} twice"
            )
        contrib[entry.dst] |= payload
        retired.add(entry.src)
    if root in retired:
        violations.append(f"root {root} relinquished its partial")
    missing = sorted(set(range(n)) - contrib[root])
    if missing:
        violations.append(
            f"root {root} never accumulates contributions {missing}"
        )
    return violations


def allreduce_flow_violations(plan: AllreducePlan) -> List[str]:
    """Contribution flow of the reduce-scatter + all-gather ring.

    Replays the chunk annotations: after the reduce-scatter half every
    position holds its fully reduced chunk, and at the end every
    position holds every fully reduced chunk.
    """
    n = plan.num_procs
    if n <= 1:
        return []
    violations: List[str] = []
    everyone = set(range(n))
    # sets[k][c]: ranks folded into position k's copy of chunk c
    sets: List[List[Set[int]]] = [
        [{plan.ring[k]} for _ in range(n)] for k in range(n)
    ]
    for index in range(plan.step_index.size):
        step = int(plan.step_index[index])
        position = index % n
        chunk = int(plan.chunk_index[index])
        expected_chunk = (position - step) % n
        if chunk != expected_chunk:
            violations.append(
                f"step {step}: position {position} rotates chunk {chunk}, "
                f"structure says {expected_chunk}"
            )
        receiver = (position + 1) % n
        sets[receiver][chunk] |= sets[position][chunk]
    for position in range(n):
        own = (position + 1) % n
        # the chunk fully reduced at this position after the RS half is
        # the one it received at step n-2 (chunk (position+1) mod n)
        if sets[position][own] != everyone:
            violations.append(
                f"position {position} ends the reduce-scatter half with "
                f"chunk {own} missing contributions "
                f"{sorted(everyone - sets[position][own])}"
            )
        for chunk in range(n):
            missing = everyone - sets[position][chunk]
            if missing:
                violations.append(
                    f"position {position} never receives contributions "
                    f"{sorted(missing)} of chunk {chunk}"
                )
    return violations


def allreduce_volume_violations(
    plan: AllreducePlan, block_bytes: float
) -> List[str]:
    """The bandwidth-optimality cap: 2 (P-1)/P of the block per node."""
    n = plan.num_procs
    if n <= 1:
        return []
    violations: List[str] = []
    if plan.steps != 2 * (n - 1):
        violations.append(
            f"ring used {plan.steps} steps, the optimal structure takes "
            f"exactly {2 * (n - 1)}"
        )
    sent = np.bincount(
        plan.srcs,
        weights=np.full(plan.srcs.size, plan.chunk_bytes),
        minlength=n,
    )
    cap = 2.0 * (n - 1) / n * float(block_bytes)
    worst = float(sent.max()) if sent.size else 0.0
    if worst > cap * (1.0 + 1e-9) + 1e-9:
        violations.append(
            f"per-node volume {worst:.6g} bytes exceeds the "
            f"2(P-1)/P cap {cap:.6g}"
        )
    return violations


def fabric_violations(plan: DirectExchangePlan) -> List[str]:
    """Every direct-connect event must travel a physical fabric link."""
    edges = fabric_edges(plan.topology, plan.num_procs, plan.dims or None)
    violations: List[str] = []
    for entry in plan.entries:
        if (entry.src, entry.dst) not in edges:
            violations.append(
                f"round {entry.round}: {entry.src}->{entry.dst} is not a "
                f"{plan.topology} link"
            )
    cap = sum(d - 1 for d in plan.dims)
    if plan.rounds > cap:
        violations.append(
            f"{plan.rounds} shift rounds exceed the factorization cap "
            f"{cap}"
        )
    return violations


# ---------------------------------------------------------------------------
# Naive scalar reference executors (differential targets).
# ---------------------------------------------------------------------------

Entry = Tuple[int, float, int, int, float]


def reference_broadcast_log(
    snapshot: DirectorySnapshot, size_bytes: float, *, root: int = 0
) -> List[Entry]:
    """Scalar re-execution of the greedy log-round broadcast."""
    n = snapshot.num_procs
    if n == 1:
        return []
    lat = snapshot.latency
    bw = snapshot.bandwidth
    size = float(size_bytes)
    ready = {i: 0.0 for i in range(n)}
    informed = [root]
    uninformed = [i for i in range(n) if i != root]
    entries: List[Entry] = []
    rnd = 0
    while uninformed:
        base = dict(ready)
        count = min(len(informed), len(uninformed))
        taken_s: Set[int] = set()
        taken_r: Set[int] = set()
        picks: List[Tuple[int, int, float]] = []
        for _ in range(count):
            best: Optional[Tuple[int, int, float]] = None
            for si, src in enumerate(informed):
                if si in taken_s:
                    continue
                for ri, dst in enumerate(uninformed):
                    if ri in taken_r:
                        continue
                    done = base[src] + (lat[src, dst] + size / bw[src, dst])
                    if best is None or done < best[2]:
                        best = (si, ri, float(done))
            assert best is not None
            taken_s.add(best[0])
            taken_r.add(best[1])
            picks.append(best)
        newly: List[int] = []
        for si, ri, done in picks:
            src = informed[si]
            dst = uninformed[ri]
            start = base[src]
            entries.append((rnd, start, src, dst, done - start))
            ready[src] = done
            ready[dst] = done
            newly.append(dst)
        informed.extend(newly)
        gone = set(newly)
        uninformed = [u for u in uninformed if u not in gone]
        rnd += 1
    return entries


def reference_allbroadcast(
    snapshot: DirectorySnapshot, block_bytes: float
) -> List[Entry]:
    """Scalar re-execution of the Bruck-style all-broadcast rounds."""
    n = snapshot.num_procs
    if n == 1:
        return []
    block = float(block_bytes)
    ready = [0.0] * n
    entries: List[Entry] = []
    rnd = 0
    shift = 1
    while shift < n:
        count = min(shift, n - shift)
        size = count * block
        previous = list(ready)
        send_finish = [0.0] * n
        recv_finish = [0.0] * n
        for dst in range(n):
            src = (dst + shift) % n
            start = max(previous[src], previous[dst])
            duration = float(snapshot.transfer_time(src, dst, size))
            entries.append((rnd, start, src, dst, duration))
            send_finish[src] = start + duration
            recv_finish[dst] = start + duration
        ready = [max(a, b) for a, b in zip(send_finish, recv_finish)]
        shift <<= 1
        rnd += 1
    return entries


def reference_reduction_log(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    root: int = 0,
    combine_rate: float = 1e9,
) -> List[Entry]:
    """Scalar re-execution of the greedy halving reduction."""
    n = snapshot.num_procs
    if n == 1:
        return []
    lat = snapshot.latency
    bw = snapshot.bandwidth
    block = float(block_bytes)
    combine = block / float(combine_rate)
    ready = {i: 0.0 for i in range(n)}
    active = list(range(n))
    entries: List[Entry] = []
    rnd = 0
    while len(active) > 1:
        senders = [node for node in active if node != root]
        receivers = list(active)
        base = dict(ready)
        count = len(active) // 2
        dead_rows: Set[int] = set()
        dead_cols: Set[int] = set()
        picks: List[Tuple[int, int, float]] = []
        for _ in range(count):
            best: Optional[Tuple[int, int, float]] = None
            for si, src in enumerate(senders):
                if si in dead_rows:
                    continue
                for ri, dst in enumerate(receivers):
                    if ri in dead_cols or src == dst:
                        continue
                    done = max(base[src], base[dst]) + (
                        lat[src, dst] + block / bw[src, dst]
                    )
                    if best is None or done < best[2]:
                        best = (si, ri, float(done))
            assert best is not None
            si, ri, _ = best
            dead_rows.add(si)
            dead_cols.add(ri)
            for sj, src in enumerate(senders):
                if src == receivers[ri]:
                    dead_rows.add(sj)
            for rj, dst in enumerate(receivers):
                if dst == senders[si]:
                    dead_cols.add(rj)
            picks.append(best)
        removed: Set[int] = set()
        for si, ri, done in picks:
            src = senders[si]
            dst = receivers[ri]
            start = max(base[src], base[dst])
            entries.append((rnd, start, src, dst, done - start))
            ready[dst] = done + combine
            removed.add(src)
        active = [node for node in active if node not in removed]
        rnd += 1
    return entries


def reference_allreduce_rs_ag(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    ring: Sequence[int],
    *,
    combine_rate: float = 1e9,
) -> List[Entry]:
    """Scalar re-execution of the pipelined ring step recurrence."""
    n = len(ring)
    if n == 1:
        return []
    chunk = float(block_bytes) / n
    combine = chunk / float(combine_rate)
    durations = [
        snapshot.latency[ring[k], ring[(k + 1) % n]]
        + chunk / snapshot.bandwidth[ring[k], ring[(k + 1) % n]]
        for k in range(n)
    ]
    send_free = [0.0] * n
    recv_free = [0.0] * n
    prev_finish = [0.0] * n
    entries: List[Entry] = []
    for step in range(2 * (n - 1)):
        starts = []
        for k in range(n):
            if step == 0:
                chunk_ready = 0.0
            else:
                chunk_ready = prev_finish[(k - 1) % n]
                if step <= n - 1:
                    chunk_ready = chunk_ready + combine
            starts.append(max(
                send_free[k], recv_free[(k + 1) % n], chunk_ready
            ))
        finish = [starts[k] + durations[k] for k in range(n)]
        send_free = list(finish)
        recv_free = [finish[(k - 1) % n] for k in range(n)]
        prev_finish = finish
        for k in range(n):
            entries.append((
                step, starts[k], int(ring[k]), int(ring[(k + 1) % n]),
                float(durations[k]),
            ))
    return entries


def reference_alltoall_direct(
    snapshot: DirectorySnapshot,
    message_bytes: float,
    *,
    topology: str = "ring",
    dims=None,
) -> List[Tuple[int, float, int, int, float, Tuple[Any, ...]]]:
    """Block-position re-simulation of the dimension-ordered routing."""
    n = snapshot.num_procs
    extents = fabric_dims(topology, n, dims)
    message = float(message_bytes)
    entries: List[Tuple[int, float, int, int, float, Tuple[Any, ...]]] = []
    if n <= 1:
        return entries
    coords = {
        rank: tuple(np.unravel_index(rank, extents))
        for rank in range(n)
    }
    position: Dict[Tuple[int, int], int] = {}
    available: Dict[Tuple[int, int], float] = {}
    for origin in range(n):
        for dest in range(n):
            if origin != dest:
                position[(origin, dest)] = origin
                available[(origin, dest)] = 0.0
    send_free = [0.0] * n
    recv_free = [0.0] * n
    round_ix = 0
    for axis in range(len(extents)):
        extent = extents[axis]
        if extent < 2:
            continue
        for _ in range(extent - 1):
            moves = []
            for src in range(n):
                payload = sorted(
                    block for block, holder in position.items()
                    if holder == src
                    and coords[block[1]][axis] != coords[src][axis]
                )
                if payload:
                    succ = list(coords[src])
                    succ[axis] = (succ[axis] + 1) % extent
                    dst = int(np.ravel_multi_index(succ, extents))
                    moves.append((src, dst, payload))
            for src, dst, payload in moves:
                data_ready = max(available[block] for block in payload)
                start = max(send_free[src], recv_free[dst], data_ready)
                size = len(payload) * message
                duration = float(snapshot.transfer_time(src, dst, size))
                finish = start + duration
                send_free[src] = finish
                recv_free[dst] = finish
                entries.append((
                    round_ix, start, src, dst, duration, tuple(payload)
                ))
                for block in payload:
                    position[block] = dst
                    available[block] = finish
            round_ix += 1
    return entries


def differential_violations(
    label: str,
    planned: Sequence[Tuple],
    reference: Sequence[Tuple],
    *,
    limit: int = 3,
) -> List[str]:
    """Bit-exact comparison of planner events vs the scalar reference."""
    violations: List[str] = []
    if len(planned) != len(reference):
        return [
            f"{label}: planner emits {len(planned)} events, reference "
            f"{len(reference)}"
        ]
    for index, (ours, theirs) in enumerate(zip(planned, reference)):
        if ours != theirs:
            violations.append(
                f"{label}: event {index} diverges: planner {ours!r} vs "
                f"reference {theirs!r}"
            )
            if len(violations) >= limit:
                violations.append(f"{label}: (stopping after {limit})")
                break
    return violations


# ---------------------------------------------------------------------------
# Per-spec audit dispatch (covers every registry entry).
# ---------------------------------------------------------------------------

_FANOUT = frozenset((
    "broadcast_binomial", "broadcast_fnf", "broadcast_log",
    "scatter_direct", "scatter_tree",
))
_FANIN = frozenset((
    "gather_direct", "gather_tree", "reduce_direct", "reduce_tree",
    "reduction",
))
_GOSSIP = frozenset((
    "allreduce_ring", "allreduce_tree", "allreduce",
    "barrier_dissemination", "barrier_tournament",
    "allbroadcast", "alltoall_direct",
))
_PROBLEM_BUILDERS = {
    "allgather": allgather_problem,
    "alltoall": alltoall_problem,
}

#: The dissemination barrier's signal model (see
#: :mod:`repro.collectives.barrier`) deliberately lets a node's round
#: ``k+1`` signal arrive while its round ``k`` signal is still in
#: flight — signals notify, they do not occupy the receive port.  Its
#: schedules therefore skip the one-port audit (delivery still must
#: hold).
_PORT_EXEMPT = frozenset(("barrier_dissemination",))


def audit_collective(
    name: str,
    schedule: Schedule,
    snapshot: DirectorySnapshot,
    size_bytes: float,
) -> List[str]:
    """Family-appropriate delivery audit + one-port validity.

    Every name in :func:`iter_collective_specs` maps to exactly one
    audit; an unregistered name raises so new registry entries cannot
    silently skip the battery.
    """
    violations = [] if name in _PORT_EXEMPT else port_violations(schedule)
    if name in _FANOUT:
        violations += fanout_violations(schedule, root=0)
    elif name in _FANIN:
        violations += fanin_violations(schedule, root=0)
    elif name in _GOSSIP:
        violations += gossip_violations(schedule)
    elif name in _PROBLEM_BUILDERS:
        problem = _PROBLEM_BUILDERS[name](snapshot, size_bytes)
        violations += oracle_violations(problem, schedule)
    else:
        raise KeyError(
            f"collective {name!r} has no registered audit family"
        )
    return violations


# ---------------------------------------------------------------------------
# The new-family guarantee battery (round caps + operand flow + reference).
# ---------------------------------------------------------------------------


def check_broadcast_log(
    snapshot: DirectorySnapshot, size_bytes: float, *, root: int = 0
) -> List[str]:
    n = snapshot.num_procs
    plan = broadcast_log_plan(snapshot, size_bytes, root=root)
    violations = port_violations(plan.schedule)
    violations += round_structure_violations(
        plan.entries, n, exact_rounds=log2_rounds(n)
    )
    violations += block_flow_violations(
        plan.entries,
        initial={root: {root}},
        required={rank: {root} for rank in range(n)},
    )
    if len(plan.entries) != n - 1 and n > 1:
        violations.append(
            f"broadcast used {len(plan.entries)} messages, expected "
            f"{n - 1} (each rank receives exactly once)"
        )
    planned = [
        (e.round, e.start, e.src, e.dst, e.duration) for e in plan.entries
    ]
    violations += differential_violations(
        "broadcast_log", planned,
        reference_broadcast_log(snapshot, size_bytes, root=root),
    )
    return violations


def check_allbroadcast(
    snapshot: DirectorySnapshot, block_bytes: float
) -> List[str]:
    n = snapshot.num_procs
    plan = allbroadcast_plan(snapshot, block_bytes)
    violations = port_violations(plan.schedule)
    violations += round_structure_violations(
        plan.entries, n, exact_rounds=log2_rounds(n)
    )
    everyone = set(range(n))
    violations += block_flow_violations(
        plan.entries,
        initial={rank: {rank} for rank in range(n)},
        required={rank: everyone for rank in range(n)},
    )
    planned = [
        (e.round, e.start, e.src, e.dst, e.duration) for e in plan.entries
    ]
    violations += differential_violations(
        "allbroadcast", planned,
        reference_allbroadcast(snapshot, block_bytes),
    )
    return violations


def check_reduction(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    root: int = 0,
    combine_rate: float = 1e9,
) -> List[str]:
    n = snapshot.num_procs
    plan = reduction_log_plan(
        snapshot, block_bytes, root=root, combine_rate=combine_rate
    )
    violations = port_violations(plan.schedule)
    violations += round_structure_violations(
        plan.entries, n, exact_rounds=log2_rounds(n)
    )
    violations += reduction_flow_violations(plan, root=root)
    planned = [
        (e.round, e.start, e.src, e.dst, e.duration) for e in plan.entries
    ]
    violations += differential_violations(
        "reduction", planned,
        reference_reduction_log(
            snapshot, block_bytes, root=root, combine_rate=combine_rate
        ),
    )
    return violations


def check_allreduce(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    combine_rate: float = 1e9,
) -> List[str]:
    n = snapshot.num_procs
    plan = allreduce_rs_ag(
        snapshot, block_bytes, combine_rate=combine_rate
    )
    violations = port_violations(plan.schedule)
    violations += allreduce_flow_violations(plan)
    violations += allreduce_volume_violations(plan, block_bytes)
    planned = list(zip(
        plan.step_index.tolist(),
        plan.starts.tolist(),
        plan.srcs.tolist(),
        plan.dsts.tolist(),
        plan.durations.tolist(),
    ))
    violations += differential_violations(
        "allreduce", planned,
        reference_allreduce_rs_ag(
            snapshot, block_bytes, plan.ring, combine_rate=combine_rate
        ),
    )
    # tree variant: log-round reduce + broadcast composition
    tree = allreduce_log_tree(
        snapshot, block_bytes, combine_rate=combine_rate
    )
    violations += port_violations(tree.schedule)
    violations += round_structure_violations(
        tree.entries, n, max_rounds=2 * log2_rounds(n)
    )
    violations += [
        f"allreduce tree: {v}"
        for v in gossip_violations(tree.schedule)
    ]
    if n > 1 and tree.rounds != 2 * log2_rounds(n):
        violations.append(
            f"allreduce tree used {tree.rounds} rounds, expected "
            f"{2 * log2_rounds(n)}"
        )
    return violations


def check_alltoall_direct(
    snapshot: DirectorySnapshot,
    message_bytes: float,
    *,
    topology: str = "ring",
    dims=None,
) -> List[str]:
    n = snapshot.num_procs
    plan = alltoall_direct_plan(
        snapshot, message_bytes, topology=topology, dims=dims
    )
    violations = port_violations(plan.schedule)
    violations += fabric_violations(plan)
    blocks = {
        (origin, dest)
        for origin in range(n) for dest in range(n) if origin != dest
    }
    violations += block_flow_violations(
        plan.entries,
        initial={
            rank: {block for block in blocks if block[0] == rank}
            for rank in range(n)
        },
        required={
            rank: {block for block in blocks if block[1] == rank}
            for rank in range(n)
        },
    )
    planned = [
        (e.round, e.start, e.src, e.dst, e.duration, e.payload)
        for e in plan.entries
    ]
    violations += differential_violations(
        f"alltoall_direct[{topology}]", planned,
        reference_alltoall_direct(
            snapshot, message_bytes, topology=topology, dims=dims
        ),
    )
    return violations


# ---------------------------------------------------------------------------
# The battery.
# ---------------------------------------------------------------------------

#: Directory specs the battery draws heterogeneous instances from.
DEFAULT_DIRECTORIES = ("static", "noisy:sigma=0.3")

#: Processor counts for the registry-wide sweep.
DEFAULT_P_VALUES = (1, 2, 3, 8, 16)


@dataclass
class CollectivesCheckReport:
    """Outcome of the collectives family run."""

    cases: int = 0
    covered: Tuple[str, ...] = ()
    failures: List[Tuple[str, List[str]]] = field(default_factory=list)
    stats: List[List[object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _snapshot_for(
    directory: str, num_procs: int, seed: int
) -> DirectorySnapshot:
    return make_directory(
        directory, num_procs=num_procs, rng=seed
    ).snapshot()


def run_collectives_check(
    *,
    size_bytes: float = 64 * 1024.0,
    p_values: Sequence[int] = DEFAULT_P_VALUES,
    seeds: Sequence[int] = (0,),
    directories: Sequence[str] = DEFAULT_DIRECTORIES,
) -> CollectivesCheckReport:
    """Audit every registered collective plus the log-round guarantees."""
    report = CollectivesCheckReport()
    specs = list(iter_collective_specs())
    report.covered = tuple(spec.name for spec in specs)

    # 1. registry-wide delivery sweep: every spec, default options
    for spec in specs:
        for directory in directories:
            for p in p_values:
                for seed in seeds:
                    snapshot = _snapshot_for(directory, p, seed)
                    label = (
                        f"{spec.name}[P={p},{directory},seed={seed}]"
                    )
                    report.cases += 1
                    size = 0.0 if spec.family == "barrier" else size_bytes
                    try:
                        result = spec.fn(snapshot, size)
                        violations = audit_collective(
                            spec.name, result.schedule, snapshot, size
                        )
                        if (
                            result.completion_time
                            < result.schedule.completion_time - TIME_TOL
                        ):
                            violations.append(
                                f"completion_time "
                                f"{result.completion_time:.6g} below the "
                                f"schedule's last finish "
                                f"{result.schedule.completion_time:.6g}"
                            )
                    except Exception as exc:  # noqa: BLE001 — report, don't crash
                        violations = [f"raised {type(exc).__name__}: {exc}"]
                    if violations:
                        report.failures.append((label, violations))

    # 2. log-round guarantee battery on the new families
    battery: List[Tuple[str, Callable[[DirectorySnapshot], List[str]]]] = [
        ("broadcast_log", lambda s: check_broadcast_log(s, size_bytes)),
        ("allbroadcast", lambda s: check_allbroadcast(s, size_bytes)),
        ("reduction", lambda s: check_reduction(s, size_bytes)),
        ("allreduce", lambda s: check_allreduce(s, size_bytes)),
        (
            "alltoall_direct[ring]",
            lambda s: check_alltoall_direct(s, size_bytes, topology="ring"),
        ),
        (
            "alltoall_direct[torus]",
            lambda s: check_alltoall_direct(s, size_bytes, topology="torus"),
        ),
    ]
    guarantee_ps = tuple(p for p in p_values if p > 1) + (64,)
    for name, checker in battery:
        for directory in directories:
            for p in guarantee_ps:
                for seed in seeds:
                    snapshot = _snapshot_for(directory, p, seed)
                    label = f"{name}[P={p},{directory},seed={seed}]"
                    report.cases += 1
                    try:
                        violations = checker(snapshot)
                    except Exception as exc:  # noqa: BLE001
                        violations = [f"raised {type(exc).__name__}: {exc}"]
                    if violations:
                        report.failures.append((label, violations))
    # hypercube needs a power-of-two P
    for directory in directories:
        for p in (2, 8, 64):
            for seed in seeds:
                snapshot = _snapshot_for(directory, p, seed)
                label = f"alltoall_direct[hypercube][P={p},{directory}]"
                report.cases += 1
                try:
                    violations = check_alltoall_direct(
                        snapshot, size_bytes, topology="hypercube"
                    )
                except Exception as exc:  # noqa: BLE001
                    violations = [f"raised {type(exc).__name__}: {exc}"]
                if violations:
                    report.failures.append((label, violations))

    # 3. headline stats at the largest sweep size
    p_stat = max(guarantee_ps)
    snapshot = _snapshot_for(directories[0], p_stat, seeds[0])
    for name, rounds, completion, events in _headline_rows(
        snapshot, size_bytes
    ):
        report.stats.append([name, p_stat, rounds, events, completion])
    return report


def _headline_rows(snapshot: DirectorySnapshot, size_bytes: float):
    plan = broadcast_log_plan(snapshot, size_bytes)
    yield (
        "broadcast_log", plan.rounds, plan.completion_time,
        len(plan.entries),
    )
    plan = allbroadcast_plan(snapshot, size_bytes)
    yield (
        "allbroadcast", plan.rounds, plan.completion_time,
        len(plan.entries),
    )
    plan = reduction_log_plan(snapshot, size_bytes)
    yield (
        "reduction", plan.rounds, plan.completion_time, len(plan.entries)
    )
    ar = allreduce_rs_ag(snapshot, size_bytes)
    yield ("allreduce", ar.steps, ar.completion_time, ar.starts.size)
    dp = alltoall_direct_plan(snapshot, size_bytes, topology="torus")
    yield (
        "alltoall_direct", dp.rounds, dp.completion_time, len(dp.entries)
    )


def render_collectives_check(report: CollectivesCheckReport) -> str:
    """Human-readable collectives family report."""
    lines = [
        f"collectives family: {report.cases} cases over "
        f"{len(report.covered)} registered collectives"
    ]
    if report.stats:
        lines.append(format_table(
            ["collective", "P", "rounds", "events", "completion (s)"],
            report.stats,
            precision=4,
            title="log-round families at the largest sweep size",
        ))
    if report.ok:
        lines.append(
            "PASS: delivery, round caps, operand flow and differential "
            "references all hold"
        )
    else:
        lines.append(f"FAIL: {len(report.failures)} case(s) violated")
        for label, violations in report.failures[:10]:
            lines.append(f"  {label}:")
            for violation in violations[:5]:
                lines.append(f"    - {violation}")
            if len(violations) > 5:
                lines.append(f"    (+{len(violations) - 5} more)")
        if len(report.failures) > 10:
            lines.append(f"  (+{len(report.failures) - 10} more cases)")
    return "\n".join(lines)
