"""Correctness harness: differential fuzzing and invariant oracles.

``repro.check`` is the standing validation subsystem every kernel
rewrite runs against:

* :mod:`repro.check.instances` — seeded adversarial instance families
  (heterogeneous spreads, near-ties, degenerate shapes);
* :mod:`repro.check.oracle` — the universal schedule invariant checker
  (timing-diagram rules, full ``P^2`` coverage, lower bound,
  per-scheduler guarantees);
* :mod:`repro.check.differential` — every registered scheduler fuzzed
  against the frozen seed kernels and the exact solver, with greedy
  shrinking of failures to minimal reproductions;
* :mod:`repro.check.faults` — deterministic fault-recovery scenarios:
  repaired schedules must pass the oracle, deliver all surviving-pair
  demand (relaying around dead links), and beat a naive full
  reschedule on salvage;
* :mod:`repro.check.drift` — deterministic drift scenarios: the serving
  runtime must walk the reuse → refine → repair → reschedule ladder,
  every delta-repaired tick must pass the oracle, and zero-drift repair
  must be bit-identical to reuse;
* :mod:`repro.check.collectives` — every registered collective audited
  for delivery (fan-out/fan-in/gossip/exchange oracles), the log-round
  and ring families held to their round/volume guarantee caps and
  operand-flow replay, and the vectorized planners matched bit-exactly
  against scalar reference executors.

Run it via ``python -m repro.cli check`` (``--faults`` adds the fault
family, ``--drift`` the drift family, ``--collectives`` the collectives
family).
"""

from repro.check.collectives import (
    CollectivesCheckReport,
    audit_collective,
    fanin_violations,
    fanout_violations,
    gossip_violations,
    render_collectives_check,
    run_collectives_check,
)
from repro.check.differential import (
    CheckFailure,
    CheckReport,
    DEFAULT_OUT_DIR,
    bit_equivalence_violations,
    default_schedulers,
    render_check,
    run_check,
    shrink_failing_instance,
)
from repro.check.drift import (
    DriftCheckReport,
    DriftScenario,
    check_decision_ladder,
    check_drift_storm,
    drift_scenarios,
    golden_zero_drift_violations,
    render_drift_check,
    run_drift_check,
)
from repro.check.faults import (
    FaultCheckReport,
    FaultScenario,
    check_fault_recovery,
    fault_scenarios,
    golden_zero_fault_violations,
    render_fault_check,
    repair_vs_full_reschedule,
    run_fault_check,
)
from repro.check.instances import (
    FAMILIES,
    CheckInstance,
    build_instance,
    draw_num_procs,
    generate_instances,
)
from repro.check.oracle import (
    GUARANTEED_BOUNDS,
    OracleError,
    check_invariants,
    oracle_violations,
)

__all__ = [
    "CheckFailure",
    "CheckInstance",
    "CheckReport",
    "CollectivesCheckReport",
    "DEFAULT_OUT_DIR",
    "DriftCheckReport",
    "DriftScenario",
    "FAMILIES",
    "FaultCheckReport",
    "FaultScenario",
    "GUARANTEED_BOUNDS",
    "OracleError",
    "audit_collective",
    "bit_equivalence_violations",
    "build_instance",
    "check_decision_ladder",
    "check_drift_storm",
    "check_fault_recovery",
    "check_invariants",
    "default_schedulers",
    "draw_num_procs",
    "drift_scenarios",
    "fanin_violations",
    "fanout_violations",
    "fault_scenarios",
    "generate_instances",
    "gossip_violations",
    "golden_zero_drift_violations",
    "golden_zero_fault_violations",
    "oracle_violations",
    "render_check",
    "render_collectives_check",
    "render_drift_check",
    "render_fault_check",
    "repair_vs_full_reschedule",
    "run_check",
    "run_collectives_check",
    "run_drift_check",
    "run_fault_check",
    "shrink_failing_instance",
]
