"""The drift family: repriced plans must be repaired, not just rebuilt.

Deterministic drift scenarios drive the serving runtime's four-tier
decision ladder (:mod:`repro.runtime.policy`) and assert the
delta-rescheduling contract end to end:

* a **scripted ladder** walks one session through all four tiers —
  zero drift reuses, widespread mild drift refines, localised sharp
  drift repairs, catastrophic drift reschedules — in a fixed order;
* **storm scenarios** (:func:`repro.sim.replay.drift_storm_trace`)
  alternate calm wander with cluster-correlated row repricing: the
  localised storms must land in the repair tier, the whole-fabric storm
  must *never* repair (dirty fraction ≈ 1 defeats localisation);
* every served schedule passes the fast one-port checker against the
  tick's actual costs, and every *repaired* tick additionally passes
  the full invariant oracle (:mod:`repro.check.oracle`);
* a zero-drift "repair" is bit-identical to reuse — the same schedule
  object, not an equally good one (the golden path: the repair layer
  must be invisible when nothing moved).

Run it via ``python -m repro.cli check --drift``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.adaptive.delta import repair_schedule_delta
from repro.check.oracle import oracle_violations
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import make_scheduler
from repro.directory.service import DirectorySnapshot
from repro.network.generators import random_pairwise_parameters
from repro.runtime import AdaptiveSession, PolicyConfig
from repro.sim.replay import DriftTrace, TraceDirectory, drift_storm_trace
from repro.timing.validate import ScheduleError, check_schedule_fast
from repro.util.tables import format_table


@dataclass(frozen=True)
class DriftScenario:
    """One deterministic storm-driven serving run and its contract."""

    name: str
    num_procs: int = 16
    ticks: int = 12
    storm_every: int = 4
    storm_nodes: int = 2
    storm_sigma: float = 0.8
    calm_sigma: float = 0.004
    seed: int = 0
    #: decisions that must each appear at least once over the run
    expect: Tuple[str, ...] = ("reuse", "repair")
    #: decisions that must never appear
    forbid: Tuple[str, ...] = ()
    message_bytes: float = 64 * 1024.0


def drift_scenarios() -> Tuple[DriftScenario, ...]:
    """The deterministic storm battery."""
    return (
        # Two of sixteen nodes congest every fourth tick: ~1/8 of the
        # pairs move, often sharply — squarely the repair tier's case.
        DriftScenario(name="p16-row-storms", seed=0),
        # A single hot node at P=8: the smallest interesting storm.
        DriftScenario(
            name="p8-single-row",
            num_procs=8,
            storm_nodes=1,
            seed=3,
        ),
        # The whole fabric repricing at once: dirty fraction ~1 defeats
        # localisation, so the session must refine or reschedule but
        # never attempt a delta repair.
        DriftScenario(
            name="p16-whole-fabric",
            storm_nodes=16,
            seed=2,
            expect=("reuse", "reschedule"),
            forbid=("repair",),
        ),
    )


def _scenario_sizes(num_procs: int, message_bytes: float) -> np.ndarray:
    sizes = np.full((num_procs, num_procs), float(message_bytes))
    np.fill_diagonal(sizes, 0.0)
    return sizes


def _tick_problems(
    trace: DriftTrace, sizes: np.ndarray
) -> List[TotalExchangeProblem]:
    return [
        TotalExchangeProblem.from_snapshot(snapshot, sizes)
        for snapshot in trace.snapshots
    ]


def _run_session(
    trace: DriftTrace,
    sizes: np.ndarray,
    *,
    scheduler: str,
    policy: PolicyConfig,
):
    """Serve one tick per trace snapshot; returns the session + results.

    The first tick plans at the trace origin (``dt=0``); each later tick
    advances the directory by one trace step, so tick ``k`` is served
    against ``trace.snapshots[k]`` exactly.
    """
    session = AdaptiveSession(
        TraceDirectory(trace), sizes, scheduler=scheduler, policy=policy
    )
    results = [
        session.tick(dt=(0.0 if k == 0 else 1.0))
        for k in range(len(trace))
    ]
    return session, results


def _served_schedule_violations(
    results, problems, *, repair_oracle: bool
) -> List[str]:
    """Every served schedule is valid; repaired ticks pass the oracle."""
    violations: List[str] = []
    for k, (result, problem) in enumerate(zip(results, problems)):
        try:
            check_schedule_fast(result.schedule, problem.cost)
        except ScheduleError as exc:
            violations.append(
                f"tick {k} ({result.decision}): served schedule invalid "
                f"under actual costs: {exc}"
            )
            continue
        if repair_oracle and result.decision == "repair":
            for v in oracle_violations(problem, result.schedule):
                violations.append(f"tick {k} (repair): oracle: {v}")
    return violations


def golden_zero_drift_violations(
    num_procs: int = 8, *, seed: int = 0, scheduler: str = "openshop"
) -> List[str]:
    """The repair layer must be invisible when nothing drifted.

    Two golden checks: (a) a direct zero-drift ``repair_schedule_delta``
    returns the *same object* as the incumbent schedule, and (b) a
    session over a constant trace reuses on every tick after the first
    and keeps serving bit-identical event lists.
    """
    latency, bandwidth = random_pairwise_parameters(num_procs, rng=seed)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = _scenario_sizes(num_procs, 64 * 1024.0)
    problem = TotalExchangeProblem.from_snapshot(snapshot, sizes)
    violations: List[str] = []

    schedule = make_scheduler(scheduler)(problem)
    result = repair_schedule_delta(schedule, problem.cost, problem)
    if not result.identical or result.schedule is not schedule:
        violations.append(
            "golden: zero-drift delta repair is not bit-identical to "
            "reuse (must return the incumbent schedule object)"
        )
    if result.reinserted != 0:
        violations.append(
            f"golden: zero-drift repair re-inserted {result.reinserted} "
            "events; must be 0"
        )

    trace = DriftTrace(
        times=tuple(float(k) for k in range(4)),
        snapshots=tuple(
            DirectorySnapshot(
                latency=latency, bandwidth=bandwidth, time=float(k)
            )
            for k in range(4)
        ),
    )
    _, results = _run_session(
        trace, sizes, scheduler=scheduler, policy=PolicyConfig()
    )
    decisions = [r.decision for r in results]
    if decisions != ["reschedule"] + ["reuse"] * 3:
        violations.append(
            f"golden: constant trace produced {decisions}; expected one "
            "reschedule then pure reuse"
        )
    baseline = results[0].schedule.events
    for k, r in enumerate(results[1:], start=1):
        if r.schedule.events != baseline:
            violations.append(
                f"golden: reuse tick {k} served different events than "
                "the plan tick"
            )
    return violations


def _ladder_trace(num_procs: int, seed: int) -> DriftTrace:
    """A scripted five-tick trace hitting all four decision tiers.

    With the default thresholds (reuse < 0.05, refine < 0.25, repair
    < 0.75 when at most 25% of pairs moved):

    * tick 1 repeats the plan cost exactly — drift 0, **reuse**;
    * tick 2 reprices *every* pair by +10% — drift 0.10, dirty 1.0,
      widespread so **refine**;
    * tick 3 reprices one pair 6x — drift ~0.09, dirty ~0.02,
      localised so **repair**;
    * tick 4 triples everything — drift 2.0, **reschedule**.
    """
    rng = np.random.default_rng(seed)
    n = num_procs
    cost = rng.uniform(0.5, 5.0, (n, n))
    np.fill_diagonal(cost, 0.0)
    spike = cost * 1.10
    spiked = spike.copy()
    spiked[0, 1] *= 6.0
    costs = [cost, cost, spike, spiked, spiked * 3.0]
    bandwidth = np.full((n, n), np.inf)
    return DriftTrace(
        times=tuple(float(k) for k in range(len(costs))),
        snapshots=tuple(
            DirectorySnapshot(latency=c, bandwidth=bandwidth, time=float(k))
            for k, c in enumerate(costs)
        ),
    )


def check_decision_ladder(
    *, scheduler: str = "openshop", num_procs: int = 8, seed: int = 7
) -> List[str]:
    """Walk one session through reuse → refine → repair → reschedule."""
    trace = _ladder_trace(num_procs, seed)
    sizes = _scenario_sizes(num_procs, 100.0)
    session, results = _run_session(
        trace, sizes, scheduler=scheduler, policy=PolicyConfig()
    )
    violations: List[str] = []
    decisions = [r.decision for r in results]
    expected = ["reschedule", "reuse", "refine", "repair", "reschedule"]
    if decisions != expected:
        violations.append(
            f"ladder: decisions {decisions}; expected {expected}"
        )
    problems = _tick_problems(trace, sizes)
    violations += _served_schedule_violations(
        results, problems, repair_oracle=True
    )
    repair_ticks = [
        e for e in session.metrics.events if e.decision == "repair"
    ]
    for event in repair_ticks:
        if event.repaired_events < 1:
            violations.append(
                f"ladder: repair tick {event.tick} re-inserted no events"
            )
        if event.dirty_fraction > 0.25:
            violations.append(
                f"ladder: repair tick {event.tick} dirty fraction "
                f"{event.dirty_fraction:.3f} exceeds the localisation cap"
            )
    return violations


def check_drift_storm(
    scenario: DriftScenario, *, scheduler: str = "openshop"
) -> List[str]:
    """All drift-contract violations for one storm scenario."""
    latency, bandwidth = random_pairwise_parameters(
        scenario.num_procs, rng=scenario.seed
    )
    base = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    trace = drift_storm_trace(
        base,
        ticks=scenario.ticks,
        storm_every=scenario.storm_every,
        storm_nodes=scenario.storm_nodes,
        storm_sigma=scenario.storm_sigma,
        calm_sigma=scenario.calm_sigma,
        seed=scenario.seed,
    )
    sizes = _scenario_sizes(scenario.num_procs, scenario.message_bytes)
    session, results = _run_session(
        trace, sizes, scheduler=scheduler, policy=PolicyConfig()
    )
    violations: List[str] = []
    decisions = [r.decision for r in results]
    for wanted in scenario.expect:
        if wanted not in decisions:
            violations.append(
                f"expected at least one {wanted!r} decision, got "
                f"{decisions}"
            )
    for banned in scenario.forbid:
        if banned in decisions:
            violations.append(
                f"forbidden decision {banned!r} appeared: {decisions}"
            )
    problems = _tick_problems(trace, sizes)
    violations += _served_schedule_violations(
        results, problems, repair_oracle=True
    )
    config = PolicyConfig()
    for event in session.metrics.events:
        if event.decision != "repair":
            continue
        if event.dirty_fraction > config.repair_max_dirty_fraction:
            violations.append(
                f"tick {event.tick}: repaired despite dirty fraction "
                f"{event.dirty_fraction:.3f} > "
                f"{config.repair_max_dirty_fraction:g}"
            )
    return violations


def scenario_decisions(
    scenario: DriftScenario, *, scheduler: str = "openshop"
) -> Dict[str, int]:
    """Decision counts for one scenario (for reporting)."""
    latency, bandwidth = random_pairwise_parameters(
        scenario.num_procs, rng=scenario.seed
    )
    base = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    trace = drift_storm_trace(
        base,
        ticks=scenario.ticks,
        storm_every=scenario.storm_every,
        storm_nodes=scenario.storm_nodes,
        storm_sigma=scenario.storm_sigma,
        calm_sigma=scenario.calm_sigma,
        seed=scenario.seed,
    )
    sizes = _scenario_sizes(scenario.num_procs, scenario.message_bytes)
    session, _ = _run_session(
        trace, sizes, scheduler=scheduler, policy=PolicyConfig()
    )
    return dict(session.summary()["decisions"])


@dataclass
class DriftCheckReport:
    """Outcome of the drift family run."""

    scheduler: str
    scenarios: int = 0
    failures: List[Tuple[str, List[str]]] = field(default_factory=list)
    decisions: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_drift_check(*, scheduler: str = "openshop") -> DriftCheckReport:
    """Run the full drift family: golden path, ladder, storm battery."""
    report = DriftCheckReport(scheduler=scheduler)

    golden = golden_zero_drift_violations(scheduler=scheduler)
    report.scenarios += 1
    if golden:
        report.failures.append(("golden-zero-drift", golden))

    ladder = check_decision_ladder(scheduler=scheduler)
    report.scenarios += 1
    if ladder:
        report.failures.append(("decision-ladder", ladder))

    for scenario in drift_scenarios():
        report.scenarios += 1
        violations = check_drift_storm(scenario, scheduler=scheduler)
        if violations:
            report.failures.append((scenario.name, violations))
        report.decisions[scenario.name] = scenario_decisions(
            scenario, scheduler=scheduler
        )
    return report


def render_drift_check(report: DriftCheckReport) -> str:
    """Human-readable drift family report."""
    lines = [
        f"drift family: {report.scenarios} scenarios against "
        f"scheduler {report.scheduler!r}"
    ]
    rows = []
    for name, counts in report.decisions.items():
        rows.append([
            name,
            counts.get("reuse", 0),
            counts.get("refine", 0),
            counts.get("repair", 0),
            counts.get("reschedule", 0),
        ])
    if rows:
        lines.append(format_table(
            ["scenario", "reuse", "refine", "repair", "reschedule"],
            rows,
            title="storm scenario decision mix",
        ))
    if report.ok:
        lines.append("drift family: all scenarios PASS")
    else:
        for name, violations in report.failures:
            lines.append(f"FAIL {name}:")
            lines += [f"  - {v}" for v in violations[:10]]
            if len(violations) > 10:
                lines.append(f"  ... +{len(violations) - 10} more")
    return "\n".join(lines)
