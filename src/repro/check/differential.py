"""Differential fuzzing of every registered scheduler.

Csmith-style testing for communication schedules: randomized adversarial
instances (:mod:`repro.check.instances`) flow through every scheduler in
:mod:`repro.core.registry`, and each result is judged three ways —

1. **invariant oracle** — :mod:`repro.check.oracle` checks the paper's
   timing-diagram rules on every schedule;
2. **frozen-reference differential** — the optimized open shop and
   greedy kernels must stay *bit-equivalent* (event for event,
   warm-start entry points included) to the seed implementations
   preserved in :mod:`repro.perf.reference`, and every matching backend
   must extract the same per-round matching weights;
3. **exact differential** — for instances the branch-and-bound solver
   (:mod:`repro.core.exact`) can certify, no heuristic may beat the
   proven optimum and the optimum may not beat the lower bound.

Any failure is shrunk by greedy event removal — drop processors, zero
cost entries, simplify values, re-checking the failing probe each step —
and dumped as a self-contained JSON artifact under
``benchmarks/results/check_failures/`` so a kernel bug found at ``P =
12`` lands in the bug report as a hand-readable 3x3 matrix.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.check.instances import CheckInstance, generate_instances
from repro.check.oracle import oracle_violations
from repro.core.exact import (
    MAX_EXACT_PROCS,
    SearchBudgetExceeded,
    branch_and_bound,
)
from repro.core.matching import _assignment_scipy, matching_rounds
from repro.core.openshop import openshop_events
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import Scheduler, iter_specs, make_scheduler
from repro.perf.reference import (
    matching_rounds_reference,
    openshop_events_reference,
    schedule_greedy_reference,
    schedule_openshop_reference,
)
from repro.timing.events import Schedule
from repro.util.rng import stable_seed

#: Where minimized failing instances are dumped.
DEFAULT_OUT_DIR = "benchmarks/results/check_failures"

#: A probe re-checks one failure mode on a (possibly shrunk) instance.
Probe = Callable[[TotalExchangeProblem], List[str]]

_EXCLUDED_FROM_FUZZ = ("optimal",)  # the exact solver is the judge, not a subject


def default_schedulers() -> Dict[str, Scheduler]:
    """Every registry scheduler the fuzzer runs (exact solver excluded).

    Only the ``paper`` and ``extra`` tiers are fuzzed: the ``variant``
    tier's schedules are intentionally not one-event-per-message
    (relayed legs, chunked transfers, preemptive pieces), so the
    universal coverage oracle does not apply to them.
    """
    return {
        spec.name: make_scheduler(spec.name)
        for tier in ("paper", "extra")
        for spec in iter_specs(tier=tier)
        if spec.name not in _EXCLUDED_FROM_FUZZ
    }


def _tol(scale: float, atol: float = 1e-9, rtol: float = 1e-9) -> float:
    return atol + rtol * abs(scale)


def _event_fields(events) -> List[Tuple[float, int, int, float, float]]:
    return sorted(
        (e.start, e.src, e.dst, e.duration, e.size) for e in events
    )


def bit_equivalence_violations(
    label: str, live: Schedule, reference: Schedule
) -> List[str]:
    """Event-for-event comparison of two schedules (exact floats)."""
    a = _event_fields(live.events)
    b = _event_fields(reference.events)
    if a == b:
        return []
    out = [f"{label}: {len(a)} live vs {len(b)} reference events"]
    for k, (x, y) in enumerate(zip(a, b)):
        if x != y:
            out.append(
                f"{label}: first divergence at event {k}: live="
                f"{tuple(round(v, 12) if isinstance(v, float) else v for v in x)}"
                f" reference="
                f"{tuple(round(v, 12) if isinstance(v, float) else v for v in y)}"
            )
            break
    return out


def _oracle_probe(name: str, scheduler: Scheduler) -> Probe:
    def probe(problem: TotalExchangeProblem) -> List[str]:
        return oracle_violations(problem, scheduler(problem), scheduler=name)

    return probe


def _bit_probe(
    label: str, live: Scheduler, reference: Scheduler
) -> Probe:
    def probe(problem: TotalExchangeProblem) -> List[str]:
        return bit_equivalence_violations(
            label, live(problem), reference(problem)
        )

    return probe


def _warm_openshop_probe(seed: int) -> Probe:
    """Warm-start differential: random port availabilities, both kernels.

    The availabilities are derived from ``(seed, P)`` so the probe stays
    deterministic while the shrinker changes the processor count.
    """

    def probe(problem: TotalExchangeProblem) -> List[str]:
        n = problem.num_procs
        rng = np.random.default_rng(stable_seed("repro.check.warm", seed, n))
        send0 = rng.uniform(0.0, 5.0, size=n).tolist()
        recv0 = rng.uniform(0.0, 5.0, size=n).tolist()
        pairs = problem.positive_events()
        live_send, live_recv = list(send0), list(recv0)
        ref_send, ref_recv = list(send0), list(recv0)
        live = openshop_events(
            problem.cost, pairs, live_send, live_recv, sizes=problem.sizes
        )
        reference = openshop_events_reference(
            problem.cost, pairs, ref_send, ref_recv, sizes=problem.sizes
        )
        violations = []
        if _event_fields(live) != _event_fields(reference):
            violations += bit_equivalence_violations(
                "openshop warm-start",
                Schedule.from_events(n, live),
                Schedule.from_events(n, reference),
            )
        if live_send != ref_send or live_recv != ref_recv:
            violations.append(
                "openshop warm-start: post-schedule availabilities diverge"
            )
        return violations

    return probe


def matching_differential_violations(
    cost: np.ndarray,
    objective: str,
    *,
    backends: Tuple[str, ...] = ("scipy", "auction"),
) -> List[str]:
    """Cross-validate the matching backends on one cost matrix.

    Per-round *weights* can legitimately diverge between backends: when a
    round's optimal matching is not unique, two exact solvers may remove
    different (equal-weight) edge sets, and the optimal weights of later
    rounds over the differing residuals then drift apart.  The sound
    invariants checked here are:

    * each backend's rounds are permutations partitioning all ``P^2``
      pairs (Hall's-theorem guarantee);
    * every round of every backend has *optimal weight for that
      backend's own residual matrix*, judged by re-solving the residual
      with SciPy's reference solver;
    * the live scipy path reproduces the frozen seed kernel
      (:func:`repro.perf.reference.matching_rounds_reference`)
      round-for-round.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    rows = np.arange(n)
    maximize = objective == "max"
    penalty = float(cost.max()) * n + 1.0
    used_value = -penalty if maximize else penalty
    violations: List[str] = []

    reference = matching_rounds_reference(
        cost, objective=objective, backend="scipy"
    )
    for backend in backends:
        rounds = matching_rounds(cost, objective=objective, backend=backend)
        label = f"matching[{objective}/{backend}]"
        if len(rounds) != n:
            violations.append(f"{label}: {len(rounds)} rounds for P={n}")
            continue
        if backend == "scipy":
            for k, (perm, ref_perm) in enumerate(zip(rounds, reference)):
                if perm.tolist() != ref_perm.tolist():
                    violations.append(
                        f"{label}: round {k} diverges from the frozen "
                        f"seed kernel: {perm.tolist()} != {ref_perm.tolist()}"
                    )
                    break
        seen = set()
        residual = cost.copy()
        for k, perm in enumerate(rounds):
            if sorted(perm.tolist()) != list(range(n)):
                violations.append(f"{label}: round {k} is not a permutation")
                break
            seen.update((src, int(dst)) for src, dst in enumerate(perm))
            weight = float(residual[rows, perm].sum())
            judge = _assignment_scipy(residual, objective)
            optimal = float(residual[rows, judge].sum())
            if abs(weight - optimal) > _tol(optimal):
                violations.append(
                    f"{label}: round {k} weight {weight:.9g} is not "
                    f"optimal for its residual (reference solver: "
                    f"{optimal:.9g})"
                )
            residual[rows, perm] = used_value
        if len(seen) != n * n:
            violations.append(
                f"{label}: rounds cover {len(seen)} of {n * n} pairs"
            )
    return violations


def _matching_probe(objective: str) -> Probe:
    """Backend cross-validation probe (networkx only at small P: slow)."""

    def probe(problem: TotalExchangeProblem) -> List[str]:
        backends: Tuple[str, ...] = ("scipy", "auction")
        if problem.num_procs <= 8:
            backends += ("networkx",)
        return matching_differential_violations(
            problem.cost, objective, backends=backends
        )

    return probe


def _exact_probe(
    schedulers: Dict[str, Scheduler],
    node_budget: int,
    counters: Dict[str, int],
) -> Probe:
    def probe(problem: TotalExchangeProblem) -> List[str]:
        if problem.num_procs > MAX_EXACT_PROCS:
            return []
        try:
            result = branch_and_bound(problem, node_budget=node_budget)
        except SearchBudgetExceeded:
            counters["exact_skipped"] += 1
            return []
        counters["exact_checked"] += 1
        optimum = result.completion_time
        lb = problem.lower_bound()
        violations: List[str] = []
        if optimum < lb - _tol(lb):
            violations.append(
                f"exact: proven optimum {optimum:.9g} beats the lower "
                f"bound {lb:.9g}"
            )
        violations += [
            f"exact: {v}"
            for v in oracle_violations(problem, result.schedule)
        ]
        for name, scheduler in sorted(schedulers.items()):
            completion = scheduler(problem).completion_time
            if completion < optimum - _tol(optimum):
                violations.append(
                    f"exact: {name} completion {completion:.9g} beats the "
                    f"proven optimum {optimum:.9g}"
                )
        return violations

    return probe


def _safe(probe: Probe, problem: TotalExchangeProblem) -> List[str]:
    try:
        return probe(problem)
    except Exception as exc:  # the fuzzer must survive any kernel crash
        return [f"exception: {type(exc).__name__}: {exc}"]


def _round_to_one_digit(value: float) -> float:
    return float(np.format_float_scientific(value, precision=0))


def shrink_failing_instance(
    problem: TotalExchangeProblem,
    failing: Callable[[TotalExchangeProblem], bool],
    *,
    max_evals: int = 400,
) -> TotalExchangeProblem:
    """Greedy event-removal minimization of a failing instance.

    Repeatedly tries, in order: dropping a processor (row and column),
    zeroing a positive entry (largest first — removing the event
    outright), and rounding an entry to one significant digit.  A step
    is kept only when ``failing`` still holds, so the result provokes
    the *same* probe failure with as few processors and events as the
    budget allows.
    """
    current = problem
    evals = 0

    def attempt(cost: np.ndarray) -> bool:
        nonlocal current, evals
        evals += 1
        candidate = TotalExchangeProblem(cost=cost)
        if failing(candidate):
            current = candidate
            return True
        return False

    progress = True
    while progress and evals < max_evals:
        progress = False
        n = current.num_procs
        if n > 1:
            for drop in range(n):
                cost = np.delete(
                    np.delete(current.cost, drop, axis=0), drop, axis=1
                )
                if attempt(cost):
                    progress = True
                    break
            if progress:
                continue
        positive = sorted(
            map(tuple, np.argwhere(current.cost > 0).tolist()),
            key=lambda ij: (-current.cost[ij], ij),
        )
        for src, dst in positive:
            cost = current.cost.copy()
            cost[src, dst] = 0.0
            if attempt(cost):
                progress = True
                break
        if progress:
            continue
        for src, dst in positive:
            rounded = _round_to_one_digit(float(current.cost[src, dst]))
            if rounded == current.cost[src, dst] or rounded <= 0:
                continue
            cost = current.cost.copy()
            cost[src, dst] = rounded
            if attempt(cost):
                progress = True
                break
    return current


@dataclass(frozen=True)
class CheckFailure:
    """One probe failure, with its minimized reproduction."""

    seed: int
    family: str
    kind: str
    num_procs: int
    violations: Tuple[str, ...]
    shrunk_num_procs: int
    shrunk_cost: Tuple[Tuple[float, ...], ...]
    shrunk_violations: Tuple[str, ...]
    artifact: Optional[str]


@dataclass(frozen=True)
class CheckReport:
    """Outcome of :func:`run_check`."""

    instances: int
    p_max: int
    schedulers: Tuple[str, ...]
    probes_run: int
    exact_checked: int
    exact_skipped: int
    failures: Tuple[CheckFailure, ...]
    elapsed: float
    truncated: bool

    @property
    def ok(self) -> bool:
        return not self.failures


def _write_artifact(
    out_dir: str, instance: CheckInstance, failure: CheckFailure
) -> str:
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    slug = failure.kind.replace(":", "_").replace("/", "_")
    path = directory / f"seed{failure.seed % 10**9:09d}_{slug}.json"
    payload = {
        "seed": failure.seed,
        "family": failure.family,
        "kind": failure.kind,
        "num_procs": failure.num_procs,
        "violations": list(failure.violations[:20]),
        "cost": instance.problem.cost.tolist(),
        "shrunk": {
            "num_procs": failure.shrunk_num_procs,
            "cost": [list(row) for row in failure.shrunk_cost],
            "violations": list(failure.shrunk_violations[:20]),
        },
        "repro": (
            "original: repro.check.instances.build_instance("
            f"{failure.family!r}, {failure.num_procs}, {failure.seed}); "
            "shrunk: TotalExchangeProblem(cost=np.array(shrunk['cost']))"
        ),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return str(path)


def _instance_probes(
    instance: CheckInstance,
    schedulers: Dict[str, Scheduler],
    *,
    include_exact: bool,
    exact_node_budget: int,
    counters: Dict[str, int],
) -> List[Tuple[str, Probe]]:
    probes: List[Tuple[str, Probe]] = []
    for name, scheduler in schedulers.items():
        probes.append((f"oracle:{name}", _oracle_probe(name, scheduler)))
    if "openshop" in schedulers:
        probes.append((
            "differential:openshop",
            _bit_probe(
                "openshop", schedulers["openshop"], schedule_openshop_reference
            ),
        ))
        probes.append((
            "differential:openshop_warm", _warm_openshop_probe(instance.seed)
        ))
    if "greedy" in schedulers:
        probes.append((
            "differential:greedy",
            _bit_probe(
                "greedy", schedulers["greedy"], schedule_greedy_reference
            ),
        ))
    if "max_matching" in schedulers:
        probes.append(("differential:matching_max", _matching_probe("max")))
    if "min_matching" in schedulers:
        probes.append(("differential:matching_min", _matching_probe("min")))
    if include_exact and instance.num_procs <= MAX_EXACT_PROCS:
        probes.append((
            "differential:exact",
            _exact_probe(schedulers, exact_node_budget, counters),
        ))
    return probes


def run_check(
    *,
    seeds: int = 100,
    p_max: int = 12,
    time_budget: Optional[float] = None,
    base_seed: int = 0,
    schedulers: Optional[Dict[str, Scheduler]] = None,
    include_exact: bool = True,
    exact_node_budget: int = 200_000,
    out_dir: Optional[str] = DEFAULT_OUT_DIR,
    shrink: bool = True,
    shrink_max_evals: int = 400,
    max_failures: int = 20,
) -> CheckReport:
    """Fuzz ``seeds`` adversarial instances through every scheduler.

    Parameters
    ----------
    time_budget:
        Optional wall-clock cap in seconds; generation stops (and the
        report is marked ``truncated``) once it is exceeded.
    schedulers:
        Override the registry set — used by the tests to inject
        deliberately broken kernels and assert they are caught.
    out_dir:
        Artifact directory for minimized failures (``None`` disables
        writing).
    """
    start = time.perf_counter()
    active = (
        dict(schedulers) if schedulers is not None else default_schedulers()
    )
    counters = {"exact_checked": 0, "exact_skipped": 0}
    failures: List[CheckFailure] = []
    probes_run = 0
    instances_done = 0
    truncated = False

    for instance in generate_instances(seeds, p_max=p_max, base_seed=base_seed):
        if (
            time_budget is not None
            and time.perf_counter() - start > time_budget
        ):
            truncated = True
            break
        if len(failures) >= max_failures:
            truncated = True
            break
        probes = _instance_probes(
            instance,
            active,
            include_exact=include_exact,
            exact_node_budget=exact_node_budget,
            counters=counters,
        )
        for kind, probe in probes:
            probes_run += 1
            violations = _safe(probe, instance.problem)
            if not violations:
                continue
            if shrink:
                shrunk = shrink_failing_instance(
                    instance.problem,
                    lambda candidate: bool(_safe(probe, candidate)),
                    max_evals=shrink_max_evals,
                )
            else:
                shrunk = instance.problem
            failure = CheckFailure(
                seed=instance.seed,
                family=instance.family,
                kind=kind,
                num_procs=instance.num_procs,
                violations=tuple(violations),
                shrunk_num_procs=shrunk.num_procs,
                shrunk_cost=tuple(
                    tuple(row) for row in shrunk.cost.tolist()
                ),
                shrunk_violations=tuple(_safe(probe, shrunk)),
                artifact=None,
            )
            if out_dir is not None:
                artifact = _write_artifact(out_dir, instance, failure)
                failure = replace(failure, artifact=artifact)
            failures.append(failure)
        instances_done += 1

    return CheckReport(
        instances=instances_done,
        p_max=p_max,
        schedulers=tuple(active),
        probes_run=probes_run,
        exact_checked=counters["exact_checked"],
        exact_skipped=counters["exact_skipped"],
        failures=tuple(failures),
        elapsed=time.perf_counter() - start,
        truncated=truncated,
    )


def render_check(report: CheckReport) -> str:
    """Human-readable check summary for the CLI."""
    lines = [
        f"repro.check: {report.instances} instances (P <= {report.p_max}), "
        f"{len(report.schedulers)} schedulers, {report.probes_run} probes "
        f"in {report.elapsed:.1f}s"
        + (" [truncated]" if report.truncated else ""),
        f"schedulers: {', '.join(report.schedulers)}",
        f"exact differential: {report.exact_checked} certified, "
        f"{report.exact_skipped} skipped (node budget)",
    ]
    if report.failures:
        lines.append(f"FAILURES: {len(report.failures)}")
        for failure in report.failures:
            lines.append(
                f"  - {failure.kind} on family={failure.family} "
                f"seed={failure.seed} P={failure.num_procs} "
                f"-> shrunk to P={failure.shrunk_num_procs}"
                + (f" ({failure.artifact})" if failure.artifact else "")
            )
            for violation in failure.violations[:3]:
                lines.append(f"      {violation}")
    else:
        lines.append("all invariants and differentials hold: PASS")
    return "\n".join(lines)
