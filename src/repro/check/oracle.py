"""Universal schedule invariant oracle.

Layered on :func:`repro.timing.validate.check_schedule` (one active send
and one active receive per node, per-event durations equal to the cost
model, no duplicate pairs), this oracle additionally asserts the paper's
Section 3/4 conditions that every scheduler — present and future — must
satisfy on *every* instance:

* **full message coverage** — all ``P^2`` messages are placed: every
  off-diagonal pair appears exactly once (zero-cost pairs as
  zero-duration markers), and every positive-cost diagonal self-message
  appears too;
* **lower bound** — the makespan is at least ``t_lb``, the busiest send
  or receive port (paper Section 4.1);
* **per-scheduler guarantees** — proven worst-case factors over the
  lower bound, e.g. Theorem 3's ``2x`` for the open shop heuristic.

Tolerances are relative-plus-absolute so the oracle stays sound on the
heterogeneous families whose costs span orders of magnitude.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.core.registry import iter_specs
from repro.timing.events import Schedule
from repro.timing.validate import (
    ScheduleError,
    _event_columns,
    check_schedule,
    check_schedule_fast,
)


class OracleError(ScheduleError):
    """Raised when a schedule violates an oracle invariant."""


#: Proven worst-case completion-time factors over the lower bound, keyed
#: by registry scheduler name (``P -> factor``).  Sourced from the
#: registry specs so the oracle and the public metadata cannot drift
#: apart: Theorem 3's 2x for the open shop heuristic, Theorem 2's tight
#: P/2 for the unsynchronised caterpillar, and the preemptive optimum's
#: exact lower bound.
GUARANTEED_BOUNDS: Dict[str, Callable[[int], float]] = {
    spec.name: spec.guarantee
    for spec in iter_specs()
    if spec.guarantee is not None
}


def _tol(atol: float, rtol: float, scale: float) -> float:
    return atol + rtol * abs(scale)


def oracle_violations(
    problem: TotalExchangeProblem,
    schedule: Schedule,
    *,
    scheduler: Optional[str] = None,
    atol: float = 1e-9,
    rtol: float = 1e-9,
) -> List[str]:
    """All invariant violations of ``schedule`` against ``problem``.

    Returns an empty list for a conforming schedule.  Violations are
    grouped kind-by-kind in a deterministic order, the base
    :func:`check_schedule` batch first.
    """
    violations: List[str] = []
    if schedule.num_procs != problem.num_procs:
        return [
            f"schedule covers {schedule.num_procs} processors, "
            f"problem has {problem.num_procs}"
        ]
    # The vectorized fast checker covers the same invariants as the
    # event-by-event check_schedule; it prefilters, and only a failure
    # falls back to the slow path for its detailed per-event violation
    # batch (so failure reports stay as rich as before while clean
    # schedules — the overwhelmingly common case — pay only the
    # vectorized cost).
    try:
        check_schedule_fast(schedule, problem.cost, atol=atol)
    except ScheduleError:
        try:
            check_schedule(schedule, problem.cost, atol=atol)
        except ScheduleError as exc:
            violations += exc.violations or [str(exc)]

    # Full P^2 placement: check_schedule only demands the positive
    # off-diagonal pairs, but every registered scheduler also emits
    # zero-duration markers for free pairs and real events for positive
    # diagonal self-messages — schedules missing them break consumers
    # like send_orders() re-execution and checkpoint restriction.
    # Vectorized: the Python loop runs only over violations (normally
    # none), in the same row-major order as the original scan.
    n = problem.num_procs
    cost = problem.cost
    _, srcs, dsts, _ = _event_columns(schedule)
    has_event = np.zeros((n, n), dtype=bool)
    has_event[srcs, dsts] = True
    eye = np.eye(n, dtype=bool)
    missing = ~has_event & (
        (~eye & (cost == 0)) | (eye & (cost > 0))
    )
    for src, dst in zip(*np.nonzero(missing)):
        if src != dst:
            violations.append(
                f"coverage: zero-cost pair ({src}, {dst}) has no marker"
            )
        else:
            violations.append(
                f"coverage: self-message ({src}, {dst}) missing"
            )

    lb = problem.lower_bound()
    makespan = schedule.completion_time
    if makespan < lb - _tol(atol, rtol, lb):
        violations.append(
            f"makespan {makespan:.9g} beats the lower bound {lb:.9g} "
            "(impossible for a valid schedule)"
        )

    bound = GUARANTEED_BOUNDS.get(scheduler or "")
    if bound is not None:
        factor = bound(n)
        limit = factor * lb
        if makespan > limit + _tol(atol, rtol, limit):
            violations.append(
                f"guarantee: {scheduler} makespan {makespan:.9g} exceeds "
                f"its proven {factor:g}x lower-bound cap {limit:.9g}"
            )
    return violations


def check_invariants(
    problem: TotalExchangeProblem,
    schedule: Schedule,
    *,
    scheduler: Optional[str] = None,
    atol: float = 1e-9,
    rtol: float = 1e-9,
) -> None:
    """Raise :class:`OracleError` when any invariant is violated."""
    violations = oracle_violations(
        problem, schedule, scheduler=scheduler, atol=atol, rtol=rtol
    )
    if violations:
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        name = scheduler or "schedule"
        raise OracleError(
            f"{name} violates {len(violations)} invariant"
            f"{'s' if len(violations) != 1 else ''}: {preview}{more}",
            violations=violations,
        )
