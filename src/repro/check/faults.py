"""The fault family: repaired schedules must still be correct schedules.

Deterministic fault-recovery scenarios (P ∈ {2, 3, 8}: the degenerate
pair, the minimal relay triangle, and a general instance) drive the full
salvage → repair → merge pipeline of :mod:`repro.faults` and assert the
recovery contract:

* the merged timeline still obeys the one-port rules;
* every demanded pair between *surviving* nodes is delivered — salvaged,
  re-sent directly, or relayed over two surviving legs in order — and a
  pair is only ever declared unreachable when no 2-hop route exists at
  all (P=2 with its only link dead is the canonical case);
* the relay-free residual reschedule passes the full invariant oracle
  (:mod:`repro.check.oracle`) on the compacted surviving-world instance;
* a zero-fault "repair" is bit-identical to the unrepaired schedule
  (the golden path: the repair layer must be invisible when the world
  is healthy);
* incremental repair salvages strictly more events than a naive
  full reschedule from scratch while staying within 1.5× its makespan.

Run it via ``python -m repro.cli check --faults``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.check.oracle import oracle_violations
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import make_scheduler
from repro.directory.service import DirectorySnapshot
from repro.faults.executor import cut_execution, merge_with_salvaged
from repro.faults.models import (
    BLACKOUT,
    Fault,
    LINK_DEAD,
    NODE_DROP,
    apply_fault_to_snapshot,
    apply_fault_to_state,
)
from repro.faults.repair import repair_schedule
from repro.network.generators import random_pairwise_parameters
from repro.timing.validate import (
    ScheduleError,
    check_schedule,
    check_schedule_fast,
)
from repro.util.tables import format_table


@dataclass(frozen=True)
class FaultScenario:
    """One deterministic fault-recovery case."""

    name: str
    num_procs: int
    fault: Fault
    seed: int = 0
    message_bytes: float = 64 * 1024.0


def fault_scenarios() -> Tuple[FaultScenario, ...]:
    """The deterministic scenario battery (P ∈ {2, 3, 8})."""
    return (
        # P=2: the only link dies — no relay can exist, the pair must be
        # reported unreachable, never silently "delivered".
        FaultScenario(
            name="p2-partitioned",
            num_procs=2,
            fault=Fault(kind=LINK_DEAD, at=0.0, src=0, dst=1, at_event=0),
        ),
        # P=3: the minimal relay triangle — 0<->1 dies before anything
        # completes, node 2 must carry both directions.
        FaultScenario(
            name="p3-relay-triangle",
            num_procs=3,
            fault=Fault(kind=LINK_DEAD, at=0.0, src=0, dst=1, at_event=0),
            seed=1,
        ),
        # P=8: general mid-schedule link death with plenty of salvage.
        FaultScenario(
            name="p8-link-dead-mid",
            num_procs=8,
            fault=Fault(kind=LINK_DEAD, at=0.0, src=2, dst=5, at_event=30),
            seed=2,
        ),
        # P=8: an early strike — almost nothing to salvage.
        FaultScenario(
            name="p8-link-dead-early",
            num_procs=8,
            fault=Fault(kind=LINK_DEAD, at=0.0, src=0, dst=7, at_event=1),
            seed=3,
        ),
        # P=8: a node drops out — its whole row and column are lost.
        FaultScenario(
            name="p8-node-drop",
            num_procs=8,
            fault=Fault(kind=NODE_DROP, at=0.0, node=3, at_event=20),
            seed=4,
        ),
        # P=8: a blackout treated as permanent (retries exhausted).
        FaultScenario(
            name="p8-blackout-declared-dead",
            num_procs=8,
            fault=Fault(
                kind=BLACKOUT, at=0.0, src=1, dst=6, duration=1e9,
                at_event=25,
            ),
            seed=5,
        ),
    )


def _scenario_snapshot(scenario: FaultScenario) -> DirectorySnapshot:
    latency, bandwidth = random_pairwise_parameters(
        scenario.num_procs, rng=scenario.seed
    )
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def _scenario_sizes(scenario: FaultScenario) -> np.ndarray:
    n = scenario.num_procs
    sizes = np.full((n, n), float(scenario.message_bytes))
    np.fill_diagonal(sizes, 0.0)
    return sizes


def _positive_events(schedule) -> List:
    return [e for e in schedule if e.duration > 0]


def golden_zero_fault_violations(
    num_procs: int = 8, *, seed: int = 0, scheduler: str = "openshop"
) -> List[str]:
    """The repair layer must be invisible on a healthy world.

    ``repair_schedule`` with no faults, no salvage and full availability
    must return *bit-identical* events to the plain scheduler — not just
    an equally good schedule.
    """
    latency, bandwidth = random_pairwise_parameters(num_procs, rng=seed)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = np.full((num_procs, num_procs), 64 * 1024.0)
    np.fill_diagonal(sizes, 0.0)
    solve = make_scheduler(scheduler)
    baseline = solve(TotalExchangeProblem.from_snapshot(snapshot, sizes))
    repaired = repair_schedule(snapshot, sizes, scheduler=solve)
    violations: List[str] = []
    if repaired.schedule.events != baseline.events:
        violations.append(
            f"golden: zero-fault repair is not bit-identical to "
            f"{scheduler} (got {len(repaired.schedule.events)} events vs "
            f"{len(baseline.events)})"
        )
    if repaired.undeliverable != 0:
        violations.append(
            f"golden: zero-fault repair reports "
            f"{repaired.undeliverable} undeliverable pairs; must be 0"
        )
    return violations


def _delivery_violations(
    scenario: FaultScenario,
    sizes: np.ndarray,
    partial,
    result,
    merged,
    alive: np.ndarray,
    link_ok: np.ndarray,
) -> List[str]:
    """Assert the surviving demand is delivered (or provably unroutable)."""
    violations: List[str] = []
    n = scenario.num_procs
    routes = result.routes
    relayed_by_pair = {(s, d): r for (s, r, d) in routes.relayed}
    direct = set(routes.direct)
    unreachable = set(routes.unreachable)
    lost = set(routes.lost)
    residual_events: Dict[Tuple[int, int], List] = {}
    for event in _positive_events(result.schedule):
        residual_events.setdefault((event.src, event.dst), []).append(event)
    merged_pairs = {
        (e.src, e.dst) for e in _positive_events(merged)
    }

    for src in range(n):
        for dst in range(n):
            if src == dst or sizes[src, dst] <= 0:
                continue
            pair = (src, dst)
            if not (alive[src] and alive[dst]):
                if pair not in lost and not partial.delivered[src, dst]:
                    violations.append(
                        f"{pair}: dead endpoint but not accounted as lost"
                    )
                continue
            if partial.delivered[src, dst]:
                if pair not in merged_pairs:
                    violations.append(
                        f"{pair}: salvaged delivery missing from the "
                        "merged timeline"
                    )
                continue
            if pair in direct:
                if pair not in residual_events:
                    violations.append(
                        f"{pair}: routed direct but never re-sent"
                    )
                continue
            relay = relayed_by_pair.get(pair)
            if relay is not None:
                leg1 = residual_events.get((src, relay), [])
                leg2 = residual_events.get((relay, dst), [])
                if not leg1 or not leg2:
                    violations.append(
                        f"{pair}: relay via {relay} missing a leg "
                        f"(leg1={len(leg1)}, leg2={len(leg2)})"
                    )
                # the leg pair may also carry an unrelated direct
                # message, so compare the latest second-leg start with
                # the earliest first-leg finish: the true second leg is
                # released only when the first leg's data arrived.
                elif max(e.start for e in leg2) < min(
                    e.finish for e in leg1
                ) - 1e-9:
                    violations.append(
                        f"{pair}: relay leg {relay}->{dst} starts before "
                        f"{src}->{relay} finished"
                    )
                continue
            if pair in unreachable:
                # Only legitimate when genuinely partitioned: no alive
                # relay with both legs up.
                for k in range(n):
                    if (
                        k not in (src, dst)
                        and alive[k]
                        and link_ok[src, k]
                        and link_ok[k, dst]
                    ):
                        violations.append(
                            f"{pair}: declared unreachable but relay {k} "
                            "has both legs up"
                        )
                        break
                continue
            violations.append(f"{pair}: surviving demand left unrouted")
    return violations


def _residual_oracle_violations(
    scenario: FaultScenario,
    sizes: np.ndarray,
    snap_after: DirectorySnapshot,
    partial,
    result,
    alive: np.ndarray,
    scheduler: str,
) -> List[str]:
    """The relay-free residual reschedule must pass the full oracle."""
    if result.routes.needs_relays:
        return []  # relay legs are not one-event-per-pair by design
    survivors = np.flatnonzero(alive)
    if survivors.size < 2:
        return []
    residual = np.where(partial.delivered, 0.0, sizes)
    residual[:, ~alive] = 0.0
    residual[~alive, :] = 0.0
    if not residual.any():
        return []
    sub_snapshot = DirectorySnapshot(
        latency=snap_after.latency[np.ix_(survivors, survivors)],
        bandwidth=snap_after.bandwidth[np.ix_(survivors, survivors)],
        time=snap_after.time,
    )
    sub_problem = TotalExchangeProblem.from_snapshot(
        sub_snapshot, residual[np.ix_(survivors, survivors)]
    )
    sub_schedule = make_scheduler(scheduler)(sub_problem)
    return [
        f"residual oracle: {v}"
        for v in oracle_violations(
            sub_problem, sub_schedule, scheduler=scheduler
        )
    ]


def check_fault_recovery(
    scenario: FaultScenario, *, scheduler: str = "openshop"
) -> List[str]:
    """All recovery-contract violations for one scenario (empty = pass)."""
    snapshot = _scenario_snapshot(scenario)
    sizes = _scenario_sizes(scenario)
    solve = make_scheduler(scheduler)
    schedule = solve(TotalExchangeProblem.from_snapshot(snapshot, sizes))

    partial = cut_execution(schedule, scenario.fault.at_event)
    n = scenario.num_procs
    alive, link_ok = apply_fault_to_state(
        np.ones(n, dtype=bool), np.ones((n, n), dtype=bool), scenario.fault
    )
    snap_after = apply_fault_to_snapshot(snapshot, scenario.fault)
    result = repair_schedule(
        snap_after, sizes,
        delivered=partial.delivered, alive=alive, link_ok=link_ok,
        scheduler=solve,
    )
    merged = merge_with_salvaged(
        partial.salvaged, result.schedule, offset=partial.strike_time
    )

    violations: List[str] = []
    # Fast vectorized prefilter; the event-by-event checker runs only on
    # failure, for its detailed violation batch.
    try:
        check_schedule_fast(merged)
    except ScheduleError:
        try:
            check_schedule(merged)
        except ScheduleError as exc:
            violations += [
                f"merged timeline: {v}"
                for v in (exc.violations or [str(exc)])
            ]
    violations += _delivery_violations(
        scenario, sizes, partial, result, merged, alive, link_ok
    )
    violations += _residual_oracle_violations(
        scenario, sizes, snap_after, partial, result, alive, scheduler
    )
    return violations


def repair_vs_full_reschedule(
    scenario: FaultScenario, *, scheduler: str = "openshop"
) -> Dict[str, float]:
    """Compare incremental repair against a naive restart from scratch.

    The naive strategy throws the whole partial execution away and
    reschedules the *full* surviving demand.  Returns both approaches'
    salvaged-event counts and makespans (measured from the strike).
    """
    snapshot = _scenario_snapshot(scenario)
    sizes = _scenario_sizes(scenario)
    solve = make_scheduler(scheduler)
    schedule = solve(TotalExchangeProblem.from_snapshot(snapshot, sizes))
    partial = cut_execution(schedule, scenario.fault.at_event)
    n = scenario.num_procs
    alive, link_ok = apply_fault_to_state(
        np.ones(n, dtype=bool), np.ones((n, n), dtype=bool), scenario.fault
    )
    snap_after = apply_fault_to_snapshot(snapshot, scenario.fault)

    repaired = repair_schedule(
        snap_after, sizes,
        delivered=partial.delivered, alive=alive, link_ok=link_ok,
        scheduler=solve,
    )
    naive = repair_schedule(
        snap_after, sizes,
        delivered=None, alive=alive, link_ok=link_ok, scheduler=solve,
    )
    return {
        "salvaged_repair": float(partial.salvaged_events),
        "salvaged_naive": 0.0,
        "resent_repair": float(repaired.resent),
        "resent_naive": float(naive.resent),
        "makespan_repair": float(repaired.schedule.completion_time),
        "makespan_naive": float(naive.schedule.completion_time),
    }


@dataclass
class FaultCheckReport:
    """Outcome of the fault family run."""

    scheduler: str
    scenarios: int = 0
    failures: List[Tuple[str, List[str]]] = field(default_factory=list)
    comparisons: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fault_check(
    *, scheduler: str = "openshop", makespan_slack: float = 1.5
) -> FaultCheckReport:
    """Run the full fault family: scenarios, golden path, repair-vs-naive.

    ``makespan_slack`` bounds how much slower incremental repair may be
    than the naive full reschedule (it re-sends less but over the same
    degraded network, so parity within 1.5× is the contract).
    """
    report = FaultCheckReport(scheduler=scheduler)

    golden = golden_zero_fault_violations(scheduler=scheduler)
    report.scenarios += 1
    if golden:
        report.failures.append(("golden-zero-fault", golden))

    for scenario in fault_scenarios():
        report.scenarios += 1
        violations = check_fault_recovery(scenario, scheduler=scheduler)
        if violations:
            report.failures.append((scenario.name, violations))
        stats = repair_vs_full_reschedule(scenario, scheduler=scheduler)
        report.comparisons[scenario.name] = stats
        issues: List[str] = []
        if scenario.fault.at_event and scenario.fault.at_event > 1:
            if stats["salvaged_repair"] <= stats["salvaged_naive"]:
                issues.append(
                    "repair salvaged no more events than the naive "
                    f"restart ({stats['salvaged_repair']:g} vs "
                    f"{stats['salvaged_naive']:g})"
                )
        if stats["makespan_repair"] > makespan_slack * stats["makespan_naive"]:
            issues.append(
                f"repair makespan {stats['makespan_repair']:g} exceeds "
                f"{makespan_slack:g}x the naive restart's "
                f"{stats['makespan_naive']:g}"
            )
        if issues:
            report.failures.append((f"{scenario.name}-vs-naive", issues))
    return report


def render_fault_check(report: FaultCheckReport) -> str:
    """Human-readable fault family report."""
    lines = [
        f"fault family: {report.scenarios} scenarios against "
        f"scheduler {report.scheduler!r}"
    ]
    rows = []
    for name, stats in report.comparisons.items():
        rows.append([
            name,
            int(stats["salvaged_repair"]),
            int(stats["resent_repair"]),
            int(stats["resent_naive"]),
            stats["makespan_repair"],
            stats["makespan_naive"],
        ])
    if rows:
        lines.append(format_table(
            ["scenario", "salvaged", "resent", "resent (naive)",
             "makespan", "makespan (naive)"],
            rows, precision=4,
            title="incremental repair vs naive full reschedule",
        ))
    if report.ok:
        lines.append("fault family: all scenarios PASS")
    else:
        for name, violations in report.failures:
            lines.append(f"FAIL {name}:")
            lines += [f"  - {v}" for v in violations[:10]]
            if len(violations) > 10:
                lines.append(f"  ... +{len(violations) - 10} more")
    return "\n".join(lines)
