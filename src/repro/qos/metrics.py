"""QoS outcome metrics: deadline misses and tardiness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.qos.deadlines import QoSProblem
from repro.timing.events import Schedule


@dataclass(frozen=True)
class QoSReport:
    """Deadline outcomes of a schedule against a QoS problem."""

    total_messages: int
    missed: int
    max_tardiness: float
    weighted_tardiness: float
    completion_time: float

    @property
    def miss_rate(self) -> float:
        if self.total_messages == 0:
            return 0.0
        return self.missed / self.total_messages


def evaluate_qos(problem: QoSProblem, schedule: Schedule) -> QoSReport:
    """Score ``schedule`` against ``problem``'s deadlines and priorities.

    Tardiness of a message is ``max(0, finish - deadline)``; weighted
    tardiness multiplies by the message priority.  Messages without a QoS
    record are best-effort (infinite deadline) and never count as missed.
    """
    qos = problem.qos_map()
    finish_times: Dict[Tuple[int, int], float] = {
        (event.src, event.dst): event.finish for event in schedule
    }
    missed = 0
    max_tardiness = 0.0
    weighted = 0.0
    for (src, dst), msg in qos.items():
        finish = finish_times.get((src, dst))
        if finish is None:
            raise ValueError(
                f"schedule has no event for QoS message {src}->{dst}"
            )
        tardiness = max(0.0, finish - msg.deadline)
        if tardiness > 0:
            missed += 1
        max_tardiness = max(max_tardiness, tardiness)
        weighted += msg.priority * tardiness
    return QoSReport(
        total_messages=len(qos),
        missed=missed,
        max_tardiness=max_tardiness,
        weighted_tardiness=weighted,
        completion_time=schedule.completion_time,
    )
