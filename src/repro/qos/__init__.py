"""QoS-constrained communication scheduling (paper Section 6.4).

Two problem variations the paper sketches for BADD-style data staging:

* :mod:`repro.qos.deadlines` — every message carries a real-time deadline
  and a priority; deadline- and priority-aware open shop variants
  sequence contending messages accordingly, and
  :mod:`repro.qos.metrics` scores miss rates and weighted tardiness;
* :mod:`repro.qos.critical` — one processor is a critical resource (an
  expensive supercomputer) whose communication should finish as early as
  possible, even at the expense of overall completion time.
"""

from repro.qos.critical import critical_finish_time, schedule_critical_first
from repro.qos.deadlines import (
    QoSMessage,
    QoSProblem,
    schedule_edf,
    schedule_llf,
    schedule_priority,
)
from repro.qos.metrics import QoSReport, evaluate_qos

__all__ = [
    "QoSMessage",
    "QoSProblem",
    "QoSReport",
    "critical_finish_time",
    "evaluate_qos",
    "schedule_critical_first",
    "schedule_edf",
    "schedule_llf",
    "schedule_priority",
]
