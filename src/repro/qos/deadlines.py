"""Deadline- and priority-aware scheduling.

The schedulers are open-shop-style list schedulers (the paper's best
heuristic) with QoS-aware selection: when a sender becomes free it picks,
among its remaining receivers, the message most urgent under the chosen
discipline:

* :func:`schedule_edf` — earliest deadline first, breaking ties by
  higher priority, then earliest-available receiver;
* :func:`schedule_priority` — highest priority first, breaking ties by
  earlier deadline, then earliest-available receiver.

Both remain work-conserving, so Theorem 3's ``2 x`` lower-bound guarantee
still applies to the makespan; what changes is *which* messages absorb
the queueing delay.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_square_matrix


@dataclass(frozen=True, order=True)
class QoSMessage:
    """A message with QoS attributes.

    ``deadline`` is an absolute time in seconds (``inf`` = best-effort);
    ``priority`` is a non-negative weight, larger = more important.
    """

    src: int
    dst: int
    deadline: float = float("inf")
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"processor indices must be >= 0: {self}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0: {self}")


@dataclass(frozen=True)
class QoSProblem:
    """A total-exchange instance with per-message QoS attributes."""

    base: TotalExchangeProblem
    messages: Tuple[QoSMessage, ...]

    def __post_init__(self) -> None:
        n = self.base.num_procs
        seen = set()
        for msg in self.messages:
            if msg.src >= n or msg.dst >= n:
                raise ValueError(f"{msg} outside [0, {n})")
            if (msg.src, msg.dst) in seen:
                raise ValueError(f"duplicate QoS message for {msg.src}->{msg.dst}")
            seen.add((msg.src, msg.dst))
        object.__setattr__(self, "messages", tuple(self.messages))

    @classmethod
    def uniform_deadlines(
        cls,
        base: TotalExchangeProblem,
        *,
        slack_factor: float = 1.5,
    ) -> "QoSProblem":
        """Give every message the deadline ``slack_factor * t_lb``."""
        deadline = slack_factor * base.lower_bound()
        messages = tuple(
            QoSMessage(src=src, dst=dst, deadline=deadline)
            for src, dst in base.positive_events()
        )
        return cls(base=base, messages=messages)

    def qos_map(self) -> Dict[Tuple[int, int], QoSMessage]:
        """Map ``(src, dst)`` to its QoS record; unlisted pairs default."""
        return {(m.src, m.dst): m for m in self.messages}


#: Selection key: smaller sorts first.  Receives (message, recv_available).
SelectionKey = Callable[[QoSMessage, float], Tuple]


def _edf_key(msg: QoSMessage, recv_avail: float) -> Tuple:
    return (msg.deadline, -msg.priority, recv_avail, msg.dst)


def _priority_key(msg: QoSMessage, recv_avail: float) -> Tuple:
    return (-msg.priority, msg.deadline, recv_avail, msg.dst)


def _llf_key_factory(cost) -> "SelectionKey":
    """Least-laxity-first: laxity = deadline - earliest finish.

    Unlike EDF's static deadline order, laxity accounts for how long the
    message still needs: a far deadline with a huge transfer can be more
    urgent than a near deadline with a tiny one.
    """

    def key(msg: QoSMessage, recv_avail: float) -> Tuple:
        finish = recv_avail + float(cost[msg.src, msg.dst])
        laxity = msg.deadline - finish
        return (laxity, -msg.priority, recv_avail, msg.dst)

    return key


def _schedule_with_key(problem: QoSProblem, key: SelectionKey) -> Schedule:
    base = problem.base
    cost = base.cost
    n = base.num_procs
    qos = problem.qos_map()

    def record(src: int, dst: int) -> QoSMessage:
        return qos.get((src, dst), QoSMessage(src=src, dst=dst))

    recv_sets: List[Set[int]] = [
        {dst for dst in range(n) if cost[src, dst] > 0} for src in range(n)
    ]
    sendavail = [0.0] * n
    recvavail = [0.0] * n
    events: List[CommEvent] = []
    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0)
                )

    heap = [(0.0, src) for src in range(n) if recv_sets[src]]
    heapq.heapify(heap)
    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not recv_sets[src]:
            continue
        dst = min(
            recv_sets[src], key=lambda j: key(record(src, j), recvavail[j])
        )
        start = max(sendavail[src], recvavail[dst])
        finish = start + float(cost[src, dst])
        events.append(
            CommEvent(
                start=start, src=src, dst=dst, duration=float(cost[src, dst])
            )
        )
        sendavail[src] = finish
        recvavail[dst] = finish
        recv_sets[src].discard(dst)
        if recv_sets[src]:
            heapq.heappush(heap, (finish, src))
    return Schedule.from_events(n, events)


def schedule_edf(problem: QoSProblem) -> Schedule:
    """Earliest-deadline-first open shop schedule."""
    return _schedule_with_key(problem, _edf_key)


def schedule_priority(problem: QoSProblem) -> Schedule:
    """Highest-priority-first open shop schedule."""
    return _schedule_with_key(problem, _priority_key)


def schedule_llf(problem: QoSProblem) -> Schedule:
    """Least-laxity-first open shop schedule.

    Dynamic urgency: each selection compares ``deadline - (earliest
    finish)`` so long transfers gain priority as their slack runs out.

    Empirical caveat (bench X3 / tests): without preemption, LLF
    front-loads the longest transfers (their laxity is smallest) and
    starves genuinely urgent small messages behind busy ports — EDF
    dominates it on tiered-deadline workloads.  LLF's optimality results
    are preemptive; it is provided as the honest comparison point.
    """
    return _schedule_with_key(problem, _llf_key_factory(problem.base.cost))
