"""Critical-resource scheduling (paper Section 6.4).

"One of the processors in the heterogeneous system could be a critical
resource (e.g., an expensive supercomputer).  The schedule should
complete the communication events of this processor as early as
possible, even if it delays the other processors."

:func:`schedule_critical_first` runs two open shop phases: first only the
events touching the critical processor (its sends and receives), then the
rest, warm-starting from the phase-1 availability times.  The critical
processor's finish time is provably minimal *within its own events* up to
the heuristic's quality; everything else absorbs the delay.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_index


def _openshop_phase(
    cost,
    pairs: Set[Tuple[int, int]],
    sendavail: List[float],
    recvavail: List[float],
    events: List[CommEvent],
) -> None:
    """Open shop list scheduling of ``pairs``, mutating avail vectors."""
    n = len(sendavail)
    recv_sets: List[Set[int]] = [set() for _ in range(n)]
    for src, dst in pairs:
        recv_sets[src].add(dst)
    heap = [(sendavail[src], src) for src in range(n) if recv_sets[src]]
    heapq.heapify(heap)
    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not recv_sets[src]:
            continue
        dst = min(recv_sets[src], key=lambda j: (recvavail[j], j))
        start = max(sendavail[src], recvavail[dst])
        duration = float(cost[src, dst])
        finish = start + duration
        events.append(
            CommEvent(start=start, src=src, dst=dst, duration=duration)
        )
        sendavail[src] = finish
        recvavail[dst] = finish
        recv_sets[src].discard(dst)
        if recv_sets[src]:
            heapq.heappush(heap, (finish, src))


def schedule_critical_first(
    problem: TotalExchangeProblem, critical: int
) -> Schedule:
    """Two-phase open shop schedule prioritising ``critical``'s events."""
    n = problem.num_procs
    check_index("critical", critical, n)
    cost = problem.cost

    all_pairs = set(problem.positive_events())
    critical_pairs = {
        (src, dst) for src, dst in all_pairs if src == critical or dst == critical
    }
    other_pairs = all_pairs - critical_pairs

    sendavail = [0.0] * n
    recvavail = [0.0] * n
    events: List[CommEvent] = []
    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0)
                )

    _openshop_phase(cost, critical_pairs, sendavail, recvavail, events)
    _openshop_phase(cost, other_pairs, sendavail, recvavail, events)
    return Schedule.from_events(n, events)


def critical_finish_time(schedule: Schedule, critical: int) -> float:
    """When the critical processor's last send or receive completes."""
    return schedule.finish_time_of(critical)
