"""Serialization: problems, snapshots, and schedules as JSON.

Lets experiments persist instances and results (e.g. a directory
snapshot captured on one machine, rescheduled on another), and gives the
benches a stable on-disk format for regression comparisons.
"""

from repro.io.serialize import (
    load_json,
    problem_from_dict,
    problem_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.io.svg import render_svg, save_svg
from repro.io.trace import save_trace, schedule_to_trace

__all__ = [
    "load_json",
    "problem_from_dict",
    "problem_to_dict",
    "render_svg",
    "save_json",
    "save_svg",
    "save_trace",
    "schedule_from_dict",
    "schedule_to_dict",
    "schedule_to_trace",
    "snapshot_from_dict",
    "snapshot_to_dict",
]
