"""Chrome trace-event export of schedules.

Writes schedules in the Trace Event Format understood by
``chrome://tracing`` / Perfetto: one track ("thread") per processor
port, one complete event per transfer.  Lets real trace tooling inspect
simulated schedules — useful when debugging large instances where ASCII
or SVG diagrams stop scaling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.timing.events import Schedule

#: Trace timestamps are microseconds.
_US = 1e6


def schedule_to_trace(
    schedule: Schedule, *, process_name: str = "total-exchange"
) -> Dict[str, Any]:
    """Encode a schedule as a Trace Event Format dictionary.

    Each processor gets two tracks: ``P<i> send`` (tid ``2i``) and
    ``P<i> recv`` (tid ``2i+1``); every transfer emits one complete
    ("X") event on each.
    """
    events: List[Dict[str, Any]] = []
    for proc in range(schedule.num_procs):
        for offset, role in ((0, "send"), (1, "recv")):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 2 * proc + offset,
                    "args": {"name": f"P{proc} {role}"},
                }
            )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    for event in schedule:
        if event.duration <= 0:
            continue
        payload = {
            "name": f"P{event.src}->P{event.dst}",
            "cat": "transfer",
            "ph": "X",
            "pid": 1,
            "ts": event.start * _US,
            "dur": event.duration * _US,
            "args": {"bytes": event.size},
        }
        events.append({**payload, "tid": 2 * event.src})
        events.append({**payload, "tid": 2 * event.dst + 1})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_trace(
    schedule: Schedule,
    path: Union[str, pathlib.Path],
    **kwargs,
) -> None:
    """Write a Chrome trace JSON file for ``schedule``."""
    pathlib.Path(path).write_text(
        json.dumps(schedule_to_trace(schedule, **kwargs))
    )
