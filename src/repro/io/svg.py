"""SVG rendering of timing diagrams.

A dependency-free vector rendering of the paper's timing diagrams (one
column per sender, time flowing down, each rectangle labelled with its
destination).  Colours encode the destination processor so receiver
serialisation is visible at a glance.  Output is a self-contained SVG
string / file suitable for inclusion in reports.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Union
from xml.sax.saxutils import escape

from repro.timing.events import Schedule

#: Column width and layout constants (SVG user units).
_COL_WIDTH = 80
_COL_GAP = 14
_HEADER = 28
_FOOTER = 12
_LEFT_AXIS = 54

#: A colour-blind-safe cycling palette (Okabe-Ito).
_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)


def _color(dst: int) -> str:
    return _PALETTE[dst % len(_PALETTE)]


def render_svg(
    schedule: Schedule,
    *,
    height: float = 480.0,
    time_span: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``schedule`` as an SVG timing diagram string."""
    span = time_span if time_span is not None else schedule.completion_time
    if span <= 0:
        span = 1.0
    scale = height / span
    n = schedule.num_procs
    width = _LEFT_AXIS + n * (_COL_WIDTH + _COL_GAP)
    total_height = _HEADER + height + _FOOTER

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{total_height:.0f}" '
        f'viewBox="0 0 {width:.0f} {total_height:.0f}" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{width:.0f}" height="{total_height:.0f}" '
        'fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_LEFT_AXIS}" y="14" font-weight="bold">'
            f"{escape(title)}</text>"
        )

    # time axis: 5 gridlines
    for k in range(6):
        t = span * k / 5
        y = _HEADER + t * scale
        parts.append(
            f'<line x1="{_LEFT_AXIS - 4}" y1="{y:.1f}" '
            f'x2="{width:.0f}" y2="{y:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{_LEFT_AXIS - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{t:.3g}</text>'
        )

    # column headers
    for proc in range(n):
        x = _LEFT_AXIS + proc * (_COL_WIDTH + _COL_GAP)
        parts.append(
            f'<text x="{x + _COL_WIDTH / 2:.1f}" y="{_HEADER - 6}" '
            f'text-anchor="middle" font-weight="bold">P{proc}</text>'
        )

    # events (senders' columns)
    for event in schedule:
        if event.duration <= 0:
            continue
        x = _LEFT_AXIS + event.src * (_COL_WIDTH + _COL_GAP)
        y = _HEADER + event.start * scale
        h = max(event.duration * scale, 1.0)
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{_COL_WIDTH}" '
            f'height="{h:.1f}" fill="{_color(event.dst)}" '
            'fill-opacity="0.85" stroke="#333333" stroke-width="0.6">'
            f"<title>P{event.src} → P{event.dst}: "
            f"{event.start:.4g}s .. {event.finish:.4g}s "
            f"({event.duration:.4g}s)</title></rect>"
        )
        if h >= 11:
            parts.append(
                f'<text x="{x + _COL_WIDTH / 2:.1f}" '
                f'y="{y + min(h / 2 + 4, h - 2):.1f}" text-anchor="middle" '
                f'fill="white">{event.dst}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    schedule: Schedule,
    path: Union[str, pathlib.Path],
    **kwargs,
) -> None:
    """Render and write an SVG timing diagram to ``path``."""
    pathlib.Path(path).write_text(render_svg(schedule, **kwargs))
