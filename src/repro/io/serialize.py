"""JSON (de)serialization of the core value types.

All formats are versioned dictionaries of plain lists/numbers; infinities
(the bandwidth diagonal) are encoded as the string ``"inf"`` so the
output is strict JSON.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule

FORMAT_VERSION = 1


def _matrix_to_lists(matrix: np.ndarray):
    return [
        ["inf" if np.isinf(x) else float(x) for x in row] for row in matrix
    ]


def _matrix_from_lists(rows) -> np.ndarray:
    return np.array(
        [[float("inf") if x == "inf" else float(x) for x in row] for row in rows]
    )


# -- problems ---------------------------------------------------------------

def problem_to_dict(problem: TotalExchangeProblem) -> Dict[str, Any]:
    """Encode a total-exchange instance."""
    payload: Dict[str, Any] = {
        "format": "repro/problem",
        "version": FORMAT_VERSION,
        "cost": _matrix_to_lists(problem.cost),
    }
    if problem.sizes is not None:
        payload["sizes"] = _matrix_to_lists(problem.sizes)
    return payload


def problem_from_dict(payload: Dict[str, Any]) -> TotalExchangeProblem:
    """Decode :func:`problem_to_dict` output."""
    _check_format(payload, "repro/problem")
    sizes = payload.get("sizes")
    return TotalExchangeProblem(
        cost=_matrix_from_lists(payload["cost"]),
        sizes=_matrix_from_lists(sizes) if sizes is not None else None,
    )


# -- snapshots ----------------------------------------------------------------

def snapshot_to_dict(snapshot: DirectorySnapshot) -> Dict[str, Any]:
    """Encode a directory snapshot."""
    return {
        "format": "repro/snapshot",
        "version": FORMAT_VERSION,
        "time": snapshot.time,
        "latency": _matrix_to_lists(snapshot.latency),
        "bandwidth": _matrix_to_lists(snapshot.bandwidth),
    }


def snapshot_from_dict(payload: Dict[str, Any]) -> DirectorySnapshot:
    """Decode :func:`snapshot_to_dict` output."""
    _check_format(payload, "repro/snapshot")
    return DirectorySnapshot(
        latency=_matrix_from_lists(payload["latency"]),
        bandwidth=_matrix_from_lists(payload["bandwidth"]),
        time=float(payload.get("time", 0.0)),
    )


# -- schedules ----------------------------------------------------------------

def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Encode a schedule as an event list."""
    return {
        "format": "repro/schedule",
        "version": FORMAT_VERSION,
        "num_procs": schedule.num_procs,
        "events": [
            [event.start, event.src, event.dst, event.duration, event.size]
            for event in schedule
        ],
    }


def schedule_from_dict(payload: Dict[str, Any]) -> Schedule:
    """Decode :func:`schedule_to_dict` output."""
    _check_format(payload, "repro/schedule")
    events = [
        CommEvent(
            start=float(start),
            src=int(src),
            dst=int(dst),
            duration=float(duration),
            size=float(size),
        )
        for start, src, dst, duration, size in payload["events"]
    ]
    return Schedule.from_events(int(payload["num_procs"]), events)


# -- files ----------------------------------------------------------------

def _check_format(payload: Dict[str, Any], expected: str) -> None:
    found = payload.get("format")
    if found != expected:
        raise ValueError(f"expected format {expected!r}, found {found!r}")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {expected} version {version!r} "
            f"(supported: {FORMAT_VERSION})"
        )


def save_json(path: Union[str, pathlib.Path], payload: Dict[str, Any]) -> None:
    """Write an encoded object to ``path``."""
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_json(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read an encoded object from ``path``."""
    return json.loads(pathlib.Path(path).read_text())
