"""Lightweight observability for the adaptive runtime.

The serving loop (:class:`repro.runtime.session.AdaptiveSession`) emits
one structured :class:`TickEvent` per total exchange plus named counters
and histograms into a :class:`RuntimeMetrics` registry.  Everything is
plain data: exportable as JSON (machine-readable summaries for CI and
experiments) and as Chrome trace-event spans (one track per decision
kind) through the same Trace Event Format conventions as
:mod:`repro.io.trace`, so a session's policy behaviour can be inspected
in ``chrome://tracing`` / Perfetto next to the schedules it produced.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.ops.sink import Counter, MetricsSink

#: Trace timestamps are microseconds (matches :mod:`repro.io.trace`).
_US = 1e6


class Histogram:
    """Streaming summary of a numeric series.

    Keeps O(1) state (count / sum / min / max) plus a small reservoir of
    the most recent samples for percentile estimates — a serving loop
    runs for unboundedly many ticks, so the full series is not retained.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_recent", "_keep")

    def __init__(self, name: str, keep: int = 256):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._recent: List[float] = []
        self._keep = keep

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._recent.append(value)
        if len(self._recent) > self._keep:
            del self._recent[: len(self._recent) - self._keep]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile over the retained recent samples."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        index = min(
            len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[index]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


@dataclass(frozen=True)
class TickEvent:
    """One serving tick's structured record.

    Attributes
    ----------
    tick:
        0-based tick index.
    time:
        Directory clock at the tick, in simulated seconds.
    decision:
        ``"reuse"``, ``"refine"``, ``"repair"`` (delta-repair of the
        active plan) or ``"reschedule"``.
    reason:
        Why the policy picked the decision (threshold comparison,
        staleness cap, budget, forced fallback...).
    drift:
        Mean relative cost change against the active plan's basis.
    predicted_makespan:
        The active plan's completion time under the costs it was
        planned for.
    executed_makespan:
        The plan's completion time re-executed under the tick's actual
        costs.
    regret:
        ``executed - predicted`` seconds (positive: reality was worse
        than the plan promised).
    scheduler_elapsed:
        Wall-clock seconds spent inside scheduler/refinement calls this
        tick (0 for pure reuse).
    refine_evaluations:
        Candidate evaluations spent by incremental refinement (0 unless
        the decision was ``refine``).
    cache_hit:
        Whether a full reschedule was answered from the digest-keyed
        schedule cache.
    fallback:
        Whether the baseline fallback replaced the scheduler's answer
        (timeout or exception).
    degraded:
        Whether any active fault constrained this tick (dead/blacked-out
        links or dropped nodes among the demanded pairs).
    faults_seen:
        Faults newly observed this tick (each injected fault counts
        once, on the tick the session first sees it).
    repair:
        Recovery action taken after a mid-schedule fault: ``""`` (none),
        ``"retry"`` (transient outwaited by backoff), ``"repair"``
        (salvage + residual reschedule) or ``"full"`` (reschedule over
        survivors from scratch).
    retries / backoff_wait_s:
        Backoff attempts against a transient fault this tick and the
        simulated seconds they waited (paid even when the link is then
        declared dead).
    salvaged_events / resent_events:
        Completed events kept and messages re-sent by a repair episode.
    repair_latency_s:
        Wall-clock seconds spent computing the repair schedule.
    undeliverable:
        Demanded messages no surviving route can carry (partitioned
        pair or dead endpoint) at this tick.
    dirty_fraction:
        Fraction of relevant cost pairs repriced against the plan's
        basis (the localisation signal the repair tier gates on).
    repaired_events:
        Events re-inserted by a delta repair this tick (0 unless the
        decision was ``repair``).
    """

    tick: int
    time: float
    decision: str
    reason: str
    drift: float
    predicted_makespan: float
    executed_makespan: float
    regret: float
    scheduler_elapsed: float = 0.0
    refine_evaluations: int = 0
    cache_hit: bool = False
    fallback: bool = False
    degraded: bool = False
    faults_seen: int = 0
    repair: str = ""
    retries: int = 0
    backoff_wait_s: float = 0.0
    salvaged_events: int = 0
    resent_events: int = 0
    repair_latency_s: float = 0.0
    undeliverable: int = 0
    dirty_fraction: float = 0.0
    repaired_events: int = 0


#: Decision names in stable display order.
DECISIONS = ("reuse", "refine", "repair", "reschedule")

#: Valid ``TickEvent.repair`` values ("" = no recovery this tick).
REPAIR_ACTIONS = ("", "retry", "repair", "full")


class RuntimeMetrics(MetricsSink):
    """In-memory :class:`repro.ops.sink.MetricsSink`: counters,
    reservoir histograms, and the per-tick event log.

    ``emit`` accepts the session's :class:`TickEvent` (or a mapping with
    the same fields) and folds it into the aggregates; ``observe``
    records into a named histogram.  This is the default sink an
    :class:`repro.runtime.session.AdaptiveSession` publishes into — wire
    additional consumers (the ops store, SLO monitors) next to it with a
    :class:`repro.ops.sink.MultiSink`.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.events: List[TickEvent] = []

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, keep: Optional[int] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, keep=keep if keep is not None else 256
            )
        return histogram

    # -- MetricsSink --------------------------------------------------------

    def emit(self, event: Union[TickEvent, Mapping[str, Any]]) -> None:
        """Publish one tick event (the sink-protocol spelling of
        :meth:`record_tick`)."""
        if isinstance(event, Mapping):
            event = TickEvent(**event)
        self.record_tick(event)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    def record_tick(self, event: TickEvent) -> None:
        """Fold one tick into the counters/histograms and keep the event."""
        if event.decision not in DECISIONS:
            raise ValueError(
                f"unknown decision {event.decision!r}; "
                f"expected one of {DECISIONS}"
            )
        self.events.append(event)
        self.counter("ticks").inc()
        self.counter(f"decision.{event.decision}").inc()
        if event.cache_hit:
            self.counter("cache.hits").inc()
        elif event.decision == "reschedule":
            self.counter("cache.misses").inc()
        if event.fallback:
            self.counter("fallback.activations").inc()
        if event.refine_evaluations:
            self.counter("refine.evaluations").inc(event.refine_evaluations)
        if event.decision == "repair":
            self.counter("delta_repair.events").inc(event.repaired_events)
            self.histogram("delta_repair_dirty_fraction").record(
                event.dirty_fraction
            )
            self.histogram("delta_repair_latency_s").record(
                event.scheduler_elapsed
            )
        self.histogram("regret_s").record(event.regret)
        self.histogram("executed_makespan_s").record(event.executed_makespan)
        self.histogram("scheduler_elapsed_s").record(event.scheduler_elapsed)
        self.histogram("drift").record(event.drift)
        self._record_fault_facets(event)

    def _record_fault_facets(self, event: TickEvent) -> None:
        if event.repair not in REPAIR_ACTIONS:
            raise ValueError(
                f"unknown repair action {event.repair!r}; "
                f"expected one of {REPAIR_ACTIONS}"
            )
        if event.degraded:
            self.counter("ticks.degraded").inc()
        if event.faults_seen:
            self.counter("faults.seen").inc(event.faults_seen)
        if event.retries:
            self.counter("retry.attempts").inc(event.retries)
            self.histogram("backoff_wait_s").record(event.backoff_wait_s)
        if event.repair == "retry":
            self.counter("retry.successes").inc()
        elif event.repair in ("repair", "full"):
            self.counter("repair.episodes").inc()
            self.counter(f"repair.{event.repair}").inc()
            self.counter("repair.salvaged_events").inc(event.salvaged_events)
            self.counter("repair.resent_events").inc(event.resent_events)
            self.histogram("salvaged_events").record(event.salvaged_events)
            self.histogram("resent_events").record(event.resent_events)
            self.histogram("repair_latency_s").record(event.repair_latency_s)
            if event.undeliverable:
                self.counter("messages.undeliverable").inc(
                    event.undeliverable
                )

    # -- derived rates ------------------------------------------------------

    def _count(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    @property
    def ticks(self) -> int:
        return self._count("ticks")

    @property
    def reschedule_rate(self) -> float:
        """Fraction of ticks that fully rescheduled."""
        ticks = self.ticks
        return self._count("decision.reschedule") / ticks if ticks else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over reschedule decisions."""
        lookups = self._count("cache.hits") + self._count("cache.misses")
        return self._count("cache.hits") / lookups if lookups else 0.0

    @property
    def degraded_tick_ratio(self) -> float:
        """Fraction of ticks served under an active fault."""
        ticks = self.ticks
        return self._count("ticks.degraded") / ticks if ticks else 0.0

    # -- export -------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The headline serving numbers as one flat dict."""
        ticks = self.ticks
        return {
            "ticks": ticks,
            "decisions": {
                name: self._count(f"decision.{name}") for name in DECISIONS
            },
            "reschedule_rate": self.reschedule_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "fallback_activations": self._count("fallback.activations"),
            "refine_evaluations": self._count("refine.evaluations"),
            "mean_regret_s": self.histogram("regret_s").mean,
            "mean_executed_makespan_s": (
                self.histogram("executed_makespan_s").mean
            ),
            "degraded_tick_ratio": self.degraded_tick_ratio,
            "faults_seen": self._count("faults.seen"),
            "retry_successes": self._count("retry.successes"),
            "repair_episodes": self._count("repair.episodes"),
            "messages_salvaged": self._count("repair.salvaged_events"),
            "messages_resent": self._count("repair.resent_events"),
        }

    def to_json(self) -> Dict[str, Any]:
        """Full JSON-serialisable dump: summary, counters, histograms,
        and the per-tick structured events."""
        return {
            "summary": self.summary(),
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
            "events": [asdict(event) for event in self.events],
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Per-tick spans in the Trace Event Format.

        One track per decision kind; each tick is a complete ("X") span
        from its directory time over the executed makespan, annotated
        with the tick's structured record — loadable in
        ``chrome://tracing`` / Perfetto alongside
        :func:`repro.io.trace.schedule_to_trace` output.
        """
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "adaptive-session"},
            }
        ]
        # The repair decision track (like the fault-repair track below)
        # exists only when the session actually repaired something, so
        # repair-free traces look exactly as they always did.
        repaired = any(event.decision == "repair" for event in self.events)
        for tid, decision in enumerate(DECISIONS):
            if decision == "repair" and not repaired:
                continue
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": decision},
                }
            )
        repair_tid = len(DECISIONS)
        if any(event.repair for event in self.events):
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": repair_tid,
                    "args": {"name": "fault-repair"},
                }
            )
        for event in self.events:
            trace_events.append(
                {
                    "name": f"tick {event.tick}: {event.decision}",
                    "cat": "tick",
                    "ph": "X",
                    "pid": 1,
                    "tid": DECISIONS.index(event.decision),
                    "ts": event.time * _US,
                    "dur": max(event.executed_makespan, 1e-9) * _US,
                    "args": asdict(event),
                }
            )
            if event.repair:
                trace_events.append(
                    {
                        "name": (
                            f"tick {event.tick}: {event.repair} "
                            f"(salvaged {event.salvaged_events}, "
                            f"resent {event.resent_events})"
                        ),
                        "cat": "repair",
                        "ph": "X",
                        "pid": 1,
                        "tid": repair_tid,
                        "ts": event.time * _US,
                        "dur": max(event.executed_makespan, 1e-9) * _US,
                        "args": asdict(event),
                    }
                )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def save_json(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_json(), indent=2))

    def save_chrome_trace(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_chrome_trace()))


class SessionMetrics(RuntimeMetrics):
    """Deprecated pre-``MetricsSink`` name for :class:`RuntimeMetrics`.

    One-release shim: constructing it still works (it *is* a
    ``RuntimeMetrics``) but warns.  Construct :class:`RuntimeMetrics`
    directly, or pass any :class:`repro.ops.sink.MetricsSink` to
    ``AdaptiveSession(sink=...)``.
    """

    def __init__(self):
        warnings.warn(
            "SessionMetrics is deprecated; construct RuntimeMetrics or "
            "pass a repro.ops.sink.MetricsSink to AdaptiveSession(sink=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()
