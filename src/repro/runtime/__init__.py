"""Online adaptive scheduling runtime (the paper's run-time loop).

The paper's core claim is *run-time* adaptivity: a directory service
reports drifting latency/bandwidth, and the framework decides per total
exchange whether to reuse, incrementally refine, or fully recompute the
schedule.  This package closes that loop as a long-lived serving
component:

* :mod:`repro.runtime.session` — :class:`AdaptiveSession`, the serving
  loop with digest-keyed schedule caching, scheduler deadlines with
  baseline fallback, and staleness caps;
* :mod:`repro.runtime.policy` — the reuse/refine/repair/reschedule
  decision and its :class:`PolicyConfig` tunables (the repair tier
  delta-patches the active schedule via :mod:`repro.adaptive.delta`);
* :mod:`repro.runtime.metrics` — counters, histograms, structured
  per-tick events; JSON and Chrome-trace export.

``python -m repro.cli serve`` drives a session from a
:mod:`repro.sim.replay` drift trace and prints the summary table.
"""

from repro.ops.sink import MetricsSink
from repro.runtime.metrics import (
    Counter,
    DECISIONS,
    Histogram,
    RuntimeMetrics,
    SessionMetrics,
    TickEvent,
)
from repro.runtime.policy import (
    PolicyConfig,
    REFINE,
    REPAIR,
    RESCHEDULE,
    REUSE,
    decide,
    drift_magnitude,
)
from repro.runtime.session import AdaptiveSession, TickResult

__all__ = [
    "AdaptiveSession",
    "Counter",
    "DECISIONS",
    "Histogram",
    "MetricsSink",
    "PolicyConfig",
    "REFINE",
    "REPAIR",
    "RESCHEDULE",
    "REUSE",
    "RuntimeMetrics",
    "SessionMetrics",
    "TickEvent",
    "TickResult",
    "decide",
    "drift_magnitude",
]
