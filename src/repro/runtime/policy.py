"""The reuse / refine / repair / reschedule policy (paper Sections 4, 6).

Every serving tick the session measures how far the directory's current
costs have drifted from the basis the active plan was computed for, and
picks the cheapest response that keeps schedule quality:

* **reuse** — drift below ``reuse_threshold``: the previous dispatch
  orders are simply re-executed (zero scheduling cost);
* **refine** — drift below ``refine_threshold``: incremental repair via
  :func:`repro.adaptive.incremental.refine_orders` (targeted re-sort +
  budgeted swap passes, ``O(passes * P^3 log P)``);
* **repair** — drift up to ``repair_threshold`` *and* localised (the
  fraction of repriced pairs at most ``repair_max_dirty_fraction``):
  delta-repair the existing schedule via :mod:`repro.adaptive.delta`,
  touching only dirty events — ``O(f * P^2)`` for dirty fraction ``f``;
* **reschedule** — drift at or above ``repair_threshold``, or
  non-localised drift above ``refine_threshold``: a full scheduler run
  against the fresh snapshot (``O(P^2 log P)`` for the open shop
  default, up to ``O(P^4)`` for matching).

The repair tier is gated on *localisation*, not magnitude: mean drift
cannot distinguish uniform repricing (where delta repair degenerates to
re-inserting everything) from a few links moving a lot (where it is
~10× cheaper than a reschedule with near-identical makespan).  Callers
that cannot compute a dirty fraction pass ``None`` and get the classic
three-tier ladder unchanged.

Two robustness overlays guard the thresholds.  Staleness caps bound how
long measurement noise can pin the session to a stale plan: a long
reuse streak forces at least a refine, and a plan older than
``max_plan_age_ticks`` forces a full reschedule regardless of measured
drift (Estefanel & Mounié: directory readings are noisy inputs, small
per-tick drift can compound).  A compute budget bounds how often the
expensive response may fire: full reschedules are rationed to one per
``min_ticks_between_reschedules`` ticks, demoting excess demand to
refinement (Beaumont & Marchal's reuse-vs-recompute trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


#: Decision constants (string-valued so metrics and JSON stay readable).
#: ``REPAIR`` doubles as a per-tick decision (delta-repair the plan) and
#: a fault-recovery action (``TickEvent.repair``) — both mean "fix the
#: existing schedule in place instead of rebuilding it".
REUSE = "reuse"
REFINE = "refine"
RESCHEDULE = "reschedule"

#: Recovery actions after a mid-schedule fault (``TickEvent.repair``).
RETRY = "retry"
REPAIR = "repair"
FULL_RESCHEDULE = "full"


@dataclass(frozen=True)
class PolicyConfig:
    """Tunables of the per-tick policy.

    Attributes
    ----------
    reuse_threshold:
        Mean relative cost drift below which the plan is reused as-is.
    refine_threshold:
        Drift below which incremental refinement suffices; at or above
        it the plan is delta-repaired (localised drift) or recomputed
        from scratch.
    repair_threshold:
        Drift at or above which even localised repricing forces a full
        reschedule — with costs that far from the basis the incumbent
        event ordering the splice preserves is no longer near-optimal,
        so repair's makespan premium stops being worth the latency
        savings.
    repair_max_dirty_fraction:
        Maximum fraction of repriced (relevant) pairs for drift to
        count as localised and qualify for the repair tier; above it
        delta repair would re-insert too much of the plan to beat a
        reschedule on either axis.
    pair_change_rtol:
        Relative tolerance used when classifying an individual pair as
        repriced for the dirty-fraction localisation signal.
    refine_passes:
        Swap-pass budget handed to ``refine_orders``.
    max_reuse_ticks:
        Staleness cap: after this many consecutive reuse ticks the
        session refines even if measured drift stays under the reuse
        threshold.
    max_plan_age_ticks:
        Staleness cap: ticks since the last full reschedule after which
        recomputation is forced regardless of drift.
    min_ticks_between_reschedules:
        Compute budget: a drift-demanded full reschedule within this
        many ticks of the previous one is demoted to refinement
        (staleness-forced recomputations are exempt — robustness beats
        the budget).
    scheduler_deadline_s:
        Wall-clock deadline on one scheduler invocation; an invocation
        exceeding it (or raising) is discarded in favour of the O(P^2)
        baseline caterpillar.  ``None`` disables the deadline.
    retry_base_s / retry_factor / retry_cap_s / retry_max_attempts:
        Capped exponential backoff against *transient* faults: attempt
        ``k`` waits ``min(retry_base_s * retry_factor**k, retry_cap_s)``
        simulated seconds; after ``retry_max_attempts`` unsuccessful
        waits the link is declared dead and the permanent repair path
        takes over.
    repair_salvage_threshold:
        Minimum fraction of the tick's events already completed for a
        permanent fault to be handled by incremental repair (salvage +
        residual reschedule); below it almost nothing is saved, so a
        full reschedule over the survivors is used instead.
    """

    reuse_threshold: float = 0.05
    refine_threshold: float = 0.25
    repair_threshold: float = 0.75
    repair_max_dirty_fraction: float = 0.25
    pair_change_rtol: float = 0.05
    refine_passes: int = 1
    max_reuse_ticks: int = 8
    max_plan_age_ticks: int = 24
    min_ticks_between_reschedules: int = 0
    scheduler_deadline_s: Optional[float] = 5.0
    retry_base_s: float = 1.0
    retry_factor: float = 2.0
    retry_cap_s: float = 8.0
    retry_max_attempts: int = 4
    repair_salvage_threshold: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.reuse_threshold <= self.refine_threshold):
            raise ValueError(
                "need 0 <= reuse_threshold <= refine_threshold, got "
                f"{self.reuse_threshold} / {self.refine_threshold}"
            )
        if self.repair_threshold < self.refine_threshold:
            raise ValueError(
                f"repair_threshold ({self.repair_threshold}) must be >= "
                f"refine_threshold ({self.refine_threshold})"
            )
        if not (0.0 <= self.repair_max_dirty_fraction <= 1.0):
            raise ValueError(
                "repair_max_dirty_fraction must be in [0, 1], got "
                f"{self.repair_max_dirty_fraction}"
            )
        if self.pair_change_rtol < 0:
            raise ValueError(
                f"pair_change_rtol must be >= 0, got {self.pair_change_rtol}"
            )
        if self.refine_passes < 0:
            raise ValueError(
                f"refine_passes must be >= 0, got {self.refine_passes}"
            )
        if self.max_reuse_ticks < 1:
            raise ValueError(
                f"max_reuse_ticks must be >= 1, got {self.max_reuse_ticks}"
            )
        if self.max_plan_age_ticks < 1:
            raise ValueError(
                f"max_plan_age_ticks must be >= 1, "
                f"got {self.max_plan_age_ticks}"
            )
        if self.min_ticks_between_reschedules < 0:
            raise ValueError(
                "min_ticks_between_reschedules must be >= 0, got "
                f"{self.min_ticks_between_reschedules}"
            )
        if (
            self.scheduler_deadline_s is not None
            and self.scheduler_deadline_s <= 0
        ):
            raise ValueError(
                "scheduler_deadline_s must be positive or None, got "
                f"{self.scheduler_deadline_s}"
            )
        if self.retry_base_s <= 0:
            raise ValueError(
                f"retry_base_s must be positive, got {self.retry_base_s}"
            )
        if self.retry_factor < 1.0:
            raise ValueError(
                f"retry_factor must be >= 1, got {self.retry_factor}"
            )
        if self.retry_cap_s < self.retry_base_s:
            raise ValueError(
                f"retry_cap_s ({self.retry_cap_s}) must be >= retry_base_s "
                f"({self.retry_base_s})"
            )
        if self.retry_max_attempts < 0:
            raise ValueError(
                f"retry_max_attempts must be >= 0, "
                f"got {self.retry_max_attempts}"
            )
        if not (0.0 <= self.repair_salvage_threshold <= 1.0):
            raise ValueError(
                "repair_salvage_threshold must be in [0, 1], got "
                f"{self.repair_salvage_threshold}"
            )


def drift_magnitude(basis: np.ndarray, current: np.ndarray) -> float:
    """Mean relative cost change over the pairs positive in the basis.

    The same measure the checkpoint rescheduler thresholds on: for each
    message with positive planned cost, ``|new - old| / old``, averaged.
    Pairs appearing from nowhere (zero basis, positive now) count as a
    full unit of drift each.
    """
    basis = np.asarray(basis, dtype=float)
    current = np.asarray(current, dtype=float)
    if basis.shape != current.shape:
        raise ValueError(
            f"basis shape {basis.shape} != current shape {current.shape}"
        )
    positive = basis > 0
    appeared = (~positive) & (current > 0)
    count = int(np.count_nonzero(positive)) + int(np.count_nonzero(appeared))
    if not count:
        return 0.0
    # One pass, no concatenation: the appeared pairs each contribute a
    # unit term, so the mean is (sum of relative terms + #appeared)/count.
    safe = np.where(positive, basis, 1.0)
    rel_sum = float(
        np.sum(np.abs(current - basis) / safe, where=positive, initial=0.0)
    )
    return (rel_sum + float(np.count_nonzero(appeared))) / count


def decide(
    drift: float,
    *,
    config: PolicyConfig,
    reuse_streak: int,
    ticks_since_reschedule: int,
    dirty_fraction: Optional[float] = None,
) -> Tuple[str, str]:
    """``(decision, reason)`` for one tick.

    Parameters
    ----------
    drift:
        Measured drift against the active plan's basis.
    reuse_streak:
        Consecutive reuse ticks ending at the previous tick.
    ticks_since_reschedule:
        Ticks since the session last recomputed a plan from scratch.
    dirty_fraction:
        Fraction of relevant pairs that were repriced (the localisation
        signal; see :func:`repro.adaptive.incremental.dirty_fraction`).
        ``None`` disables the repair tier entirely, reproducing the
        classic three-tier ladder.
    """
    localized = (
        dirty_fraction is not None
        and dirty_fraction <= config.repair_max_dirty_fraction
    )
    if ticks_since_reschedule >= config.max_plan_age_ticks:
        return RESCHEDULE, (
            f"staleness: {ticks_since_reschedule} ticks since the last "
            f"full reschedule >= cap {config.max_plan_age_ticks}"
        )
    if drift >= config.repair_threshold:
        if ticks_since_reschedule < config.min_ticks_between_reschedules:
            return REFINE, (
                f"budget: drift {drift:.3f} demands rescheduling but only "
                f"{ticks_since_reschedule} ticks since the last one "
                f"(minimum {config.min_ticks_between_reschedules})"
            )
        return RESCHEDULE, (
            f"drift {drift:.3f} >= repair threshold "
            f"{config.repair_threshold:g}"
        )
    if drift >= config.refine_threshold:
        if localized:
            return REPAIR, (
                f"drift {drift:.3f} in [{config.refine_threshold:g}, "
                f"{config.repair_threshold:g}) and localised: dirty "
                f"fraction {dirty_fraction:.3f} <= "
                f"{config.repair_max_dirty_fraction:g}"
            )
        if ticks_since_reschedule < config.min_ticks_between_reschedules:
            return REFINE, (
                f"budget: drift {drift:.3f} demands rescheduling but only "
                f"{ticks_since_reschedule} ticks since the last one "
                f"(minimum {config.min_ticks_between_reschedules})"
            )
        return RESCHEDULE, (
            f"drift {drift:.3f} >= refine threshold "
            f"{config.refine_threshold:g}"
        )
    if drift >= config.reuse_threshold:
        if localized:
            return REPAIR, (
                f"drift {drift:.3f} in [{config.reuse_threshold:g}, "
                f"{config.refine_threshold:g}) and localised: dirty "
                f"fraction {dirty_fraction:.3f} <= "
                f"{config.repair_max_dirty_fraction:g}"
            )
        return REFINE, (
            f"drift {drift:.3f} in [{config.reuse_threshold:g}, "
            f"{config.refine_threshold:g})"
        )
    if reuse_streak >= config.max_reuse_ticks:
        return REFINE, (
            f"staleness: {reuse_streak} consecutive reuses >= cap "
            f"{config.max_reuse_ticks}"
        )
    return REUSE, (
        f"drift {drift:.3f} < reuse threshold {config.reuse_threshold:g}"
    )


def backoff_waits(config: PolicyConfig) -> Tuple[float, ...]:
    """The capped exponential wait (seconds) of each retry attempt."""
    return tuple(
        min(config.retry_base_s * config.retry_factor**k, config.retry_cap_s)
        for k in range(config.retry_max_attempts)
    )


def retry_outcome(
    outage_s: float, *, config: PolicyConfig
) -> Tuple[bool, int, float]:
    """``(recovered, attempts, waited_s)`` of backing off a transient fault.

    The runtime waits attempt by attempt until the cumulative wait
    covers the outage (the link is back: the retry succeeds) or the
    attempt budget runs out (the link is declared dead and the
    permanent repair path takes over, having already paid the waits).
    """
    if outage_s < 0:
        raise ValueError(f"outage_s must be >= 0, got {outage_s}")
    waited = 0.0
    for attempts, wait in enumerate(backoff_waits(config), start=1):
        waited += wait
        if waited >= outage_s:
            return True, attempts, waited
    return False, config.retry_max_attempts, waited


def decide_repair(
    salvaged: int, total: int, *, config: PolicyConfig
) -> Tuple[str, str]:
    """``(action, reason)`` after a permanent mid-schedule fault.

    Incremental repair (keep the salvage, reschedule only the residual)
    when enough of the exchange already completed; a full reschedule
    over the survivors when the fault struck too early for salvage to
    be worth anything.
    """
    fraction = salvaged / total if total else 0.0
    if salvaged and fraction >= config.repair_salvage_threshold:
        return REPAIR, (
            f"salvaged {salvaged}/{total} events "
            f"({fraction:.0%} >= {config.repair_salvage_threshold:.0%}): "
            "repairing the residual"
        )
    return FULL_RESCHEDULE, (
        f"salvaged {salvaged}/{total} events "
        f"({fraction:.0%} < {config.repair_salvage_threshold:.0%}): "
        "full reschedule over survivors"
    )
