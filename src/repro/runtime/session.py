"""The online adaptive scheduling runtime.

:class:`AdaptiveSession` is the long-lived component the paper's run-time
story implies but a one-shot scheduler cannot provide: it owns a
directory subscription (any :class:`~repro.directory.service.DirectoryService`
— static, noisy, trace-driven), keeps the active plan in order-based
form, and on every serving tick (one total exchange) measures directory
drift and picks the cheapest adequate response — reuse the plan, repair
it incrementally, or recompute it — under the policy in
:mod:`repro.runtime.policy`.

Robustness guarantees:

* full reschedules answer from a digest-keyed
  :class:`~repro.perf.memo.ScheduleCache` when the cost matrix was seen
  before (sensor-style workloads revisit conditions);
* every scheduler invocation runs under a wall-clock deadline; on
  timeout or exception the session falls back to the ``O(P^2)`` baseline
  caterpillar and keeps serving (fallback results are never cached);
* staleness caps bound how long noisy, low-drift readings can pin the
  session to an old plan.

Every tick emits a structured :class:`~repro.runtime.metrics.TickEvent`
into a :class:`~repro.runtime.metrics.RuntimeMetrics` registry,
including the predicted-vs-executed makespan regret (the plan's promise
under its planning basis versus its re-execution under the costs that
actually materialised — the adaptivity gap of :mod:`repro.sim.replay`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Union

import numpy as np

from repro.adaptive.delta import repair_plan
from repro.adaptive.incremental import dirty_fraction, refine_orders
from repro.core.baseline import schedule_baseline
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import Scheduler, make_scheduler
from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.faults.executor import cut_execution, merge_with_salvaged
from repro.faults.models import (
    Fault,
    apply_fault_to_snapshot,
    apply_fault_to_state,
)
from repro.faults.repair import repair_schedule, split_routes
from repro.model.messages import SizeSpec
from repro.perf.memo import ScheduleCache
from repro.ops.sink import MetricsSink, MultiSink
from repro.runtime.metrics import RuntimeMetrics, TickEvent
from repro.runtime.policy import (
    PolicyConfig,
    REPAIR,
    RESCHEDULE,
    RETRY,
    REFINE,
    REUSE,
    decide,
    decide_repair,
    drift_magnitude,
    retry_outcome,
)
from repro.sim.engine import SendOrders, execute_orders, execute_orders_on_cost
from repro.timing.events import Schedule
from repro.util.rng import RngLike


@dataclass
class _Plan:
    """The active plan in order-based form."""

    orders: SendOrders
    basis_cost: np.ndarray  # the costs the orders were computed/refined for
    predicted_makespan: float  # completion under the basis costs
    #: The plan as an event schedule under the basis costs — the repair
    #: tier patches this in place; ``None`` disables delta repair.
    schedule: Optional[Schedule] = None


@dataclass
class _ServeState:
    """What one serving path produced, before strike recovery."""

    decision: str
    reason: str
    drift: float
    predicted: float
    executed: Schedule
    actual: TotalExchangeProblem
    elapsed: float = 0.0
    evaluations: int = 0
    cache_hit: bool = False
    fallback: bool = False
    undeliverable: int = 0
    relay_tick: bool = False
    dirty: float = 0.0
    repaired_events: int = 0


@dataclass(frozen=True)
class _StrikeOutcome:
    """Recovery from one mid-schedule strike."""

    executed: Schedule
    action: str
    retries: int
    waited: float
    salvaged: int
    resent: int
    latency: float
    undeliverable: int
    detail: str


@dataclass(frozen=True)
class TickResult:
    """One serving tick's outcome: the structured event plus the
    executed schedule (under the tick's actual costs)."""

    event: TickEvent
    schedule: Schedule

    @property
    def decision(self) -> str:
        return self.event.decision


class AdaptiveSession:
    """Serve repeated total exchanges against a drifting directory.

    Parameters
    ----------
    directory:
        The drift feed.  A :class:`~repro.directory.noisy.NoisyDirectory`
        is planned against its noisy snapshots but *executed* against its
        wrapped truth, so measurement error shows up as regret.
    sizes:
        Message sizes: a matrix, or a
        :class:`~repro.model.messages.SizeSpec` materialised once at
        construction (``rng`` seeds it).
    scheduler:
        Registry name (resolved via
        :func:`~repro.core.registry.make_scheduler`) or a bare
        ``problem -> Schedule`` callable.
    policy:
        Tunables; defaults to :class:`~repro.runtime.policy.PolicyConfig`.
    cache:
        Digest-keyed schedule cache; a private one is created when not
        shared explicitly.
    metrics:
        Observability registry; a private one is created by default.
    clock:
        Monotonic-seconds callable used for the scheduler deadline
        (injectable for deterministic tests).
    force_timeout_ticks:
        Chaos hook: tick indices at which the scheduler invocation is
        treated as having blown its deadline, exercising the baseline
        fallback path deterministically (used by ``serve --smoke`` and
        the tests; harmless in production use).
    """

    def __init__(
        self,
        directory: DirectoryService,
        sizes: Union[np.ndarray, SizeSpec],
        *,
        scheduler: Union[str, Scheduler] = "openshop",
        policy: Optional[PolicyConfig] = None,
        cache: Optional[ScheduleCache] = None,
        metrics: Optional[RuntimeMetrics] = None,
        sink: Optional[MetricsSink] = None,
        clock: Callable[[], float] = time.perf_counter,
        force_timeout_ticks: Iterable[int] = (),
        rng: RngLike = None,
    ):
        self._directory = directory
        if isinstance(sizes, SizeSpec):
            sizes = sizes.sizes(directory.num_procs, rng=rng)
        self._sizes = np.asarray(sizes, dtype=float)
        if isinstance(scheduler, str):
            self._scheduler_name = scheduler
            self._scheduler = make_scheduler(scheduler)
        else:
            self._scheduler_name = getattr(
                scheduler, "__qualname__", repr(scheduler)
            )
            self._scheduler = scheduler
        self.policy = policy if policy is not None else PolicyConfig()
        self.cache = cache if cache is not None else ScheduleCache()
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        # Every tick event goes through one MetricsSink publish; extra
        # consumers (ops store, SLO monitor) fan out next to the
        # in-memory aggregates.
        self._sink: MetricsSink = (
            MultiSink([self.metrics, sink]) if sink is not None
            else self.metrics
        )
        self._clock = clock
        self._force_timeout_ticks = frozenset(
            int(t) for t in force_timeout_ticks
        )

        self._plan: Optional[_Plan] = None
        self._tick_index = 0
        self._reuse_streak = 0
        self._ticks_since_reschedule = 0
        self.last_schedule: Optional[Schedule] = None

        # Degraded mode: directories that inject faults expose
        # availability masks (fault_view) and mid-schedule strikes
        # (striking_between) — detected by duck-typing so any
        # DirectoryService composes.
        self._fault_view_fn = getattr(directory, "fault_view", None)
        self._striking_fn = getattr(directory, "striking_between", None)
        n = directory.num_procs
        # Links the session gave up on after exhausting transient
        # retries; overrides profile recovery (a declared-dead link
        # stays routed-around even if it silently comes back).
        self._declared_dead = np.zeros((n, n), dtype=bool)
        self._last_fault_scan = float("-inf")
        self._seen_faults: set = set()

        # Schedulers that maintain auxiliary state (the hierarchical
        # scheduler's cluster assignments) share it through this
        # session's cache — detected by duck-typing, like the fault
        # hooks above.
        bind = getattr(self._scheduler, "bind_cluster_cache", None)
        if bind is not None:
            bind(self.cache)

    # -- directory views ----------------------------------------------------

    @property
    def scheduler_name(self) -> str:
        return self._scheduler_name

    @property
    def tick_index(self) -> int:
        """Index the *next* tick will carry."""
        return self._tick_index

    def _planning_problem(
        self, snapshot: DirectorySnapshot, sizes: np.ndarray
    ) -> TotalExchangeProblem:
        return TotalExchangeProblem.from_snapshot(snapshot, sizes)

    def _true_snapshot(
        self, planning_snapshot: DirectorySnapshot
    ) -> DirectorySnapshot:
        """The directory's noise-free view when it exposes one
        (``true_snapshot``), else the planning view."""
        true_snapshot = getattr(self._directory, "true_snapshot", None)
        if true_snapshot is None:
            return planning_snapshot
        return true_snapshot()

    def _true_problem(
        self,
        planning: TotalExchangeProblem,
        planning_snapshot: DirectorySnapshot,
        sizes: np.ndarray,
    ) -> TotalExchangeProblem:
        """The execution-time instance under the true costs."""
        true_snapshot = getattr(self._directory, "true_snapshot", None)
        if true_snapshot is None:
            return planning
        return TotalExchangeProblem.from_snapshot(true_snapshot(), sizes)

    # -- scheduling with deadline + fallback --------------------------------

    def _invoke_scheduler(self, problem: TotalExchangeProblem):
        """``(schedule, elapsed_s, fallback, detail)`` for one guarded
        scheduler invocation (never raises; falls back to baseline)."""
        deadline = self.policy.scheduler_deadline_s
        injected = self._tick_index in self._force_timeout_ticks
        elapsed = 0.0
        schedule: Optional[Schedule] = None
        detail = ""
        if not injected:
            started = self._clock()
            try:
                schedule = self._scheduler(problem)
            except Exception as exc:  # noqa: BLE001 — serving must not die
                detail = f"scheduler raised {type(exc).__name__}: {exc}"
                schedule = None
            elapsed = self._clock() - started
            if schedule is not None and deadline is not None:
                if elapsed > deadline:
                    detail = (
                        f"deadline: {elapsed:.3f}s > {deadline:g}s budget"
                    )
                    schedule = None
        else:
            detail = "injected timeout (chaos hook)"
        if schedule is not None:
            return schedule, elapsed, False, ""
        started = self._clock()
        fallback_schedule = schedule_baseline(problem)
        elapsed += self._clock() - started
        return fallback_schedule, elapsed, True, detail

    # -- the serving loop ---------------------------------------------------

    def _serve_planned(
        self,
        snapshot: DirectorySnapshot,
        sizes: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> "_ServeState":
        """The reuse/refine/reschedule path (all demanded links usable).

        ``mask`` is the availability matrix under degradation (dead
        nodes): it keys the schedule cache so a repaired-world lookup
        can never answer with a pre-failure plan.
        """
        planning = self._planning_problem(snapshot, sizes)
        cache_hit = False
        fallback = False
        elapsed = 0.0
        evaluations = 0
        dirty = 0.0
        repaired_events = 0

        if self._plan is None:
            decision, reason = RESCHEDULE, "cold start: no active plan"
            drift = float("inf")
        else:
            drift = drift_magnitude(self._plan.basis_cost, planning.cost)
            dirty = dirty_fraction(
                self._plan.basis_cost,
                planning.cost,
                rtol=self.policy.pair_change_rtol,
            )
            decision, reason = decide(
                drift,
                config=self.policy,
                reuse_streak=self._reuse_streak,
                ticks_since_reschedule=self._ticks_since_reschedule,
                # The repair tier needs an event schedule to patch;
                # plans without one fall back to the three-tier ladder.
                dirty_fraction=(
                    dirty if self._plan.schedule is not None else None
                ),
            )
        if self._tick_index in self._force_timeout_ticks:
            decision = RESCHEDULE
            reason = "chaos hook: forced reschedule with injected timeout"

        if decision == REPAIR:
            started = self._clock()
            result = repair_plan(
                self._plan.schedule,
                self._plan.basis_cost,
                planning,
                scheduler=self._scheduler,
            )
            elapsed = self._clock() - started
            if result is None:
                decision = RESCHEDULE
                reason += "; delta repair failed: full reschedule"
            else:
                repaired_events = result.reinserted
                # The splice preserves the plan's per-port orders, so
                # the plan stays anchored at its last reschedule or
                # refine: same orders, same basis, same repairable
                # schedule.  Drift therefore keeps accumulating against
                # the true planning basis and the ladder escalates to
                # refine/reschedule once repairs alone would go stale —
                # rebasing here instead would let every repair restart
                # the drift clock and compound its own quality loss
                # tick over tick.  Only the serving prediction moves.
                self._plan = _Plan(
                    orders=self._plan.orders,
                    basis_cost=self._plan.basis_cost,
                    predicted_makespan=result.completion_time,
                    schedule=self._plan.schedule,
                )
                self._ticks_since_reschedule += 1
                self._reuse_streak = 0

        if decision == RESCHEDULE:
            schedule = None
            if self._tick_index not in self._force_timeout_ticks:
                schedule = self.cache.lookup(
                    planning,
                    self._scheduler,
                    name=self._scheduler_name,
                    mask=mask,
                )
            if schedule is not None:
                cache_hit = True
            else:
                schedule, elapsed, fallback, detail = self._invoke_scheduler(
                    planning
                )
                if fallback:
                    reason += f"; fallback to baseline ({detail})"
                else:
                    self.cache.put(
                        planning,
                        self._scheduler,
                        schedule,
                        name=self._scheduler_name,
                        mask=mask,
                    )
            self._plan = _Plan(
                orders=schedule.send_orders(),
                basis_cost=planning.cost,
                predicted_makespan=schedule.completion_time,
                schedule=schedule,
            )
            self._ticks_since_reschedule = 0
            self._reuse_streak = 0
        elif decision == REFINE:
            started = self._clock()
            result = refine_orders(
                self._plan.orders,
                planning,
                old_problem=TotalExchangeProblem(
                    cost=self._plan.basis_cost
                ),
                max_passes=self.policy.refine_passes,
                evaluation="delta",
            )
            elapsed = self._clock() - started
            evaluations = result.evaluations
            self._plan = _Plan(
                orders=result.orders,
                basis_cost=planning.cost,
                predicted_makespan=result.completion_time,
                schedule=result.schedule,
            )
            self._ticks_since_reschedule += 1
            self._reuse_streak = 0
        elif decision == REUSE:
            self._ticks_since_reschedule += 1
            self._reuse_streak += 1

        # Execute the active plan under the costs that actually
        # materialised (the directory's truth when it exposes one).
        actual = self._true_problem(planning, snapshot, sizes)
        executed = execute_orders(actual, self._plan.orders, validate=False)
        return _ServeState(
            decision=decision,
            reason=reason,
            drift=drift,
            predicted=self._plan.predicted_makespan,
            executed=executed,
            actual=actual,
            elapsed=elapsed,
            evaluations=evaluations,
            cache_hit=cache_hit,
            fallback=fallback,
            dirty=dirty,
            repaired_events=repaired_events,
        )

    def _serve_degraded_relay(
        self,
        snapshot: DirectorySnapshot,
        sizes: np.ndarray,
        alive: np.ndarray,
        link_ok: np.ndarray,
    ) -> "_ServeState":
        """Serve a tick on which demanded links are down.

        The plan comes from the repair layer: direct pairs over
        surviving links, 2-hop relays for cut pairs, the session's own
        scheduler for the relay-free residual.  Relay plans are not
        order-reusable (a relay leg's cost depends on its payload, not
        the pair's demand), so relay ticks always reschedule — answered
        from the mask-keyed cache when conditions repeat.
        """
        routes = split_routes(snapshot, sizes, alive=alive, link_ok=link_ok)
        planning = self._planning_problem(snapshot, sizes)
        decision = RESCHEDULE
        reason = (
            f"degraded: {len(routes.relayed)} pair(s) relayed, "
            f"{len(routes.unreachable)} unreachable, "
            f"{len(routes.lost)} lost to dead nodes"
        )
        drift = (
            drift_magnitude(self._plan.basis_cost, planning.cost)
            if self._plan is not None
            else float("inf")
        )
        cache_hit = False
        fallback = False
        elapsed = 0.0
        planned_schedule = self.cache.lookup(
            planning, self._scheduler, name=self._scheduler_name, mask=link_ok
        )
        if planned_schedule is not None:
            cache_hit = True
        else:
            started = self._clock()
            try:
                planned_schedule = repair_schedule(
                    snapshot, sizes,
                    alive=alive, link_ok=link_ok,
                    scheduler=self._scheduler, routes=routes,
                ).schedule
            except Exception as exc:  # noqa: BLE001 — serving must not die
                fallback = True
                reason += (
                    f"; scheduler raised {type(exc).__name__}: "
                    "baseline routing"
                )
                planned_schedule = repair_schedule(
                    snapshot, sizes,
                    alive=alive, link_ok=link_ok,
                    scheduler=schedule_baseline, routes=routes,
                ).schedule
            elapsed = self._clock() - started
            if not fallback:
                self.cache.put(
                    planning,
                    self._scheduler,
                    planned_schedule,
                    name=self._scheduler_name,
                    mask=link_ok,
                )

        # Re-execute the same routes under the true costs.  The relay
        # engine re-derives dispatch order deterministically, so with a
        # noise-free directory executed == planned exactly.
        true_snap = self._true_snapshot(snapshot)
        executed = repair_schedule(
            true_snap, sizes,
            alive=alive, link_ok=link_ok,
            scheduler=schedule_baseline if fallback else self._scheduler,
            routes=routes,
        ).schedule
        actual = self._true_problem(planning, snapshot, sizes)

        if routes.needs_relays:
            self._plan = None
        else:
            self._plan = _Plan(
                orders=planned_schedule.send_orders(),
                basis_cost=planning.cost,
                predicted_makespan=planned_schedule.completion_time,
                schedule=planned_schedule,
            )
        self._ticks_since_reschedule = 0
        self._reuse_streak = 0
        return _ServeState(
            decision=decision,
            reason=reason,
            drift=drift,
            predicted=planned_schedule.completion_time,
            executed=executed,
            actual=actual,
            elapsed=elapsed,
            cache_hit=cache_hit,
            fallback=fallback,
            undeliverable=len(routes.unreachable) + len(routes.lost),
            relay_tick=routes.needs_relays,
        )

    def _recover_from_strike(
        self,
        strike: Fault,
        state: "_ServeState",
        snapshot: DirectorySnapshot,
        sizes: np.ndarray,
        alive: np.ndarray,
        link_ok: np.ndarray,
    ) -> Optional["_StrikeOutcome"]:
        """Salvage + retry/repair after a mid-schedule fault.

        Returns ``None`` when the fault landed after the exchange had
        already completed (it becomes standing directory state next
        tick, nothing to recover now).
        """
        partial = cut_execution(state.executed, strike.at_event)
        if not partial.interrupted:
            return None
        total = partial.salvaged_events + partial.cancelled_events
        alive_after, link_after = apply_fault_to_state(
            alive, link_ok, strike
        )
        retries = 0
        waited = 0.0
        declared_dead = False
        if strike.transient and not state.relay_tick:
            recovered, retries, waited = retry_outcome(
                strike.duration, config=self.policy
            )
            if recovered:
                # The outage was outwaited: resume the interrupted
                # dispatch orders under the same actual costs.
                resumed = execute_orders_on_cost(
                    state.actual.cost,
                    partial.residual_orders,
                    sizes=state.actual.sizes,
                    validate=False,
                )
                executed = merge_with_salvaged(
                    partial.salvaged, resumed,
                    offset=partial.strike_time + waited,
                )
                return _StrikeOutcome(
                    executed=executed,
                    action=RETRY,
                    retries=retries,
                    waited=waited,
                    salvaged=partial.salvaged_events,
                    resent=partial.cancelled_events,
                    latency=0.0,
                    undeliverable=0,
                    detail=(
                        f"{strike.describe()} struck mid-schedule; retry "
                        f"{retries} succeeded after {waited:g}s backoff"
                    ),
                )
            declared_dead = True
            self._declared_dead[strike.src, strike.dst] = True
            if strike.symmetric:
                self._declared_dead[strike.dst, strike.src] = True

        action, why = decide_repair(
            partial.salvaged_events, total, config=self.policy
        )
        delivered = partial.delivered if action == REPAIR else None
        true_after = apply_fault_to_snapshot(
            self._true_snapshot(snapshot), strike
        )
        started = self._clock()
        try:
            result = repair_schedule(
                true_after, sizes,
                delivered=delivered, alive=alive_after, link_ok=link_after,
                scheduler=self._scheduler,
            )
        except Exception:  # noqa: BLE001 — serving must not die
            result = repair_schedule(
                true_after, sizes,
                delivered=delivered, alive=alive_after, link_ok=link_after,
                scheduler=schedule_baseline,
            )
        latency = self._clock() - started
        executed = merge_with_salvaged(
            partial.salvaged, result.schedule,
            offset=partial.strike_time + waited,
        )
        prefix = f"{strike.describe()} struck mid-schedule"
        if declared_dead:
            prefix += (
                f"; {retries} retries ({waited:g}s) exhausted, "
                "link declared dead"
            )
        return _StrikeOutcome(
            executed=executed,
            action=action,
            retries=retries,
            waited=waited,
            salvaged=partial.salvaged_events if action == REPAIR else 0,
            resent=result.resent,
            latency=latency,
            undeliverable=result.undeliverable,
            detail=f"{prefix}; {why}",
        )

    def _count_new_faults(self, now: float, strikes) -> int:
        """Faults first observed this tick (each counts exactly once)."""
        profile = getattr(self._directory, "profile", None)
        if profile is None:
            return 0
        new = 0
        striking = set(strikes)
        for fault in getattr(profile, "faults", ()):
            if fault in self._seen_faults:
                continue
            if fault.visible_at(now) or fault in striking:
                self._seen_faults.add(fault)
                new += 1
        return new

    def tick(self, dt: float = 0.0) -> TickResult:
        """Serve one total exchange; advance the directory by ``dt`` first."""
        if dt:
            self._directory.advance(dt)
        now = self._directory.time
        snapshot = self._directory.snapshot()

        view = (
            self._fault_view_fn() if self._fault_view_fn is not None else None
        )
        strikes = ()
        if self._striking_fn is not None:
            strikes = self._striking_fn(self._last_fault_scan, now)
        self._last_fault_scan = now
        faults_seen = self._count_new_faults(now, strikes)

        n = self._sizes.shape[0]
        if view is not None:
            alive = view.alive
            link_ok = view.link_ok & ~self._declared_dead
        else:
            alive = np.ones(n, dtype=bool)
            link_ok = np.ones((n, n), dtype=bool)

        demand = self._sizes > 0
        np.fill_diagonal(demand, False)
        blocked = demand & ~link_ok
        surviving_blocked = blocked & np.outer(alive, alive)
        degraded = bool(blocked.any() or not alive.all())

        sizes = self._sizes
        mask = None
        if degraded:
            mask = link_ok
            if not alive.all():
                # Dead endpoints leave the demand matrix entirely.
                sizes = np.where(np.outer(alive, alive), self._sizes, 0.0)

        if surviving_blocked.any():
            state = self._serve_degraded_relay(snapshot, sizes, alive, link_ok)
        else:
            state = self._serve_planned(snapshot, sizes, mask)

        repair_action = ""
        retries = 0
        waited = 0.0
        salvaged = 0
        resent = 0
        repair_latency = 0.0
        undeliverable = state.undeliverable
        executed = state.executed
        reason = state.reason
        if strikes:
            outcome = self._recover_from_strike(
                strikes[0], state, snapshot, sizes, alive, link_ok
            )
            if outcome is not None:
                degraded = True
                executed = outcome.executed
                repair_action = outcome.action
                retries = outcome.retries
                waited = outcome.waited
                salvaged = outcome.salvaged
                resent = outcome.resent
                repair_latency = outcome.latency
                undeliverable = max(undeliverable, outcome.undeliverable)
                reason += f"; {outcome.detail}"
                # The world changed mid-exchange: whatever plan was
                # active no longer matches it.
                self._plan = None
                self._reuse_streak = 0

        event = TickEvent(
            tick=self._tick_index,
            time=float(now),
            decision=state.decision,
            reason=reason,
            drift=state.drift if np.isfinite(state.drift) else -1.0,
            predicted_makespan=state.predicted,
            executed_makespan=executed.completion_time,
            regret=executed.completion_time - state.predicted,
            scheduler_elapsed=state.elapsed,
            refine_evaluations=state.evaluations,
            cache_hit=state.cache_hit,
            fallback=state.fallback,
            degraded=degraded,
            faults_seen=faults_seen,
            repair=repair_action,
            retries=retries,
            backoff_wait_s=waited,
            salvaged_events=salvaged,
            resent_events=resent,
            repair_latency_s=repair_latency,
            undeliverable=undeliverable,
            dirty_fraction=state.dirty,
            repaired_events=state.repaired_events,
        )
        self._sink.emit(event)
        self.last_schedule = executed
        self._tick_index += 1
        return TickResult(event=event, schedule=executed)

    def run(self, ticks: int, *, dt: float = 1.0) -> List[TickResult]:
        """Serve ``ticks`` exchanges, advancing the directory ``dt`` each."""
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        return [self.tick(dt=dt) for _ in range(ticks)]

    def summary(self) -> dict:
        """The metrics registry's headline numbers."""
        return self.metrics.summary()
