"""The online adaptive scheduling runtime.

:class:`AdaptiveSession` is the long-lived component the paper's run-time
story implies but a one-shot scheduler cannot provide: it owns a
directory subscription (any :class:`~repro.directory.service.DirectoryService`
— static, noisy, trace-driven), keeps the active plan in order-based
form, and on every serving tick (one total exchange) measures directory
drift and picks the cheapest adequate response — reuse the plan, repair
it incrementally, or recompute it — under the policy in
:mod:`repro.runtime.policy`.

Robustness guarantees:

* full reschedules answer from a digest-keyed
  :class:`~repro.perf.memo.ScheduleCache` when the cost matrix was seen
  before (sensor-style workloads revisit conditions);
* every scheduler invocation runs under a wall-clock deadline; on
  timeout or exception the session falls back to the ``O(P^2)`` baseline
  caterpillar and keeps serving (fallback results are never cached);
* staleness caps bound how long noisy, low-drift readings can pin the
  session to an old plan.

Every tick emits a structured :class:`~repro.runtime.metrics.TickEvent`
into a :class:`~repro.runtime.metrics.RuntimeMetrics` registry,
including the predicted-vs-executed makespan regret (the plan's promise
under its planning basis versus its re-execution under the costs that
actually materialised — the adaptivity gap of :mod:`repro.sim.replay`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Union

import numpy as np

from repro.adaptive.incremental import refine_orders
from repro.core.baseline import schedule_baseline
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import Scheduler, make_scheduler
from repro.directory.service import DirectoryService
from repro.model.messages import SizeSpec
from repro.perf.memo import ScheduleCache
from repro.runtime.metrics import RuntimeMetrics, TickEvent
from repro.runtime.policy import (
    PolicyConfig,
    RESCHEDULE,
    REFINE,
    REUSE,
    decide,
    drift_magnitude,
)
from repro.sim.engine import SendOrders, execute_orders
from repro.timing.events import Schedule
from repro.util.rng import RngLike


@dataclass
class _Plan:
    """The active plan in order-based form."""

    orders: SendOrders
    basis_cost: np.ndarray  # the costs the orders were computed/refined for
    predicted_makespan: float  # completion under the basis costs


@dataclass(frozen=True)
class TickResult:
    """One serving tick's outcome: the structured event plus the
    executed schedule (under the tick's actual costs)."""

    event: TickEvent
    schedule: Schedule

    @property
    def decision(self) -> str:
        return self.event.decision


class AdaptiveSession:
    """Serve repeated total exchanges against a drifting directory.

    Parameters
    ----------
    directory:
        The drift feed.  A :class:`~repro.directory.noisy.NoisyDirectory`
        is planned against its noisy snapshots but *executed* against its
        wrapped truth, so measurement error shows up as regret.
    sizes:
        Message sizes: a matrix, or a
        :class:`~repro.model.messages.SizeSpec` materialised once at
        construction (``rng`` seeds it).
    scheduler:
        Registry name (resolved via
        :func:`~repro.core.registry.make_scheduler`) or a bare
        ``problem -> Schedule`` callable.
    policy:
        Tunables; defaults to :class:`~repro.runtime.policy.PolicyConfig`.
    cache:
        Digest-keyed schedule cache; a private one is created when not
        shared explicitly.
    metrics:
        Observability registry; a private one is created by default.
    clock:
        Monotonic-seconds callable used for the scheduler deadline
        (injectable for deterministic tests).
    force_timeout_ticks:
        Chaos hook: tick indices at which the scheduler invocation is
        treated as having blown its deadline, exercising the baseline
        fallback path deterministically (used by ``serve --smoke`` and
        the tests; harmless in production use).
    """

    def __init__(
        self,
        directory: DirectoryService,
        sizes: Union[np.ndarray, SizeSpec],
        *,
        scheduler: Union[str, Scheduler] = "openshop",
        policy: Optional[PolicyConfig] = None,
        cache: Optional[ScheduleCache] = None,
        metrics: Optional[RuntimeMetrics] = None,
        clock: Callable[[], float] = time.perf_counter,
        force_timeout_ticks: Iterable[int] = (),
        rng: RngLike = None,
    ):
        self._directory = directory
        if isinstance(sizes, SizeSpec):
            sizes = sizes.sizes(directory.num_procs, rng=rng)
        self._sizes = np.asarray(sizes, dtype=float)
        if isinstance(scheduler, str):
            self._scheduler_name = scheduler
            self._scheduler = make_scheduler(scheduler)
        else:
            self._scheduler_name = getattr(
                scheduler, "__qualname__", repr(scheduler)
            )
            self._scheduler = scheduler
        self.policy = policy if policy is not None else PolicyConfig()
        self.cache = cache if cache is not None else ScheduleCache()
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self._clock = clock
        self._force_timeout_ticks = frozenset(
            int(t) for t in force_timeout_ticks
        )

        self._plan: Optional[_Plan] = None
        self._tick_index = 0
        self._reuse_streak = 0
        self._ticks_since_reschedule = 0
        self.last_schedule: Optional[Schedule] = None

    # -- directory views ----------------------------------------------------

    @property
    def scheduler_name(self) -> str:
        return self._scheduler_name

    @property
    def tick_index(self) -> int:
        """Index the *next* tick will carry."""
        return self._tick_index

    def _planning_problem(self) -> TotalExchangeProblem:
        return TotalExchangeProblem.from_snapshot(
            self._directory.snapshot(), self._sizes
        )

    def _true_problem(
        self, planning: TotalExchangeProblem
    ) -> TotalExchangeProblem:
        """The execution-time instance: the directory's noise-free view
        when it exposes one (``true_snapshot``), else the planning view."""
        true_snapshot = getattr(self._directory, "true_snapshot", None)
        if true_snapshot is None:
            return planning
        return TotalExchangeProblem.from_snapshot(
            true_snapshot(), self._sizes
        )

    # -- scheduling with deadline + fallback --------------------------------

    def _invoke_scheduler(self, problem: TotalExchangeProblem):
        """``(schedule, elapsed_s, fallback, detail)`` for one guarded
        scheduler invocation (never raises; falls back to baseline)."""
        deadline = self.policy.scheduler_deadline_s
        injected = self._tick_index in self._force_timeout_ticks
        elapsed = 0.0
        schedule: Optional[Schedule] = None
        detail = ""
        if not injected:
            started = self._clock()
            try:
                schedule = self._scheduler(problem)
            except Exception as exc:  # noqa: BLE001 — serving must not die
                detail = f"scheduler raised {type(exc).__name__}: {exc}"
                schedule = None
            elapsed = self._clock() - started
            if schedule is not None and deadline is not None:
                if elapsed > deadline:
                    detail = (
                        f"deadline: {elapsed:.3f}s > {deadline:g}s budget"
                    )
                    schedule = None
        else:
            detail = "injected timeout (chaos hook)"
        if schedule is not None:
            return schedule, elapsed, False, ""
        started = self._clock()
        fallback_schedule = schedule_baseline(problem)
        elapsed += self._clock() - started
        return fallback_schedule, elapsed, True, detail

    # -- the serving loop ---------------------------------------------------

    def tick(self, dt: float = 0.0) -> TickResult:
        """Serve one total exchange; advance the directory by ``dt`` first."""
        if dt:
            self._directory.advance(dt)
        planning = self._planning_problem()
        now = self._directory.time

        cache_hit = False
        fallback = False
        elapsed = 0.0
        evaluations = 0

        if self._plan is None:
            decision, reason = RESCHEDULE, "cold start: no active plan"
            drift = float("inf")
        else:
            drift = drift_magnitude(self._plan.basis_cost, planning.cost)
            decision, reason = decide(
                drift,
                config=self.policy,
                reuse_streak=self._reuse_streak,
                ticks_since_reschedule=self._ticks_since_reschedule,
            )
        if self._tick_index in self._force_timeout_ticks:
            decision = RESCHEDULE
            reason = "chaos hook: forced reschedule with injected timeout"

        if decision == RESCHEDULE:
            schedule = None
            if self._tick_index not in self._force_timeout_ticks:
                schedule = self.cache.lookup(
                    planning, self._scheduler, name=self._scheduler_name
                )
            if schedule is not None:
                cache_hit = True
            else:
                schedule, elapsed, fallback, detail = self._invoke_scheduler(
                    planning
                )
                if fallback:
                    reason += f"; fallback to baseline ({detail})"
                else:
                    self.cache.put(
                        planning,
                        self._scheduler,
                        schedule,
                        name=self._scheduler_name,
                    )
            self._plan = _Plan(
                orders=schedule.send_orders(),
                basis_cost=planning.cost,
                predicted_makespan=schedule.completion_time,
            )
            self._ticks_since_reschedule = 0
            self._reuse_streak = 0
        elif decision == REFINE:
            started = self._clock()
            result = refine_orders(
                self._plan.orders,
                planning,
                old_problem=TotalExchangeProblem(
                    cost=self._plan.basis_cost
                ),
                max_passes=self.policy.refine_passes,
            )
            elapsed = self._clock() - started
            evaluations = result.evaluations
            self._plan = _Plan(
                orders=result.orders,
                basis_cost=planning.cost,
                predicted_makespan=result.completion_time,
            )
            self._ticks_since_reschedule += 1
            self._reuse_streak = 0
        else:  # REUSE
            self._ticks_since_reschedule += 1
            self._reuse_streak += 1

        # Execute the active plan under the costs that actually
        # materialised (the directory's truth when it exposes one).
        actual = self._true_problem(planning)
        executed = execute_orders(actual, self._plan.orders, validate=False)
        predicted = self._plan.predicted_makespan

        event = TickEvent(
            tick=self._tick_index,
            time=float(now),
            decision=decision,
            reason=reason,
            drift=drift if np.isfinite(drift) else -1.0,
            predicted_makespan=predicted,
            executed_makespan=executed.completion_time,
            regret=executed.completion_time - predicted,
            scheduler_elapsed=elapsed,
            refine_evaluations=evaluations,
            cache_hit=cache_hit,
            fallback=fallback,
        )
        self.metrics.record_tick(event)
        self.last_schedule = executed
        self._tick_index += 1
        return TickResult(event=event, schedule=executed)

    def run(self, ticks: int, *, dt: float = 1.0) -> List[TickResult]:
        """Serve ``ticks`` exchanges, advancing the directory ``dt`` each."""
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        return [self.tick(dt=dt) for _ in range(ticks)]

    def summary(self) -> dict:
        """The metrics registry's headline numbers."""
        return self.metrics.summary()
