"""Schedule statistics and comparison reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule
from repro.util.tables import format_table


@dataclass(frozen=True)
class ProcessorStats:
    """One processor's view of a schedule."""

    proc: int
    send_busy: float
    recv_busy: float
    send_idle: float
    first_start: float
    last_finish: float

    @property
    def send_utilisation(self) -> float:
        """Busy fraction of the sender port up to its last finish."""
        span = self.last_finish
        return self.send_busy / span if span > 0 else 1.0


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate statistics of a schedule."""

    completion_time: float
    total_events: int
    total_busy: float
    mean_utilisation: float
    per_processor: Tuple[ProcessorStats, ...]

    def processor(self, proc: int) -> ProcessorStats:
        return self.per_processor[proc]


def analyze_schedule(schedule: Schedule) -> ScheduleStats:
    """Compute per-processor and aggregate statistics."""
    per_proc: List[ProcessorStats] = []
    for proc in range(schedule.num_procs):
        send_busy, recv_busy = schedule.busy_time(proc)
        sends = schedule.sender_events(proc)
        receives = schedule.receiver_events(proc)
        touching = [e for e in (*sends, *receives) if e.duration > 0]
        first = min((e.start for e in touching), default=0.0)
        last = max((e.finish for e in touching), default=0.0)
        per_proc.append(
            ProcessorStats(
                proc=proc,
                send_busy=send_busy,
                recv_busy=recv_busy,
                send_idle=schedule.idle_time(proc),
                first_start=first,
                last_finish=last,
            )
        )
    real_events = [e for e in schedule if e.duration > 0]
    return ScheduleStats(
        completion_time=schedule.completion_time,
        total_events=len(real_events),
        total_busy=sum(e.duration for e in real_events),
        mean_utilisation=schedule.utilisation(),
        per_processor=tuple(per_proc),
    )


def bottleneck_processor(
    problem: TotalExchangeProblem,
) -> Tuple[int, str, float]:
    """The processor and port realising the lower bound.

    Returns ``(proc, "send" | "recv", busy_seconds)`` — whichever port's
    total work equals ``t_lb``.
    """
    send = problem.send_totals()
    recv = problem.recv_totals()
    send_proc = int(send.argmax())
    recv_proc = int(recv.argmax())
    if send[send_proc] >= recv[recv_proc]:
        return send_proc, "send", float(send[send_proc])
    return recv_proc, "recv", float(recv[recv_proc])


def compare_schedules(
    schedules: Mapping[str, Schedule],
    *,
    lower_bound: Optional[float] = None,
    precision: int = 3,
) -> str:
    """Side-by-side comparison table for schedules of one instance."""
    rows = []
    for name, schedule in schedules.items():
        stats = analyze_schedule(schedule)
        row = [
            name,
            stats.completion_time,
            stats.mean_utilisation,
            max(p.send_idle for p in stats.per_processor)
            if stats.per_processor
            else 0.0,
        ]
        if lower_bound is not None:
            row.append(
                stats.completion_time / lower_bound if lower_bound > 0 else 1.0
            )
        rows.append(row)
    headers = ["schedule", "completion", "utilisation", "max sender idle"]
    if lower_bound is not None:
        headers.append("ratio to LB")
    return format_table(headers, rows, precision=precision)
