"""Schedule analysis: utilisation, gaps, bottlenecks, comparisons.

Post-mortem tooling over :class:`~repro.timing.events.Schedule` objects:
where did the time go, which processor bounds the makespan, how do two
schedules of the same instance differ.  Used by examples and benches to
explain *why* an algorithm wins, not just that it does.
"""

from repro.analysis.explain import ScheduleExplanation, explain_schedule
from repro.analysis.stats import (
    ProcessorStats,
    ScheduleStats,
    analyze_schedule,
    bottleneck_processor,
    compare_schedules,
)

__all__ = [
    "ProcessorStats",
    "ScheduleExplanation",
    "ScheduleStats",
    "analyze_schedule",
    "bottleneck_processor",
    "compare_schedules",
    "explain_schedule",
]
