"""Narrative diagnosis of a schedule: where does the makespan come from?

``explain_schedule`` combines the lower-bound analysis (which port is
the intrinsic bottleneck), the realised critical path (which chain of
events actually sets the finish time), and the gap accounting (who idles
waiting for whom) into one report — the questions a developer asks when
an algorithm underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.stats import analyze_schedule, bottleneck_processor
from repro.core.problem import TotalExchangeProblem
from repro.timing.depgraph import critical_path, dependence_graph
from repro.timing.events import Schedule


@dataclass(frozen=True)
class ScheduleExplanation:
    """Structured diagnosis of one schedule against its instance."""

    completion_time: float
    lower_bound: float
    ratio: float
    bottleneck_proc: int
    bottleneck_port: str
    bottleneck_busy: float
    critical_events: Tuple[Tuple[int, int], ...]
    critical_length: float
    worst_idle_proc: int
    worst_idle: float

    @property
    def is_port_bound(self) -> bool:
        """True when the makespan equals the intrinsic port bound."""
        return self.completion_time <= self.lower_bound * (1 + 1e-9)

    def summary(self) -> str:
        """A few sentences a human can act on."""
        lines = [
            f"completion {self.completion_time:.4g}s = "
            f"{self.ratio:.3f} x the lower bound ({self.lower_bound:.4g}s).",
            f"intrinsic bottleneck: P{self.bottleneck_proc} "
            f"{self.bottleneck_port} port "
            f"({self.bottleneck_busy:.4g}s of unavoidable work).",
        ]
        if self.is_port_bound:
            lines.append(
                "the schedule is port-bound: no reordering can finish "
                "earlier on this instance."
            )
        else:
            chain = " -> ".join(
                f"P{src}->P{dst}" for src, dst in self.critical_events[:6]
            )
            if len(self.critical_events) > 6:
                chain += " -> ..."
            lines.append(
                f"the realised critical path ({len(self.critical_events)} "
                f"events, {self.critical_length:.4g}s) is {chain}."
            )
            lines.append(
                f"worst sender idle: P{self.worst_idle_proc} waits "
                f"{self.worst_idle:.4g}s in total — the slack a better "
                "order could reclaim."
            )
        return "\n".join(lines)


def explain_schedule(
    problem: TotalExchangeProblem, schedule: Schedule
) -> ScheduleExplanation:
    """Diagnose ``schedule`` against its instance."""
    lb = problem.lower_bound()
    completion = schedule.completion_time
    proc, port, busy = bottleneck_processor(problem)

    graph = dependence_graph(schedule)
    path = critical_path(graph, problem.cost)
    path_length = float(
        sum(problem.cost[src, dst] for src, dst in path)
    )

    stats = analyze_schedule(schedule)
    if stats.per_processor:
        worst = max(stats.per_processor, key=lambda p: p.send_idle)
        worst_proc, worst_idle = worst.proc, worst.send_idle
    else:
        worst_proc, worst_idle = 0, 0.0

    return ScheduleExplanation(
        completion_time=completion,
        lower_bound=lb,
        ratio=completion / lb if lb > 0 else 1.0,
        bottleneck_proc=proc,
        bottleneck_port=port,
        bottleneck_busy=busy,
        critical_events=tuple(path),
        critical_length=path_length,
        worst_idle_proc=worst_proc,
        worst_idle=worst_idle,
    )
