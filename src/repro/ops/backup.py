"""Periodic daemon state backups, with retention and verified restore.

A backup is one daemon state payload (the same
``{"format": "repro/daemon-state", "version": 1, "tenants": [...]}``
document :meth:`repro.serve.daemon.SchedulerDaemon.state_payload`
produces and ``--resume-from`` consumes), written atomically to a
sequence-numbered ``backup-NNNNNN.json``.  :class:`BackupManager` keeps
the newest ``retention`` backups and can *verify* any of them: restore
every tenant from the payload (:meth:`repro.serve.tenants.TenantState.restore`)
re-snapshot it, and require the round-tripped payload to be bit-identical
to what was backed up — the same contract the daemon's drain/resume path
already honours, checked offline without starting a daemon.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
from typing import Any, Callable, Dict, List, Optional, Union

_BACKUP_RE = re.compile(r"^(?P<prefix>.+)-(?P<seq>\d{6})\.json$")


def canonical_json(payload: Dict[str, Any]) -> str:
    """The byte-stable serialisation backups are compared under."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def roundtrip_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Restore every tenant in a daemon state payload and re-snapshot it.

    Returns a payload of the same shape built entirely from the restored
    live objects; bit-identity of ``canonical_json`` of input and output
    is the backup-integrity contract.
    """
    # Imported lazily: repro.serve builds on the runtime, which itself
    # publishes through repro.ops.sink.
    from repro.serve.tenants import TenantState

    tenants = []
    for tenant_payload in payload.get("tenants", []):
        state = TenantState.restore(tenant_payload)
        tenants.append(state.snapshot())
    out = dict(payload)
    out["tenants"] = tenants
    return out


def verify_backup_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Round-trip ``payload`` through live tenants; raise on any drift.

    Returns ``{"tenants": N, "bit_identical": True, "bytes": ...}`` on
    success; raises :class:`ValueError` naming the backup as corrupt if
    the round-tripped payload differs by even one byte.
    """
    original = canonical_json(payload)
    restored = canonical_json(roundtrip_payload(payload))
    if original != restored:
        raise ValueError(
            "backup failed bit-identity verification: restored payload "
            f"differs ({len(original)} vs {len(restored)} canonical bytes)"
        )
    return {
        "tenants": len(payload.get("tenants", [])),
        "bit_identical": True,
        "bytes": len(original),
    }


class BackupManager:
    """Write, list, prune, load, and verify daemon state backups."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        *,
        prefix: str = "backup",
        retention: int = 5,
        clock: Callable[[], float] = time.time,
    ):
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        if "-" in prefix:
            raise ValueError(f"prefix must not contain '-': {prefix!r}")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.retention = retention
        self.clock = clock

    def paths(self) -> List[pathlib.Path]:
        """Backups on disk, oldest first."""
        found = []
        for path in self.root.iterdir():
            match = _BACKUP_RE.match(path.name)
            if match and match.group("prefix") == self.prefix:
                found.append((int(match.group("seq")), path))
        return [path for _, path in sorted(found)]

    def latest(self) -> Optional[pathlib.Path]:
        paths = self.paths()
        return paths[-1] if paths else None

    def _next_seq(self) -> int:
        latest = self.latest()
        if latest is None:
            return 0
        return int(_BACKUP_RE.match(latest.name).group("seq")) + 1

    def write(self, payload: Dict[str, Any]) -> pathlib.Path:
        """Persist one backup atomically (tmp file + rename), stamped
        with the manager's clock, then enforce retention."""
        document = dict(payload)
        document.setdefault("backup_ts", self.clock())
        path = self.root / f"{self.prefix}-{self._next_seq():06d}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=2))
        os.replace(tmp, path)
        self.prune()
        return path

    def prune(self) -> List[pathlib.Path]:
        """Delete all but the newest ``retention`` backups."""
        paths = self.paths()
        stale = paths[: max(0, len(paths) - self.retention)]
        for path in stale:
            path.unlink()
        return stale

    def load(
        self, path: Optional[Union[str, pathlib.Path]] = None
    ) -> Dict[str, Any]:
        """The payload of ``path`` (default: the newest backup), with the
        manager's ``backup_ts`` stamp stripped back off."""
        if path is None:
            path = self.latest()
            if path is None:
                raise FileNotFoundError(
                    f"no {self.prefix}-*.json backups under {self.root}"
                )
        payload = json.loads(pathlib.Path(path).read_text())
        payload.pop("backup_ts", None)
        return payload

    def verify(
        self, path: Optional[Union[str, pathlib.Path]] = None
    ) -> Dict[str, Any]:
        """Load and bit-identity-verify one backup (default: newest)."""
        return verify_backup_payload(self.load(path))

    def backup_daemon(self, daemon: Any) -> pathlib.Path:
        """Snapshot a live (in-process) daemon into a new backup."""
        return self.write(daemon.state_payload())
