"""Production ops surface: metrics sink, persistent store, SLOs, backup, soak.

``repro.ops`` is the operational layer above the adaptive runtime and the
scheduler daemon:

- :mod:`repro.ops.sink` — the :class:`MetricsSink` publishing protocol
  every metrics producer (session, daemon) writes through, plus fan-out
  and store-backed implementations.
- :mod:`repro.ops.store` — a rotating, append-only JSONL metrics store
  with gzip-sealed segments, crash-safe line-atomic appends, and a
  time-window query API.
- :mod:`repro.ops.slo` — declarative SLO definitions evaluated over
  sliding windows, with firing/resolved alert transitions dispatched
  through pluggable notifiers.
- :mod:`repro.ops.backup` — periodic daemon state backups with
  retention and a restore path verified bit-identical.
- :mod:`repro.ops.soak` — a chaos soak harness combining fault
  profiles, drift storms, and injected scheduler timeouts while
  continuously asserting the invariant oracle.
"""

from __future__ import annotations

from repro.ops.sink import (
    Counter,
    MetricsSink,
    MultiSink,
    NullSink,
    StoreSink,
)
from repro.ops.store import MetricsStore, SegmentInfo
from repro.ops.slo import (
    Alert,
    DEFAULT_SLOS,
    FileNotifier,
    LogNotifier,
    SloMonitor,
    SloSpec,
    SloTracker,
    WebhookNotifier,
    format_slo_spec,
    make_notifier,
    parse_slo_spec,
)
from repro.ops.backup import BackupManager, verify_backup_payload

__all__ = [
    "Alert",
    "BackupManager",
    "Counter",
    "DEFAULT_SLOS",
    "FileNotifier",
    "LogNotifier",
    "MetricsSink",
    "MetricsStore",
    "MultiSink",
    "NullSink",
    "SegmentInfo",
    "SloMonitor",
    "SloSpec",
    "SloTracker",
    "SoakConfig",
    "SoakReport",
    "StoreSink",
    "WebhookNotifier",
    "format_slo_spec",
    "make_notifier",
    "parse_slo_spec",
    "run_soak",
    "verify_backup_payload",
]

_SOAK_NAMES = {"SoakConfig", "SoakReport", "run_soak"}


def __getattr__(name: str):
    # repro.ops.soak imports the runtime and serve layers, which in turn
    # publish through repro.ops.sink — importing it eagerly here would
    # make ``import repro.runtime.session`` circular.  Load it on first
    # attribute access instead.
    if name in _SOAK_NAMES:
        from repro.ops import soak as _soak

        return getattr(_soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
