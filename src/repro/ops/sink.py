"""The one metrics-publishing protocol every producer writes through.

A :class:`MetricsSink` is where structured events, counters, and scalar
observations go.  The adaptive session and the scheduler daemon both
publish exclusively through this interface; what happens on the other
side — in-memory aggregation (:class:`repro.runtime.metrics.RuntimeMetrics`),
persistence into the rotating JSONL store (:class:`StoreSink`), SLO
evaluation (:class:`repro.ops.slo.SloMonitor`), or fan-out to several of
those at once (:class:`MultiSink`) — is the consumer's choice, not the
producer's.

This module imports only the standard library so every layer (runtime,
serve, ops) can depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


def event_record(event: Any) -> Dict[str, Any]:
    """Normalise a published event into one flat JSON-serialisable dict.

    Dataclass events (e.g. :class:`repro.runtime.metrics.TickEvent`) are
    flattened with :func:`dataclasses.asdict`; mappings are shallow-copied.
    """
    if dataclasses.is_dataclass(event) and not isinstance(event, type):
        return dataclasses.asdict(event)
    if isinstance(event, Mapping):
        return dict(event)
    raise TypeError(
        f"events must be dataclasses or mappings, got {type(event).__name__}"
    )


class MetricsSink:
    """Base publishing interface: emit / counter / observe / flush.

    Subclasses override what they consume; the defaults make a sink that
    ignores everything, so partial consumers (an SLO monitor that only
    cares about :meth:`emit`, say) stay small.
    """

    def emit(self, event: Any) -> None:
        """Publish one structured event (a dataclass or a mapping)."""

    def counter(self, name: str) -> Counter:
        """A named monotonic counter owned by this sink."""
        return Counter(name)

    def observe(self, name: str, value: float) -> None:
        """Record one scalar sample of a named series."""

    def flush(self) -> None:
        """Push any buffered state to the sink's backing surface."""


class NullSink(MetricsSink):
    """Discards everything (the default when no sink is wired)."""


class _FanoutCounter(Counter):
    """A counter whose increments propagate to every member sink."""

    __slots__ = ("_members",)

    def __init__(self, name: str, members: Sequence[Counter]):
        super().__init__(name)
        self._members = list(members)

    def inc(self, amount: int = 1) -> None:
        super().inc(amount)
        for member in self._members:
            member.inc(amount)


class MultiSink(MetricsSink):
    """Fan one publish stream out to several sinks."""

    def __init__(self, sinks: Sequence[MetricsSink]):
        self.sinks: List[MetricsSink] = [s for s in sinks if s is not None]
        self._counters: Dict[str, _FanoutCounter] = {}

    def emit(self, event: Any) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = _FanoutCounter(
                name, [sink.counter(name) for sink in self.sinks]
            )
            self._counters[name] = counter
        return counter

    def observe(self, name: str, value: float) -> None:
        for sink in self.sinks:
            sink.observe(name, value)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()


class StoreSink(MetricsSink):
    """Persist the publish stream into a :class:`repro.ops.store.MetricsStore`.

    Events become one JSONL record each (``kind`` defaulting to
    ``"event"``, tagged with this sink's ``source``); observations become
    ``kind="observe"`` records; counters are buffered in memory and
    snapshotted as one ``kind="counters"`` record per :meth:`flush`, so
    hot-path increments never touch the disk.
    """

    def __init__(self, store: Any, *, source: str = "", kind: str = "event"):
        self.store = store
        self.source = source
        self.kind = kind
        self._counters: Dict[str, Counter] = {}

    def _base(self, kind: str) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": kind}
        if self.source:
            record["source"] = self.source
        return record

    def emit(self, event: Any) -> None:
        record = event_record(event)
        record.setdefault("kind", self.kind)
        if self.source:
            record.setdefault("source", self.source)
        self.store.append(record)

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def observe(self, name: str, value: float) -> None:
        record = self._base("observe")
        record["name"] = name
        record["value"] = float(value)
        self.store.append(record)

    def flush(self) -> None:
        if self._counters:
            record = self._base("counters")
            record["counters"] = {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            }
            self.store.append(record)
        self.store.flush()


def as_sink(sink: Optional[MetricsSink]) -> MetricsSink:
    """``sink`` if given, else the shared null sink."""
    return sink if sink is not None else _NULL


_NULL = NullSink()
