"""Rotating, append-only JSONL metrics store.

Records are JSON objects, one per line, appended to an *active* segment
``metrics-NNNNNN.jsonl``.  When the active segment exceeds the size or
age budget it is *sealed*: rotated out, gzip-compressed to
``metrics-NNNNNN.jsonl.gz``, and a fresh active segment is opened.
Retention keeps the newest ``max_segments`` sealed segments.

Crash safety is line-granular: every append is a single ``write()`` of a
complete ``record + "\\n"`` on an ``O_APPEND`` stream followed by a
flush, so a crash can lose or truncate at most the final line.  On open,
a torn final line in the active segment is detected and truncated away,
and :meth:`MetricsStore.iter_records` skips unparsable trailing lines
rather than failing the whole query.

A single store instance assumes a single writer process; readers may
iterate concurrently.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

_SEGMENT_RE = re.compile(r"^(?P<prefix>.+)-(?P<seq>\d{6})\.jsonl(?P<gz>\.gz)?$")


@dataclass(frozen=True)
class SegmentInfo:
    """One store segment on disk."""

    path: pathlib.Path
    seq: int
    sealed: bool
    size_bytes: int


class MetricsStore:
    """Append-only JSONL store with rotation, sealing, and window queries.

    Parameters
    ----------
    root:
        Directory holding the segments (created if missing).
    prefix:
        Segment filename prefix.
    max_segment_bytes:
        Rotate the active segment once it reaches this many bytes.
    max_segment_age_s:
        Also rotate once the active segment's first record is this old
        (``None`` disables age-based rotation).
    max_segments:
        Keep at most this many *sealed* segments; older ones are deleted
        (``None`` keeps everything).
    compress:
        Gzip sealed segments (on by default).
    clock:
        Timestamp source for ``ts`` fields and age-based rotation —
        injectable so tests and the soak harness run on simulated time.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        *,
        prefix: str = "metrics",
        max_segment_bytes: int = 4 << 20,
        max_segment_age_s: Optional[float] = None,
        max_segments: Optional[int] = None,
        compress: bool = True,
        clock: Callable[[], float] = time.time,
    ):
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        if "-" in prefix:
            raise ValueError(f"prefix must not contain '-': {prefix!r}")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.max_segment_bytes = max_segment_bytes
        self.max_segment_age_s = max_segment_age_s
        self.max_segments = max_segments
        self.compress = compress
        self.clock = clock
        self.records_written = 0
        self._active: Optional[io.BufferedWriter] = None
        self._active_seq = 0
        self._active_bytes = 0
        self._active_opened_ts: Optional[float] = None
        self._recover()

    # -- layout -------------------------------------------------------------

    def _segment_path(self, seq: int, *, sealed: bool) -> pathlib.Path:
        name = f"{self.prefix}-{seq:06d}.jsonl"
        if sealed and self.compress:
            name += ".gz"
        return self.root / name

    def segments(self) -> List[SegmentInfo]:
        """All segments on disk, oldest first (active segment last)."""
        found: List[SegmentInfo] = []
        for path in self.root.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if not match or match.group("prefix") != self.prefix:
                continue
            found.append(
                SegmentInfo(
                    path=path,
                    seq=int(match.group("seq")),
                    sealed=bool(match.group("gz")),
                    size_bytes=path.stat().st_size,
                )
            )
        return sorted(found, key=lambda info: (info.seq, info.sealed))

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Adopt an existing store directory: pick the next active
        segment and truncate any torn final line a crash left behind."""
        existing = self.segments()
        plain = [info for info in existing if not info.sealed]
        if plain:
            active = plain[-1]
            self._truncate_torn_tail(active.path)
            self._active_seq = active.seq
            self._active_bytes = active.path.stat().st_size
        else:
            self._active_seq = existing[-1].seq + 1 if existing else 0
            self._active_bytes = 0
        # Older plain segments (a crash between rotate and seal) are
        # sealed now so the directory converges to one active segment.
        for stale in plain[:-1]:
            self._seal(stale.path)

    @staticmethod
    def _truncate_torn_tail(path: pathlib.Path) -> None:
        data = path.read_bytes()
        if not data:
            return
        if data.endswith(b"\n"):
            body, tail = data, b""
        else:
            cut = data.rfind(b"\n")
            body, tail = (
                (data[: cut + 1], data[cut + 1 :]) if cut >= 0 else (b"", data)
            )
        if tail:
            path.write_bytes(body)
            return
        # Also drop a final *complete* line that is not valid JSON —
        # e.g. a partially flushed buffer that happened to end in "\n".
        lines = body.splitlines(keepends=True)
        if lines:
            try:
                json.loads(lines[-1])
            except (json.JSONDecodeError, UnicodeDecodeError):
                path.write_bytes(b"".join(lines[:-1]))

    # -- writing ------------------------------------------------------------

    def _ensure_open(self) -> io.BufferedWriter:
        if self._active is None:
            path = self._segment_path(self._active_seq, sealed=False)
            self._active = open(path, "ab")
            if self._active_opened_ts is None:
                self._active_opened_ts = self.clock()
        return self._active

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record (adds ``ts`` from the clock if absent)."""
        if "ts" not in record:
            record = dict(record)
            record["ts"] = self.clock()
        line = (
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        ).encode("utf-8")
        self._maybe_rotate(len(line))
        stream = self._ensure_open()
        stream.write(line)
        stream.flush()
        self._active_bytes += len(line)
        self.records_written += 1

    def _maybe_rotate(self, incoming_bytes: int) -> None:
        if self._active_bytes == 0:
            return
        if self._active_bytes + incoming_bytes > self.max_segment_bytes:
            self.rotate()
            return
        if (
            self.max_segment_age_s is not None
            and self._active_opened_ts is not None
            and self.clock() - self._active_opened_ts >= self.max_segment_age_s
        ):
            self.rotate()

    def rotate(self) -> Optional[pathlib.Path]:
        """Seal the active segment and open a fresh one.

        Returns the sealed segment's path (``None`` if there was nothing
        to seal)."""
        if self._active is not None:
            self._active.close()
            self._active = None
        path = self._segment_path(self._active_seq, sealed=False)
        sealed: Optional[pathlib.Path] = None
        if path.exists() and path.stat().st_size > 0:
            sealed = self._seal(path)
            self._active_seq += 1
        self._active_bytes = 0
        self._active_opened_ts = None
        self._prune()
        return sealed

    def _seal(self, path: pathlib.Path) -> pathlib.Path:
        if not self.compress:
            return path
        target = pathlib.Path(str(path) + ".gz")
        tmp = target.with_suffix(".gz.tmp")
        with open(path, "rb") as src, gzip.open(tmp, "wb") as dst:
            while True:
                chunk = src.read(1 << 16)
                if not chunk:
                    break
                dst.write(chunk)
        os.replace(tmp, target)
        path.unlink()
        return target

    def _prune(self) -> None:
        if self.max_segments is None:
            return
        sealed = [info for info in self.segments() if info.sealed]
        for info in sealed[: max(0, len(sealed) - self.max_segments)]:
            info.path.unlink()

    def flush(self) -> None:
        if self._active is not None:
            self._active.flush()
            os.fsync(self._active.fileno())

    def close(self) -> None:
        if self._active is not None:
            self._active.close()
            self._active = None

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reading ------------------------------------------------------------

    def iter_records(
        self,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        kind: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Records in append order, filtered to ``start <= ts < end`` and
        ``record["kind"] == kind`` when given.  Unparsable lines (a torn
        tail from a live writer) are skipped."""
        self.flush()
        for info in self.segments():
            opener = gzip.open if info.path.suffix == ".gz" else open
            with opener(info.path, "rt", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    ts = record.get("ts")
                    if start is not None and (ts is None or ts < start):
                        continue
                    if end is not None and (ts is None or ts >= end):
                        continue
                    if kind is not None and record.get("kind") != kind:
                        continue
                    yield record

    def query(
        self,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """:meth:`iter_records`, materialised."""
        return list(self.iter_records(start=start, end=end, kind=kind))

    def stats(self) -> Dict[str, Any]:
        """Shape of the store on disk plus this writer's record count."""
        infos = self.segments()
        return {
            "root": str(self.root),
            "segments": len(infos),
            "sealed_segments": sum(1 for info in infos if info.sealed),
            "total_bytes": sum(info.size_bytes for info in infos),
            "records_written": self.records_written,
            "active_segment": str(
                self._segment_path(self._active_seq, sealed=False)
            ),
        }
