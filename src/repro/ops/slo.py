"""Declarative SLOs over the metrics stream, with alert notifiers.

An SLO is named with the same ``name[:key=value,...]`` grammar every
other registry uses (:mod:`repro.util.spec`)::

    fallback_rate:threshold=0.2,window=8
    p99_decision_latency:threshold=0.05,window=30,min_samples=20

The name picks an evaluator from :data:`SLO_KINDS` — it decides which
records contribute a sample and how samples aggregate (mean rate or a
percentile).  Each :class:`SloTracker` keeps a sliding window of
``(time, sample)`` pairs; once the window holds ``min_samples`` the
aggregate is compared against the threshold and the tracker walks a
two-state machine (``ok`` ↔ ``firing``), emitting an :class:`Alert` on
every transition.  :class:`SloMonitor` is the plural form — it is itself
a :class:`repro.ops.sink.MetricsSink`, so sessions and the daemon can
publish straight into SLO evaluation via a
:class:`repro.ops.sink.MultiSink`.

Window time comes from the record (``time``, falling back to ``ts``),
not the wall clock, so replayed or simulated streams evaluate
deterministically.
"""

from __future__ import annotations

import json
import logging
import pathlib
from collections import deque
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.ops.sink import MetricsSink, event_record
from repro.util.spec import format_spec, parse_spec

logger = logging.getLogger("repro.ops.slo")


def _percentile(samples: Sequence[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))
    )
    return ordered[index]


def _mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples)


def _latency_sample(record: Mapping[str, Any]) -> Optional[float]:
    for key in ("decision_latency_s", "scheduler_elapsed"):
        if key in record:
            return float(record[key])
    return None


def _fallback_sample(record: Mapping[str, Any]) -> Optional[float]:
    if "fallback" in record:
        return 1.0 if record["fallback"] else 0.0
    return None


def _repair_sample(record: Mapping[str, Any]) -> Optional[float]:
    if "decision" not in record and "repair" not in record:
        return None
    repaired = record.get("decision") == "repair" or bool(
        record.get("repair")
    )
    return 1.0 if repaired else 0.0


def _saturation_sample(record: Mapping[str, Any]) -> Optional[float]:
    kind = record.get("kind", "")
    if kind == "daemon.reject":
        return 1.0 if record.get("code") == "saturated" else 0.0
    if kind == "daemon.response":
        return 0.0
    return None


@dataclass(frozen=True)
class SloKind:
    """How one SLO family turns records into a windowed value."""

    name: str
    select: Callable[[Mapping[str, Any]], Optional[float]]
    aggregate: Callable[[Sequence[float]], float]
    description: str


#: The SLO families the grammar accepts.
SLO_KINDS: Dict[str, SloKind] = {
    kind.name: kind
    for kind in (
        SloKind(
            "p99_decision_latency",
            _latency_sample,
            lambda samples: _percentile(samples, 99),
            "p99 of per-decision wall-clock latency (s)",
        ),
        SloKind(
            "fallback_rate",
            _fallback_sample,
            _mean,
            "fraction of decisions answered by the baseline fallback",
        ),
        SloKind(
            "repair_rate",
            _repair_sample,
            _mean,
            "fraction of ticks that took a repair action",
        ),
        SloKind(
            "queue_saturation_rate",
            _saturation_sample,
            _mean,
            "fraction of admissions rejected as saturated",
        ),
    )
}


@dataclass(frozen=True)
class SloSpec:
    """One declarative SLO: fire when ``aggregate(window) > threshold``."""

    name: str
    threshold: float
    window_s: float = 30.0
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.name not in SLO_KINDS:
            raise KeyError(
                f"unknown SLO {self.name!r}; known: "
                f"{', '.join(sorted(SLO_KINDS))}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )

    @property
    def kind(self) -> SloKind:
        return SLO_KINDS[self.name]


def parse_slo_spec(spec: Union[str, SloSpec]) -> SloSpec:
    """``"fallback_rate:threshold=0.2,window=8" -> SloSpec(...)``."""
    if isinstance(spec, SloSpec):
        return spec
    name, options = parse_spec(
        spec, known=sorted(SLO_KINDS), kind="SLO", name_kind="SLO"
    )
    if "threshold" not in options:
        raise ValueError(f"SLO spec {spec!r} must set threshold=<value>")
    kwargs: Dict[str, Any] = {
        "name": name,
        "threshold": float(options.pop("threshold")),
    }
    if "window" in options:
        kwargs["window_s"] = float(options.pop("window"))
    if "min_samples" in options:
        kwargs["min_samples"] = int(options.pop("min_samples"))
    if options:
        raise ValueError(
            f"unknown SLO option(s) {sorted(options)} in spec {spec!r}; "
            f"expected threshold/window/min_samples"
        )
    return SloSpec(**kwargs)


def format_slo_spec(spec: SloSpec) -> str:
    """Canonical spec string; round-trips through :func:`parse_slo_spec`."""
    return format_spec(
        spec.name,
        {
            "threshold": spec.threshold,
            "window": spec.window_s,
            "min_samples": spec.min_samples,
        },
    )


#: Serving-oriented defaults, tuned for the adaptive session's tick stream.
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec("p99_decision_latency", threshold=0.25, window_s=30.0),
    SloSpec("fallback_rate", threshold=0.2, window_s=8.0),
    SloSpec("repair_rate", threshold=0.5, window_s=8.0),
    SloSpec("queue_saturation_rate", threshold=0.5, window_s=8.0),
)


@dataclass(frozen=True)
class Alert:
    """One firing/resolved transition of one SLO."""

    slo: str
    state: str  # "firing" | "resolved"
    time: float
    value: float
    threshold: float
    window_s: float
    samples: int

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        arrow = ">" if self.state == "firing" else "<="
        return (
            f"[{self.state.upper()}] {self.slo} value={self.value:.4g} "
            f"{arrow} threshold={self.threshold:.4g} "
            f"(window={self.window_s:g}s, samples={self.samples}, "
            f"t={self.time:.3f})"
        )


class Notifier:
    """Where alert transitions go; subclasses deliver them somewhere."""

    def notify(self, alert: Alert) -> None:
        raise NotImplementedError


class LogNotifier(Notifier):
    """Log alerts (warning on firing, info on resolved).

    With ``stream`` set the rendered line goes there instead of through
    :mod:`logging` — the CLI passes stdout so both transitions show
    without double-printing through the last-resort stderr handler.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def notify(self, alert: Alert) -> None:
        line = alert.render()
        if self.stream is not None:
            print(line, file=self.stream)
        elif alert.state == "firing":
            logger.warning("%s", line)
        else:
            logger.info("%s", line)


class FileNotifier(Notifier):
    """Append one JSON line per alert transition."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def notify(self, alert: Alert) -> None:
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(
                json.dumps(alert.to_json(), sort_keys=True) + "\n"
            )


class WebhookNotifier(Notifier):
    """Webhook delivery stub.

    Builds the JSON payload a real endpoint would receive and hands it to
    ``transport(url, payload)``.  The default transport only spools
    deliveries into :attr:`sent` — this repo makes no network calls — so
    tests and the soak harness can assert on what *would* have been
    POSTed; production wires a real HTTP transport in.
    """

    def __init__(
        self,
        url: str = "",
        transport: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ):
        self.url = url
        self.sent: List[Dict[str, Any]] = []
        self._transport = transport

    def notify(self, alert: Alert) -> None:
        payload = {"url": self.url, "alert": alert.to_json()}
        if self._transport is not None:
            self._transport(self.url, payload)
        else:
            self.sent.append(payload)


def make_notifier(spec: str, *, stream: Optional[TextIO] = None) -> Notifier:
    """Notifier factory on the spec grammar: ``log``, ``file:path=...``,
    ``webhook`` (stub; real URLs are wired programmatically because the
    grammar reserves ``:``)."""
    name, options = parse_spec(
        spec, known=("log", "file", "webhook"), kind="notifier"
    )
    if name == "log":
        return LogNotifier(stream=stream)
    if name == "file":
        path = options.get("path", "alerts.jsonl")
        return FileNotifier(path)
    return WebhookNotifier(url=str(options.get("url", "")))


class SloTracker:
    """One SLO's sliding window and ok/firing state machine."""

    def __init__(self, spec: Union[str, SloSpec]):
        self.spec = parse_slo_spec(spec)
        self.window: Deque[Tuple[float, float]] = deque()
        self.firing = False
        self.last_value: Optional[float] = None
        self.last_time: Optional[float] = None
        self.transitions: List[Alert] = []

    @property
    def label(self) -> str:
        return format_slo_spec(self.spec)

    def observe(self, record: Mapping[str, Any]) -> Optional[Alert]:
        """Fold one record in; return the transition it caused, if any.

        Every record with a time advances the window (so a firing SLO can
        resolve as samples age out) even when it contributes no sample.
        """
        when = record.get("time", record.get("ts"))
        if when is None:
            return None
        when = float(when)
        sample = self.spec.kind.select(record)
        if sample is not None:
            self.window.append((when, sample))
        return self._evaluate(when)

    def _evaluate(self, now: float) -> Optional[Alert]:
        horizon = now - self.spec.window_s
        while self.window and self.window[0][0] <= horizon:
            self.window.popleft()
        if len(self.window) < self.spec.min_samples:
            return None
        samples = [sample for _, sample in self.window]
        value = self.spec.kind.aggregate(samples)
        self.last_value = value
        self.last_time = now
        transition: Optional[str] = None
        if not self.firing and value > self.spec.threshold:
            self.firing, transition = True, "firing"
        elif self.firing and value <= self.spec.threshold:
            self.firing, transition = False, "resolved"
        if transition is None:
            return None
        alert = Alert(
            slo=self.label,
            state=transition,
            time=now,
            value=value,
            threshold=self.spec.threshold,
            window_s=self.spec.window_s,
            samples=len(samples),
        )
        self.transitions.append(alert)
        return alert

    def status(self) -> Dict[str, Any]:
        return {
            "slo": self.label,
            "description": self.spec.kind.description,
            "state": "firing" if self.firing else "ok",
            "value": self.last_value,
            "samples": len(self.window),
            "fired": sum(
                1 for a in self.transitions if a.state == "firing"
            ),
            "resolved": sum(
                1 for a in self.transitions if a.state == "resolved"
            ),
        }


class SloMonitor(MetricsSink):
    """Evaluate many SLOs over one publish stream; dispatch transitions.

    A :class:`repro.ops.sink.MetricsSink`: wire it into a ``MultiSink``
    next to the store sink and every published event is both persisted
    and SLO-checked.
    """

    def __init__(
        self,
        slos: Sequence[Union[str, SloSpec]] = DEFAULT_SLOS,
        notifiers: Sequence[Notifier] = (),
    ):
        self.trackers = [SloTracker(spec) for spec in slos]
        self.notifiers = list(notifiers)
        self.alerts: List[Alert] = []

    def emit(self, event: Any) -> None:
        self.ingest(event_record(event))

    def ingest(self, record: Mapping[str, Any]) -> List[Alert]:
        """Fold one record into every tracker; dispatch fresh transitions.

        (Named apart from :meth:`MetricsSink.observe`, which keeps its
        ``(name, value)`` scalar-series signature — this consumes whole
        records.)
        """
        fresh: List[Alert] = []
        for tracker in self.trackers:
            alert = tracker.observe(record)
            if alert is not None:
                fresh.append(alert)
        for alert in fresh:
            self.alerts.append(alert)
            for notifier in self.notifiers:
                notifier.notify(alert)
        return fresh

    @property
    def fired(self) -> int:
        return sum(1 for a in self.alerts if a.state == "firing")

    @property
    def resolved(self) -> int:
        return sum(1 for a in self.alerts if a.state == "resolved")

    def report(self) -> Dict[str, Any]:
        """The SLO report: per-SLO status plus the full transition log."""
        return {
            "slos": [tracker.status() for tracker in self.trackers],
            "alerts_fired": self.fired,
            "alerts_resolved": self.resolved,
            "alerts": [alert.to_json() for alert in self.alerts],
        }
