"""Chaos soak harness: faults + drift storms + timeouts, continuously
oracle-checked.

The soak is the long-horizon validation tier above ``check`` and the
per-subsystem smoke runs: many tenants serve adaptive sessions over
node-correlated drift storms (:func:`repro.sim.replay.drift_storm_trace`)
with injected fault profiles (:mod:`repro.faults`) and forced scheduler
timeouts, for hours of *simulated* time.  Every tick's executed schedule
is asserted against the vectorized invariant oracle
(:func:`repro.timing.validate.check_schedule_fast`); every tick event is
persisted into the rotating metrics store and evaluated against the SLO
set, so the run both proves invariants hold under sustained chaos and
produces the alert firing/resolving evidence that the SLO machinery
works.  A daemon phase then drives socket load, drains, backs the state
up (bit-identity verified), restarts from the snapshot, and asserts the
zero-loss ``accepted == served`` invariant across the restart.

``python -m repro.cli ops soak --smoke`` runs the seeded CI-sized
configuration; :class:`SoakConfig` scales the same harness to real
soaks (``SoakConfig.hours(4)`` ≈ a 4-hour simulated storm).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ops.backup import BackupManager, verify_backup_payload
from repro.ops.sink import MultiSink, StoreSink
from repro.ops.slo import (
    FileNotifier,
    Notifier,
    SloMonitor,
    SloSpec,
    parse_slo_spec,
)
from repro.ops.store import MetricsStore

#: The soak's SLO set (windows are in simulated seconds for the session
#: phase).  ``fallback_rate`` is the deterministic canary: the forced
#: timeout burst drives it over threshold, then the sliding window
#: drains and it resolves — every soak must fire and resolve it.
SOAK_SLOS: Tuple[SloSpec, ...] = (
    SloSpec("fallback_rate", threshold=0.25, window_s=6.0, min_samples=8),
    SloSpec("repair_rate", threshold=0.6, window_s=6.0, min_samples=8),
    SloSpec(
        "p99_decision_latency", threshold=5.0, window_s=30.0, min_samples=8
    ),
    SloSpec(
        "queue_saturation_rate", threshold=0.5, window_s=30.0, min_samples=10
    ),
)


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's shape (fully seeded — same config, same report)."""

    tenants: int = 6
    procs: int = 8
    ticks: int = 40
    dt: float = 1.0
    seed: int = 0
    scheduler: str = "openshop"
    #: Drift-storm cadence/violence (node-correlated row storms).
    storm_every: int = 6
    storm_nodes: int = 2
    storm_sigma: float = 0.8
    calm_sigma: float = 0.01
    #: Ticks on which *every* tenant's scheduler is forced to time out
    #: (the deterministic fallback burst the SLO canary fires on).
    timeout_ticks: Tuple[int, ...] = (16, 17, 18, 19)
    #: Fraction of tenants that get an injected fault profile.
    fault_fraction: float = 0.5
    #: SLO specs (strings or :class:`SloSpec`).
    slos: Tuple[Union[str, SloSpec], ...] = SOAK_SLOS
    #: Metrics-store segment budget — small enough that a smoke soak
    #: rotates (seals + gzips) at least one segment.
    segment_bytes: int = 32768
    max_segments: Optional[int] = None
    #: Daemon phase: socket load, drain, backup, verified restart.
    daemon_phase: bool = True
    daemon_tenants: int = 12
    daemon_cohorts: int = 4
    daemon_procs: int = 6
    daemon_duration_s: float = 1.0
    daemon_max_queue: int = 32
    backup_retention: int = 3

    @classmethod
    def smoke(cls, seed: int = 0) -> "SoakConfig":
        """The seeded CI-sized soak (~seconds of wall clock)."""
        return cls(seed=seed)

    @classmethod
    def hours(cls, hours: float, *, seed: int = 0) -> "SoakConfig":
        """A long soak: ``dt`` = 5 simulated minutes per tick, enough
        ticks to cover ``hours`` of simulated time, storms and timeout
        bursts rescaled to the longer horizon."""
        dt = 300.0
        ticks = max(8, int(round(hours * 3600.0 / dt)))
        burst = tuple(range(ticks // 3, ticks // 3 + 4))
        return cls(
            ticks=ticks,
            dt=dt,
            seed=seed,
            timeout_ticks=burst,
            slos=(
                SloSpec(
                    "fallback_rate",
                    threshold=0.25,
                    window_s=6 * dt,
                    min_samples=8,
                ),
                SloSpec(
                    "repair_rate",
                    threshold=0.6,
                    window_s=6 * dt,
                    min_samples=8,
                ),
                SloSpec(
                    "p99_decision_latency",
                    threshold=5.0,
                    window_s=30 * dt,
                    min_samples=8,
                ),
                SloSpec(
                    "queue_saturation_rate",
                    threshold=0.5,
                    window_s=30 * dt,
                    min_samples=10,
                ),
            ),
            daemon_duration_s=2.0,
        )

    @property
    def sim_seconds(self) -> float:
        return self.ticks * self.dt


@dataclass
class SoakReport:
    """What one soak run proved (written as ``slo_report.json``)."""

    config: Dict[str, Any]
    tenants: int
    ticks: int
    sim_seconds: float
    oracle_checks: int
    oracle_violations: int
    violations: List[str]
    decisions: Dict[str, int]
    fallback_activations: int
    repair_episodes: int
    faults_seen: int
    alerts_fired: int
    alerts_resolved: int
    slo: Dict[str, Any]
    daemon: Dict[str, Any]
    backup: Dict[str, Any]
    store: Dict[str, Any]
    wall_s: float

    @property
    def ok(self) -> bool:
        return (
            self.oracle_violations == 0
            and self.daemon.get("dropped", 0) == 0
            and bool(self.daemon.get("zero_loss", True))
            and bool(self.backup.get("bit_identical", True))
            and self.alerts_fired >= 1
            and self.alerts_resolved >= 1
        )

    def to_json(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["ok"] = self.ok
        return payload

    def write(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    def render(self) -> str:
        lines = [
            f"soak: {self.tenants} tenants x {self.ticks} ticks "
            f"({self.sim_seconds:g} simulated seconds)",
            f"  oracle: {self.oracle_checks} checks, "
            f"{self.oracle_violations} violations",
            f"  decisions: "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.decisions.items())
            ),
            f"  fallbacks: {self.fallback_activations}  "
            f"repairs: {self.repair_episodes}  "
            f"faults seen: {self.faults_seen}",
            f"  alerts: {self.alerts_fired} fired, "
            f"{self.alerts_resolved} resolved",
        ]
        for status in self.slo.get("slos", []):
            value = status.get("value")
            rendered = "n/a" if value is None else f"{value:.4g}"
            lines.append(
                f"    [{status['state']:>6}] {status['slo']} "
                f"value={rendered} "
                f"(fired {status['fired']}, resolved {status['resolved']})"
            )
        if self.daemon:
            lines.append(
                f"  daemon: accepted={self.daemon.get('accepted', 0)} "
                f"served={self.daemon.get('served', 0)} "
                f"dropped={self.daemon.get('dropped', 0)} "
                f"zero_loss={self.daemon.get('zero_loss')} "
                f"restart_bit_identical="
                f"{self.daemon.get('restart_bit_identical')}"
            )
        if self.backup:
            lines.append(
                f"  backup: {self.backup.get('path', '-')} "
                f"(tenants={self.backup.get('tenants')}, "
                f"bit_identical={self.backup.get('bit_identical')})"
            )
        lines.append(
            f"  store: {self.store.get('segments')} segments "
            f"({self.store.get('sealed_segments')} sealed), "
            f"{self.store.get('records_written')} records, "
            f"{self.store.get('total_bytes')} bytes"
        )
        lines.append(
            f"  wall: {self.wall_s:.2f}s  "
            f"verdict: {'OK' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def _tenant_fault_profile(config: SoakConfig, index: int):
    """A deterministic per-tenant chaos profile scaled to the horizon."""
    from repro.faults.models import (
        BLACKOUT,
        BW_COLLAPSE,
        LINK_DEAD,
        NODE_DROP,
        Fault,
        FaultProfile,
    )

    if config.fault_fraction <= 0.0:
        return FaultProfile()
    period = max(1, int(round(1.0 / config.fault_fraction)))
    if index % period != 0:
        return FaultProfile()
    p = config.procs
    horizon = config.sim_seconds
    faults = [
        Fault(
            kind=BW_COLLAPSE,
            at=0.2 * horizon,
            src=(1 + index) % p,
            dst=(2 + index) % p,
            factor=6.0,
        ),
        Fault(
            kind=BLACKOUT,
            at=0.35 * horizon,
            src=index % p,
            dst=(index + 1) % p,
            duration=2.0 * config.dt,
            at_event=6,
        ),
        Fault(
            kind=LINK_DEAD,
            at=0.55 * horizon,
            src=(index + 2) % p,
            dst=(index + 3) % p,
            at_event=10,
        ),
    ]
    if p >= 5 and index % (2 * period) == 0:
        faults.append(
            Fault(kind=NODE_DROP, at=0.7 * horizon, node=(index + 4) % p)
        )
    return FaultProfile(faults=tuple(faults))


def _build_sessions(config: SoakConfig, store: MetricsStore, monitor):
    """One seeded session per tenant: drift storm + faults + timeouts."""
    from repro.directory.service import DirectorySnapshot
    from repro.faults.directory import FaultyDirectory
    from repro.model.messages import MixedSizes
    from repro.network.generators import random_pairwise_parameters
    from repro.runtime import AdaptiveSession
    from repro.sim.replay import TraceDirectory, drift_storm_trace

    sessions = []
    for index in range(config.tenants):
        rng = np.random.default_rng((config.seed, index))
        latency, bandwidth = random_pairwise_parameters(
            config.procs, rng=rng
        )
        base = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        trace = drift_storm_trace(
            base,
            ticks=config.ticks + 2,
            dt=config.dt,
            calm_sigma=config.calm_sigma,
            storm_every=config.storm_every,
            storm_nodes=config.storm_nodes,
            storm_sigma=config.storm_sigma,
            seed=config.seed + index,
        )
        directory = TraceDirectory(trace)
        profile = _tenant_fault_profile(config, index)
        if profile:
            directory = FaultyDirectory(directory, profile)
        sink = MultiSink(
            [
                StoreSink(store, source=f"tenant-{index}", kind="tick"),
                monitor,
            ]
        )
        session = AdaptiveSession(
            directory,
            MixedSizes(),
            scheduler=config.scheduler,
            sink=sink,
            force_timeout_ticks=config.timeout_ticks,
            rng=rng,
        )
        sessions.append(session)
    return sessions


def _session_phase(
    config: SoakConfig,
    sessions,
    *,
    progress=None,
) -> Tuple[int, int, List[str]]:
    """Round-robin the tenants through every tick, oracle-checking each
    executed schedule.  Returns (checks, violations, messages)."""
    from repro.timing.validate import ScheduleError, check_schedule_fast

    checks = 0
    violations: List[str] = []
    for tick in range(config.ticks):
        dt = 0.0 if tick == 0 else config.dt
        for index, session in enumerate(sessions):
            result = session.tick(dt=dt)
            checks += 1
            try:
                # Coverage is waived: degraded ticks legitimately drop
                # pairs no surviving route can carry.
                check_schedule_fast(
                    result.schedule, require_coverage=False
                )
            except ScheduleError as exc:
                violations.append(
                    f"tenant-{index} tick {tick}: {exc}"
                )
        if progress is not None and (tick + 1) % 10 == 0:
            progress(f"  tick {tick + 1}/{config.ticks}")
    return checks, len(violations), violations


def _daemon_phase(
    config: SoakConfig,
    ops_dir: pathlib.Path,
    store: MetricsStore,
    monitor,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Socket load, drain, verified backup, bit-identical restart.

    Returns (daemon_report, backup_report)."""
    import threading

    from repro.ops.backup import canonical_json
    from repro.serve import DaemonClient, DaemonConfig, LoadGenerator
    from repro.serve.daemon import SchedulerDaemon

    state_file = str(ops_dir / "daemon_state.json")
    sink = MultiSink(
        [StoreSink(store, source="daemon", kind="daemon.event"), monitor]
    )

    def start(resume_from: str = ""):
        daemon = SchedulerDaemon(
            DaemonConfig(
                host="127.0.0.1",
                port=0,
                max_queue=config.daemon_max_queue,
                state_file=state_file,
                resume_from=resume_from,
            ),
            sink=sink,
        )
        address = daemon.bind()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        return daemon, thread, address

    daemon1, thread1, address = start()
    generator = LoadGenerator(
        tuple(address),
        tenants=config.daemon_tenants,
        cohorts=config.daemon_cohorts,
        procs=config.daemon_procs,
        connections=4,
    )
    report1 = generator.run(config.daemon_duration_s)
    with DaemonClient(tuple(address)) as client:
        drained = client.drain(state_file)
        stats1 = client.stats()
        client.shutdown()
    thread1.join(timeout=30)
    counters1 = stats1["counters"]

    # Backup the drained state; verify the restore path bit-identically.
    manager = BackupManager(
        ops_dir / "backups", retention=config.backup_retention
    )
    payload = json.loads(pathlib.Path(state_file).read_text())
    backup_path = manager.write(payload)
    backup_report = verify_backup_payload(manager.load(backup_path))
    backup_report["path"] = str(backup_path)

    # Restart from the snapshot; the restarted daemon must re-drain to a
    # bit-identical payload before serving anything new.
    daemon2, thread2, address2 = start(resume_from=state_file)
    restart_payload = daemon2.state_payload()
    restart_identical = canonical_json(payload) == canonical_json(
        restart_payload
    )
    generator2 = LoadGenerator(
        tuple(address2),
        tenants=config.daemon_tenants,
        cohorts=config.daemon_cohorts,
        procs=config.daemon_procs,
        connections=4,
    )
    report2 = generator2.run(config.daemon_duration_s)
    with DaemonClient(tuple(address2)) as client:
        stats2 = client.stats()
        client.shutdown()
    thread2.join(timeout=30)
    counters2 = stats2["counters"]

    accepted = counters1["accepted"] + counters2["accepted"]
    served = counters1["served"] + counters2["served"]
    daemon_report = {
        "accepted": accepted,
        "served": served,
        "zero_loss": accepted == served,
        "dropped": report1.dropped + report2.dropped,
        "requests": report1.requests + report2.requests,
        "retried": report1.retried + report2.retried,
        "rejected_saturated": counters1["rejected_saturated"]
        + counters2["rejected_saturated"],
        "restored_tenants": counters2["restored"],
        "drained_tenants": drained.tenants,
        "restart_bit_identical": restart_identical,
        "decision_p99_s": max(
            report1.decision_p99_s, report2.decision_p99_s
        ),
    }
    return daemon_report, backup_report


def run_soak(
    config: SoakConfig,
    ops_dir: Union[str, pathlib.Path],
    *,
    notifiers: Sequence[Notifier] = (),
    progress=None,
) -> SoakReport:
    """Run one soak into ``ops_dir``; returns (and writes) the report.

    ``ops_dir`` ends up holding ``store/`` (the rotated metrics store),
    ``alerts.jsonl`` (every SLO transition), ``backups/`` and
    ``daemon_state.json`` (the daemon phase), and ``slo_report.json``.
    """
    started = time.monotonic()
    ops_dir = pathlib.Path(ops_dir)
    ops_dir.mkdir(parents=True, exist_ok=True)
    store = MetricsStore(
        ops_dir / "store",
        max_segment_bytes=config.segment_bytes,
        max_segments=config.max_segments,
    )
    monitor = SloMonitor(
        [parse_slo_spec(spec) for spec in config.slos],
        notifiers=[FileNotifier(ops_dir / "alerts.jsonl"), *notifiers],
    )

    sessions = _build_sessions(config, store, monitor)
    checks, violation_count, violations = _session_phase(
        config, sessions, progress=progress
    )

    decisions: Dict[str, int] = {}
    fallbacks = 0
    repairs = 0
    faults_seen = 0
    for session in sessions:
        summary = session.metrics.summary()
        for name, count in summary["decisions"].items():
            decisions[name] = decisions.get(name, 0) + count
        fallbacks += summary["fallback_activations"]
        repairs += summary["repair_episodes"]
        faults_seen += summary["faults_seen"]

    daemon_report: Dict[str, Any] = {}
    backup_report: Dict[str, Any] = {}
    if config.daemon_phase:
        daemon_report, backup_report = _daemon_phase(
            config, ops_dir, store, monitor
        )

    # Seal the final segment so the on-disk store is fully rotated and
    # every record is queryable from gzip segments.
    store.rotate()
    store_stats = store.stats()
    store.close()

    report = SoakReport(
        config=dataclasses.asdict(config),
        tenants=config.tenants,
        ticks=config.ticks,
        sim_seconds=config.sim_seconds,
        oracle_checks=checks,
        oracle_violations=violation_count,
        violations=violations[:20],
        decisions=decisions,
        fallback_activations=fallbacks,
        repair_episodes=repairs,
        faults_seen=faults_seen,
        alerts_fired=monitor.fired,
        alerts_resolved=monitor.resolved,
        slo=monitor.report(),
        daemon=daemon_report,
        backup=backup_report,
        store=store_stats,
        wall_s=time.monotonic() - started,
    )
    report.write(ops_dir / "slo_report.json")
    return report
