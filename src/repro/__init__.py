"""repro — adaptive communication scheduling for heterogeneous systems.

A from-scratch reproduction of Bhat, Prasanna & Raghavendra, *Adaptive
Communication Algorithms for Distributed Heterogeneous Systems* (HPDC
1998): network-aware run-time scheduling of collective communication —
specifically total exchange (all-to-all personalized communication) —
over heterogeneous metacomputing networks.

Quickstart
----------
>>> import repro
>>> directory = repro.gusto_directory()          # paper Tables 1-2
>>> problem = repro.TotalExchangeProblem.from_snapshot(
...     directory.snapshot(), repro.UniformSizes(repro.MEGABYTE))
>>> schedule = repro.schedule_openshop(problem)
>>> schedule.completion_time <= 2 * problem.lower_bound()   # Theorem 3
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    SchedulerSpec,
    TotalExchangeProblem,
    baseline_orders,
    branch_and_bound,
    example_problem,
    get_scheduler,
    get_spec,
    greedy_orders,
    iter_specs,
    make_scheduler,
    matching_orders,
    schedule_baseline,
    schedule_greedy,
    schedule_hierarchical,
    schedule_matching_max,
    schedule_matching_min,
    schedule_openshop,
    schedule_optimal,
    scheduler_names,
    tight_baseline_instance,
)
from repro.directory import (
    DirectoryService,
    DirectorySnapshot,
    StaticDirectory,
    TopologyDirectory,
    gusto_directory,
    perturb_snapshot,
)
from repro.model import (
    CommunicationModel,
    FiniteBufferModel,
    InterleavedReceiveModel,
    MixedSizes,
    ServerClientSizes,
    SizeSpec,
    UniformSizes,
    cost_matrix,
)
from repro.network import (
    Metacomputer,
    gusto_parameters,
    random_metacomputer,
    random_pairwise_parameters,
)
from repro.runtime import AdaptiveSession, PolicyConfig, RuntimeMetrics
from repro.sim import (
    execute_orders,
    execute_orders_buffered,
    execute_orders_interleaved,
    fluid_execute_orders,
    planned_vs_actual,
    replay_schedule,
)
from repro.timing import (
    CommEvent,
    Schedule,
    ScheduleError,
    check_schedule,
    is_valid_schedule,
    render_timing_diagram,
)
from repro.util.units import KILOBYTE, MEGABYTE

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSession",
    "CommEvent",
    "CommunicationModel",
    "DirectoryService",
    "DirectorySnapshot",
    "FiniteBufferModel",
    "InterleavedReceiveModel",
    "KILOBYTE",
    "MEGABYTE",
    "Metacomputer",
    "MixedSizes",
    "Schedule",
    "ScheduleError",
    "PolicyConfig",
    "RuntimeMetrics",
    "SchedulerSpec",
    "ServerClientSizes",
    "SizeSpec",
    "StaticDirectory",
    "TopologyDirectory",
    "TotalExchangeProblem",
    "UniformSizes",
    "baseline_orders",
    "branch_and_bound",
    "check_schedule",
    "cost_matrix",
    "example_problem",
    "execute_orders",
    "execute_orders_buffered",
    "execute_orders_interleaved",
    "fluid_execute_orders",
    "get_scheduler",
    "get_spec",
    "greedy_orders",
    "gusto_directory",
    "gusto_parameters",
    "is_valid_schedule",
    "iter_specs",
    "make_scheduler",
    "matching_orders",
    "perturb_snapshot",
    "planned_vs_actual",
    "random_metacomputer",
    "random_pairwise_parameters",
    "render_timing_diagram",
    "replay_schedule",
    "schedule_baseline",
    "schedule_greedy",
    "schedule_hierarchical",
    "schedule_matching_max",
    "schedule_matching_min",
    "schedule_openshop",
    "schedule_optimal",
    "scheduler_names",
    "tight_baseline_instance",
]
