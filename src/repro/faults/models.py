"""Fault taxonomy for the serving runtime (wide-area failure modes).

The paper's directory service exists because network state goes stale
(HPDC'98 Section 2); this module models the sharper version of the same
volatility — state that does not merely drift but *fails*:

* ``link_dead`` — a directed (or symmetric) link goes down permanently;
* ``blackout`` — a link goes down and recovers after ``duration``
  seconds (transient: worth retrying with backoff before rerouting);
* ``bw_collapse`` — a link's bandwidth divides by ``factor``
  permanently (delivery still possible, plans must be repriced);
* ``node_drop`` — a node leaves; all demand to/from it is lost.

A fault fires at directory time ``at``.  When ``at_event`` is set the
fault additionally *strikes mid-schedule*: the serving tick at time
``at`` executes normally until its ``at_event``-th positive-duration
event completes, then the fault interrupts the exchange and the runtime
must salvage + repair (:mod:`repro.faults.executor`,
:mod:`repro.faults.repair`).  Mid-schedule faults stay invisible to the
directory until strictly after ``at`` — the plan that gets interrupted
was made in good faith.

:class:`FaultProfile` aggregates faults and answers the availability
queries the runtime needs; :func:`parse_fault_profile` turns CLI specs
like ``"link_dead:src=0,dst=1,at=3;blackout:src=1,dst=2,at=2,recover=4"``
(or the named deterministic preset ``"smoke"``) into profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.util.spec import format_spec, parse_spec

#: Fault kind names (stable spelling used by specs, metrics and docs).
LINK_DEAD = "link_dead"
BLACKOUT = "blackout"
BW_COLLAPSE = "bw_collapse"
NODE_DROP = "node_drop"

FAULT_KINDS = (LINK_DEAD, BLACKOUT, BW_COLLAPSE, NODE_DROP)

#: Kinds that target a directed link (need ``src``/``dst``).
_LINK_KINDS = (LINK_DEAD, BLACKOUT, BW_COLLAPSE)


@dataclass(frozen=True)
class Fault:
    """One injected failure.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Directory time (seconds) at which the fault fires.
    src, dst:
        Endpoints for link-targeted kinds.
    node:
        The departing node for ``node_drop``.
    duration:
        Blackout recovery time in seconds (required for ``blackout``,
        measured from the moment the fault strikes).
    factor:
        Bandwidth divisor for ``bw_collapse`` (> 1 slows the link).
    at_event:
        When set, the fault strikes *mid-schedule* on the serving tick
        at time ``at``, after this many positive-duration events of that
        tick's exchange have completed.
    symmetric:
        Link faults hit both directions (the paper's links are
        physical routes; one fibre cut kills both).
    """

    kind: str
    at: float
    src: Optional[int] = None
    dst: Optional[int] = None
    node: Optional[int] = None
    duration: Optional[float] = None
    factor: float = 1.0
    at_event: Optional[int] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind in _LINK_KINDS:
            if self.src is None or self.dst is None:
                raise ValueError(f"{self.kind} needs src= and dst=: {self}")
            if self.src == self.dst:
                raise ValueError(f"{self.kind} src and dst must differ")
        if self.kind == NODE_DROP and self.node is None:
            raise ValueError(f"node_drop needs node=: {self}")
        if self.kind == BLACKOUT:
            if self.duration is None or self.duration <= 0:
                raise ValueError(
                    f"blackout needs a positive duration= (recover=): {self}"
                )
        if self.kind == BW_COLLAPSE and self.factor <= 1.0:
            raise ValueError(
                f"bw_collapse needs factor > 1, got {self.factor}"
            )
        if self.at_event is not None and self.at_event < 0:
            raise ValueError(f"at_event must be >= 0, got {self.at_event}")

    @property
    def transient(self) -> bool:
        """Whether the fault heals on its own (worth retrying)."""
        return self.kind == BLACKOUT

    @property
    def mid_schedule(self) -> bool:
        return self.at_event is not None

    def visible_at(self, time: float) -> bool:
        """Whether the directory reports this fault at ``time``.

        Mid-schedule faults stay invisible until strictly after ``at``:
        the tick they interrupt planned without knowing about them.
        """
        if self.mid_schedule:
            return self.at < time
        return self.at <= time

    def active_at(self, time: float) -> bool:
        """Whether the fault's effect is in force at ``time``.

        A blackout recovers ``duration`` seconds after firing; every
        other kind is permanent.
        """
        if not self.visible_at(time):
            return False
        if self.kind == BLACKOUT:
            return time < self.at + self.duration
        return True

    def describe(self) -> str:
        """Compact one-line rendering for reasons/logs."""
        if self.kind == NODE_DROP:
            target = f"node {self.node}"
        else:
            arrow = "<->" if self.symmetric else "->"
            target = f"link {self.src}{arrow}{self.dst}"
        extra = ""
        if self.kind == BLACKOUT:
            extra = f" for {self.duration:g}s"
        elif self.kind == BW_COLLAPSE:
            extra = f" /{self.factor:g}"
        where = f"@t={self.at:g}"
        if self.mid_schedule:
            where += f"+event{self.at_event}"
        return f"{self.kind}({target}{extra}) {where}"


def _link_pairs(fault: Fault) -> Tuple[Tuple[int, int], ...]:
    pairs = ((fault.src, fault.dst),)
    if fault.symmetric:
        pairs += ((fault.dst, fault.src),)
    return pairs


@dataclass(frozen=True)
class FaultProfile:
    """An injectable set of faults, queryable by directory time."""

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def max_index(self) -> int:
        """Largest processor index any fault references (-1 if none)."""
        indices = [-1]
        for fault in self.faults:
            for value in (fault.src, fault.dst, fault.node):
                if value is not None:
                    indices.append(value)
        return max(indices)

    def node_alive(self, time: float, num_procs: int) -> np.ndarray:
        """Boolean ``(P,)`` mask of nodes still up at ``time``."""
        alive = np.ones(num_procs, dtype=bool)
        for fault in self.faults:
            if fault.kind == NODE_DROP and fault.active_at(time):
                alive[fault.node] = False
        return alive

    def link_ok(self, time: float, num_procs: int) -> np.ndarray:
        """Boolean ``(P, P)`` mask of links usable at ``time``.

        Link-level only — node deaths are composed in by
        :meth:`repro.faults.directory.FaultyDirectory.fault_view`.
        """
        ok = np.ones((num_procs, num_procs), dtype=bool)
        for fault in self.faults:
            if fault.kind in (LINK_DEAD, BLACKOUT) and fault.active_at(time):
                for src, dst in _link_pairs(fault):
                    ok[src, dst] = False
        return ok

    def transient_down(self, time: float, num_procs: int) -> np.ndarray:
        """Boolean ``(P, P)`` mask of links down but expected back."""
        down = np.zeros((num_procs, num_procs), dtype=bool)
        for fault in self.faults:
            if fault.kind == BLACKOUT and fault.active_at(time):
                for src, dst in _link_pairs(fault):
                    down[src, dst] = True
        return down

    def bandwidth_divisor(self, time: float, num_procs: int) -> np.ndarray:
        """Float ``(P, P)`` divisor applied to snapshot bandwidths."""
        divisor = np.ones((num_procs, num_procs))
        for fault in self.faults:
            if fault.kind == BW_COLLAPSE and fault.active_at(time):
                for src, dst in _link_pairs(fault):
                    divisor[src, dst] *= fault.factor
        return divisor

    def striking_between(self, t0: float, t1: float) -> Tuple[Fault, ...]:
        """Mid-schedule faults whose fire time lies in ``(t0, t1]``.

        Sorted by ``(at, at_event)`` so the earliest strike is first.
        """
        hits = [
            fault
            for fault in self.faults
            if fault.mid_schedule and t0 < fault.at <= t1
        ]
        hits.sort(key=lambda f: (f.at, f.at_event))
        return tuple(hits)

    def visible_faults(self, time: float) -> Tuple[Fault, ...]:
        """Faults the directory reports at ``time`` (fired, maybe healed)."""
        return tuple(f for f in self.faults if f.visible_at(time))


def apply_fault_to_state(
    alive: np.ndarray, link_ok: np.ndarray, fault: Fault
) -> Tuple[np.ndarray, np.ndarray]:
    """Availability masks *after* ``fault`` lands (copies; inputs kept)."""
    alive = alive.copy()
    link_ok = link_ok.copy()
    if fault.kind == NODE_DROP:
        alive[fault.node] = False
        link_ok[fault.node, :] = False
        link_ok[:, fault.node] = False
    elif fault.kind in (LINK_DEAD, BLACKOUT):
        for src, dst in _link_pairs(fault):
            link_ok[src, dst] = False
    return alive, link_ok


def apply_fault_to_snapshot(
    snapshot: DirectorySnapshot, fault: Fault
) -> DirectorySnapshot:
    """Snapshot with ``fault``'s bandwidth effect applied (if any)."""
    if fault.kind != BW_COLLAPSE:
        return snapshot
    bandwidth = snapshot.bandwidth.copy()
    for src, dst in _link_pairs(fault):
        bandwidth[src, dst] /= fault.factor
    return DirectorySnapshot(
        latency=snapshot.latency, bandwidth=bandwidth, time=snapshot.time
    )


# ---------------------------------------------------------------------------
# Spec parsing.
# ---------------------------------------------------------------------------

#: Spec keys accepted per fault entry (``recover`` aliases ``duration``).
_SPEC_KEYS = {
    "at", "src", "dst", "node", "duration", "recover", "factor",
    "at_event", "symmetric",
}

_INT_KEYS = {"src", "dst", "node", "at_event"}


def _coerce_value(entry: str, key: str, value):
    """Narrow a shared-grammar value to the key's expected type."""
    if key in _INT_KEYS:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"bad value {value!r} for fault option {key!r} in "
                f"{entry!r}: expected an integer"
            )
        return value
    if key == "symmetric":
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        raise ValueError(
            f"bad value {value!r} for fault option {key!r} in {entry!r}: "
            f"expected a boolean (true/false/1/0)"
        )
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"bad value {value!r} for fault option {key!r} in {entry!r}: "
            f"expected a number"
        )
    return float(value)


def parse_fault_entry(entry: str) -> Fault:
    """One ``kind:key=val,key=val`` spec entry -> :class:`Fault`.

    This is the shared ``name[:key=value,...]`` grammar of
    :func:`repro.util.spec.parse_spec` — the same strings
    ``make_directory`` / ``make_scheduler`` / ``make_collective``
    accept — with fault-specific keys and the ``recover`` alias for
    ``duration``.
    """
    kind, raw_options = parse_spec(
        entry, known=FAULT_KINDS, kind="fault spec", name_kind="fault kind"
    )
    options = {}
    for key, value in raw_options.items():
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"bad fault option {key!r} in {entry!r}; expected "
                f"key=value with key in {sorted(_SPEC_KEYS)}"
            )
        options[key] = _coerce_value(entry, key, value)
    if "recover" in options:
        options.setdefault("duration", options.pop("recover"))
    options.setdefault("at", 0.0)
    return Fault(kind=kind, **options)


def format_fault_entry(fault: Fault) -> str:
    """The canonical spec string for ``fault``.

    Inverse of :func:`parse_fault_entry`:
    ``parse_fault_entry(format_fault_entry(f)) == f`` for every valid
    fault (defaults are omitted, keys are emitted in sorted order by the
    shared :func:`repro.util.spec.format_spec`).
    """
    options: dict = {"at": fault.at}
    for key in ("src", "dst", "node", "duration", "at_event"):
        value = getattr(fault, key)
        if value is not None:
            options[key] = value
    if fault.factor != 1.0:
        options["factor"] = fault.factor
    if not fault.symmetric:
        options["symmetric"] = False
    return format_spec(fault.kind, options)


def smoke_fault_profile() -> FaultProfile:
    """The deterministic CI preset (sized for ``serve --smoke``: P=8).

    Exercises every kind and both recovery paths: a bandwidth collapse
    (repricing drift), a mid-schedule blackout short enough for capped
    exponential backoff to outwait (>= 1 successful transient retry), a
    mid-schedule permanent link death (>= 1 repair episode, rerouting
    around the dead link), and a node dropout (demand shrinks to the
    survivors).
    """
    return FaultProfile(faults=(
        Fault(kind=BW_COLLAPSE, at=2.0, src=1, dst=2, factor=8.0),
        Fault(kind=BLACKOUT, at=4.0, src=0, dst=1, duration=3.0, at_event=6),
        Fault(kind=LINK_DEAD, at=7.0, src=2, dst=3, at_event=10),
        Fault(kind=NODE_DROP, at=9.0, node=6),
    ))


#: Named profiles accepted anywhere a spec string is.
NAMED_PROFILES = {
    "smoke": smoke_fault_profile,
    "none": FaultProfile,
}


def parse_fault_profile(spec: Optional[str]) -> FaultProfile:
    """Parse a ``;``-separated fault spec or a named preset.

    ``None``, ``""`` and ``"none"`` give the empty profile; ``"smoke"``
    gives :func:`smoke_fault_profile`; anything else is parsed as
    ``kind:key=val,...;kind:key=val,...`` entries.
    """
    if spec is None or not spec.strip():
        return FaultProfile()
    spec = spec.strip()
    named = NAMED_PROFILES.get(spec)
    if named is not None:
        return named()
    faults = [
        parse_fault_entry(entry)
        for entry in spec.split(";")
        if entry.strip()
    ]
    return FaultProfile(faults=tuple(faults))


def format_fault_profile(profile: FaultProfile) -> str:
    """The canonical ``;``-joined spec for ``profile`` (``"none"`` when
    empty); ``parse_fault_profile`` recovers an equal profile."""
    if not profile.faults:
        return "none"
    return ";".join(format_fault_entry(fault) for fault in profile.faults)
