"""Online schedule repair over surviving nodes and links.

Given the availability masks of a failure (who is alive, which links
still work) and the delivered-pair mask of a salvaged partial execution,
:func:`repair_schedule` rebuilds a schedule for the *residual* demand:

1. residual pairs are the undelivered demanded pairs whose endpoints
   both survive; pairs with a dead endpoint are ``lost`` (nobody can
   deliver them);
2. each residual pair is routed — directly when its link is up, else
   via the cheapest surviving 2-hop relay (the restrained indirect
   routing of :mod:`repro.core.indirect`); pairs with no surviving
   route are ``unreachable``;
3. relay-free residuals are compacted onto the surviving nodes and
   handed to the session's own scheduler (so repairing a fault-free
   world is *bit-identical* to never failing); residuals needing relays
   are scheduled with the relay-aware open-shop list scheduler over the
   physical legs.

The result's events live in the original processor index space, shifted
to begin at ``start_time`` (the strike instant plus any backoff waits),
so salvage prefix + repair continuation form one coherent timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.indirect import RelayPlan, schedule_openshop_indirect
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule

Scheduler = Callable[[TotalExchangeProblem], Schedule]

Pair = Tuple[int, int]
Triple = Tuple[int, int, int]


@dataclass(frozen=True)
class RouteSet:
    """How each residual pair travels (or fails to)."""

    direct: Tuple[Pair, ...]
    relayed: Tuple[Triple, ...]
    unreachable: Tuple[Pair, ...]
    lost: Tuple[Pair, ...]

    @property
    def needs_relays(self) -> bool:
        return bool(self.relayed)

    @property
    def resent(self) -> int:
        """Messages the repair re-sends (a relayed one counts once)."""
        return len(self.direct) + len(self.relayed)


@dataclass(frozen=True)
class RepairResult:
    """A repaired continuation schedule plus its routing decisions."""

    schedule: Schedule
    routes: RouteSet
    start_time: float

    @property
    def resent(self) -> int:
        return self.routes.resent

    @property
    def undeliverable(self) -> int:
        return len(self.routes.unreachable) + len(self.routes.lost)

    @property
    def completion_time(self) -> float:
        return self.schedule.completion_time


def split_routes(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    delivered: Optional[np.ndarray] = None,
    alive: Optional[np.ndarray] = None,
    link_ok: Optional[np.ndarray] = None,
) -> RouteSet:
    """Route the residual demand over what survives.

    For a cut pair the relay minimising the serial two-leg time of the
    pair's own payload is chosen among surviving nodes with both legs
    up; a cut pair with no such relay is unreachable.
    """
    sizes = np.asarray(sizes, dtype=float)
    n = snapshot.num_procs
    if alive is None:
        alive = np.ones(n, dtype=bool)
    if link_ok is None:
        link_ok = np.ones((n, n), dtype=bool)
    direct: List[Pair] = []
    relayed: List[Triple] = []
    unreachable: List[Pair] = []
    lost: List[Pair] = []
    for src, dst in zip(*np.nonzero(sizes)):
        src, dst = int(src), int(dst)
        if src == dst:
            continue
        if delivered is not None and delivered[src, dst]:
            continue
        if not (alive[src] and alive[dst]):
            lost.append((src, dst))
            continue
        if link_ok[src, dst]:
            direct.append((src, dst))
            continue
        payload = float(sizes[src, dst])
        best_relay = None
        best_time = np.inf
        for k in range(n):
            if k == src or k == dst or not alive[k]:
                continue
            if not (link_ok[src, k] and link_ok[k, dst]):
                continue
            two_leg = snapshot.transfer_time(
                src, k, payload
            ) + snapshot.transfer_time(k, dst, payload)
            if two_leg < best_time:
                best_relay = k
                best_time = two_leg
        if best_relay is None:
            unreachable.append((src, dst))
        else:
            relayed.append((src, best_relay, dst))
    return RouteSet(
        direct=tuple(direct),
        relayed=tuple(relayed),
        unreachable=tuple(unreachable),
        lost=tuple(lost),
    )


def _compact(
    snapshot: DirectorySnapshot,
    residual_sizes: np.ndarray,
    alive_index: np.ndarray,
) -> Tuple[DirectorySnapshot, np.ndarray]:
    """Slice the world down to the surviving nodes."""
    grid = np.ix_(alive_index, alive_index)
    sub_snapshot = DirectorySnapshot(
        latency=snapshot.latency[grid],
        bandwidth=snapshot.bandwidth[grid],
        time=snapshot.time,
    )
    return sub_snapshot, residual_sizes[grid]


def _expand(
    schedule: Schedule,
    num_procs: int,
    alive_index: np.ndarray,
    start_time: float,
) -> Schedule:
    """Map a compacted schedule back to original indices, shifted."""
    identity = len(alive_index) == num_procs
    if identity and start_time == 0.0:
        return schedule
    back = alive_index.tolist()
    events = [
        CommEvent(
            start=event.start + start_time,
            src=event.src if identity else back[event.src],
            dst=event.dst if identity else back[event.dst],
            duration=event.duration,
            size=event.size,
        )
        for event in schedule.events
    ]
    return Schedule.from_events(num_procs, events)


def repair_schedule(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    delivered: Optional[np.ndarray] = None,
    alive: Optional[np.ndarray] = None,
    link_ok: Optional[np.ndarray] = None,
    scheduler: Optional[Scheduler] = None,
    routes: Optional[RouteSet] = None,
    start_time: float = 0.0,
) -> RepairResult:
    """Reschedule the residual demand over the surviving network.

    Pass ``routes`` to reuse routing decisions made against another
    snapshot (the session plans routes against the directory view, then
    re-executes the same routes under the true costs).  With no faults,
    nothing delivered and ``start_time == 0`` the result is exactly
    ``scheduler(problem)`` — repair of a healthy world is a no-op.
    """
    sizes = np.asarray(sizes, dtype=float)
    n = snapshot.num_procs
    if scheduler is None:
        scheduler = schedule_openshop
    if alive is None:
        alive = np.ones(n, dtype=bool)
    alive = np.asarray(alive, dtype=bool)
    if routes is None:
        routes = split_routes(
            snapshot, sizes,
            delivered=delivered, alive=alive, link_ok=link_ok,
        )

    clean = (
        not routes.needs_relays
        and not routes.unreachable
        and not routes.lost
        and delivered is None
        and bool(alive.all())
        and start_time == 0.0
    )
    if clean:
        problem = TotalExchangeProblem.from_snapshot(snapshot, sizes)
        return RepairResult(
            schedule=scheduler(problem), routes=routes, start_time=0.0,
        )

    residual = np.zeros_like(sizes)
    for src, dst in routes.direct:
        residual[src, dst] = sizes[src, dst]
    for src, _relay, dst in routes.relayed:
        residual[src, dst] = sizes[src, dst]

    alive_index = np.flatnonzero(alive)
    sub_snapshot, sub_sizes = _compact(snapshot, residual, alive_index)
    position = {int(node): k for k, node in enumerate(alive_index)}

    if routes.needs_relays:
        plan = RelayPlan(
            direct=tuple(
                (position[s], position[d]) for s, d in routes.direct
            ),
            relayed=tuple(
                (position[s], position[r], position[d])
                for s, r, d in routes.relayed
            ),
        )
        sub_schedule = schedule_openshop_indirect(
            sub_snapshot, sub_sizes, plan=plan
        )
    else:
        problem = TotalExchangeProblem.from_snapshot(sub_snapshot, sub_sizes)
        sub_schedule = scheduler(problem)

    schedule = _expand(sub_schedule, n, alive_index, start_time)
    return RepairResult(
        schedule=schedule, routes=routes, start_time=start_time,
    )
