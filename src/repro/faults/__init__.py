"""Failure injection and online schedule repair.

The fault-tolerance subsystem: fault models and profiles
(:mod:`repro.faults.models`), a directory wrapper that injects them
(:mod:`repro.faults.directory`), mid-schedule interruption semantics
(:mod:`repro.faults.executor`) and residual-demand repair with 2-hop
relaying (:mod:`repro.faults.repair`).  The adaptive serving runtime
(:mod:`repro.runtime`) composes these into its degraded mode; the
``repro.check`` fault family (:mod:`repro.check.faults`) asserts every
repaired schedule still delivers the surviving demand and passes the
invariant oracle.
"""

from repro.faults.directory import FaultView, FaultyDirectory
from repro.faults.executor import (
    PartialExecution,
    cut_execution,
    merge_with_salvaged,
)
from repro.faults.models import (
    BLACKOUT,
    BW_COLLAPSE,
    FAULT_KINDS,
    Fault,
    FaultProfile,
    LINK_DEAD,
    NODE_DROP,
    NAMED_PROFILES,
    apply_fault_to_snapshot,
    apply_fault_to_state,
    format_fault_entry,
    format_fault_profile,
    parse_fault_entry,
    parse_fault_profile,
    smoke_fault_profile,
)
from repro.faults.repair import (
    RepairResult,
    RouteSet,
    repair_schedule,
    split_routes,
)

__all__ = [
    "BLACKOUT",
    "BW_COLLAPSE",
    "FAULT_KINDS",
    "Fault",
    "FaultProfile",
    "FaultView",
    "FaultyDirectory",
    "LINK_DEAD",
    "NAMED_PROFILES",
    "NODE_DROP",
    "PartialExecution",
    "RepairResult",
    "RouteSet",
    "apply_fault_to_snapshot",
    "apply_fault_to_state",
    "cut_execution",
    "format_fault_entry",
    "format_fault_profile",
    "merge_with_salvaged",
    "parse_fault_entry",
    "parse_fault_profile",
    "repair_schedule",
    "smoke_fault_profile",
    "split_routes",
]
