"""A directory wrapper that injects a :class:`FaultProfile`.

:class:`FaultyDirectory` wraps any
:class:`~repro.directory.service.DirectoryService` and degrades its
answers according to the profile's state at the directory clock:
bandwidth collapses show up in the snapshot numbers; link deaths,
blackouts and node drops are *availability* facts that bandwidth
matrices cannot express (snapshots require strictly positive
bandwidths), so they are reported out-of-band through
:meth:`fault_view` as boolean masks.  The adaptive session detects the
masks by duck-typing and enters degraded mode
(:mod:`repro.runtime.session`).

Like :class:`~repro.directory.noisy.NoisyDirectory`, the wrapper
forwards ``true_snapshot`` so planning noise and failure injection
compose: faults degrade both the observed and the true network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.faults.models import Fault, FaultProfile


@dataclass(frozen=True)
class FaultView:
    """Availability at one instant, as the runtime consumes it.

    ``link_ok`` composes link state with endpoint liveness: a link into
    a dead node is unusable.  ``transient`` marks down links expected
    back (active blackouts) — worth retrying before rerouting.
    """

    alive: np.ndarray  # bool (P,)
    link_ok: np.ndarray  # bool (P, P); diagonal True for live nodes
    transient: np.ndarray  # bool (P, P)

    @property
    def clean(self) -> bool:
        """No active fault at all."""
        return bool(self.alive.all() and self.link_ok.all())

    def degraded_for(self, sizes: np.ndarray) -> bool:
        """Whether any *demanded* pair is dead-ended or cut."""
        demand = np.asarray(sizes) > 0
        np.fill_diagonal(demand, False)
        return bool(np.any(demand & ~self.link_ok))


class FaultyDirectory(DirectoryService):
    """Inject ``profile`` into ``inner``'s answers."""

    def __init__(self, inner: DirectoryService, profile: FaultProfile):
        largest = profile.max_index()
        if largest >= inner.num_procs:
            raise ValueError(
                f"fault profile references processor {largest} but the "
                f"directory only has {inner.num_procs}"
            )
        self._inner = inner
        self._profile = profile

    @property
    def inner(self) -> DirectoryService:
        return self._inner

    @property
    def profile(self) -> FaultProfile:
        return self._profile

    @property
    def num_procs(self) -> int:
        return self._inner.num_procs

    @property
    def time(self) -> float:
        return self._inner.time

    def advance(self, dt: float) -> None:
        self._inner.advance(dt)

    # -- degraded snapshots -------------------------------------------------

    def _degrade(self, snapshot: DirectorySnapshot) -> DirectorySnapshot:
        divisor = self._profile.bandwidth_divisor(self.time, self.num_procs)
        if np.all(divisor == 1.0):
            return snapshot
        return DirectorySnapshot(
            latency=snapshot.latency,
            bandwidth=snapshot.bandwidth / divisor,
            time=snapshot.time,
        )

    def snapshot(self) -> DirectorySnapshot:
        return self._degrade(self._inner.snapshot())

    def true_snapshot(self) -> DirectorySnapshot:
        """The wrapped truth, degraded — collapses are real, not noise."""
        inner_truth = getattr(self._inner, "true_snapshot", None)
        base = inner_truth() if inner_truth is not None else (
            self._inner.snapshot()
        )
        return self._degrade(base)

    # -- availability -------------------------------------------------------

    def fault_view(self) -> FaultView:
        """Availability masks at the current directory time."""
        now = self.time
        n = self.num_procs
        alive = self._profile.node_alive(now, n)
        link_ok = self._profile.link_ok(now, n)
        link_ok &= alive[:, None]
        link_ok &= alive[None, :]
        transient = self._profile.transient_down(now, n)
        return FaultView(alive=alive, link_ok=link_ok, transient=transient)

    def striking_between(self, t0: float, t1: float) -> Tuple[Fault, ...]:
        """Mid-schedule faults firing in ``(t0, t1]`` (earliest first)."""
        return self._profile.striking_between(t0, t1)
