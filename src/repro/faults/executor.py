"""Cutting an executed schedule at a mid-schedule fault strike.

A mid-schedule fault (:class:`repro.faults.models.Fault` with
``at_event`` set) interrupts one serving tick's exchange after its
``at_event``-th positive-duration event completes.  This module computes
what survives the interruption: the salvaged prefix (events already
finished — their bytes arrived, they never need re-sending), the
delivered-pair mask, and the residual dispatch orders for everything
that was in flight or still queued.

Salvage is strict: an event in flight when the fault strikes is treated
as lost even if its link survives — the paper's model has no partial
transfers, so a message either fully arrived or must be re-sent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.timing.events import CommEvent, Schedule

#: Tolerance when comparing event finish times to the strike instant.
_TIE_EPS = 1e-12


@dataclass(frozen=True)
class PartialExecution:
    """What survives a mid-schedule interruption.

    Attributes
    ----------
    salvaged:
        Events that completed at or before the strike (start-sorted),
        including zero-duration markers that had already fired.
    residual_orders:
        Per-sender dispatch lists for every cancelled event, preserving
        the interrupted schedule's send order.
    strike_time:
        Seconds into the tick's exchange at which the fault struck.
    delivered:
        Boolean ``(P, P)`` mask of pairs whose message fully arrived.
    interrupted:
        False when the fault landed after the exchange had already
        finished (nothing to repair this tick).
    salvaged_events / cancelled_events:
        Positive-duration event counts on each side of the cut.
    """

    salvaged: Tuple[CommEvent, ...]
    residual_orders: List[List[int]]
    strike_time: float
    delivered: np.ndarray
    interrupted: bool
    salvaged_events: int
    cancelled_events: int


def cut_execution(schedule: Schedule, at_event: int) -> PartialExecution:
    """Cut ``schedule`` after its ``at_event``-th positive completion.

    ``at_event=0`` strikes before anything completes (only time-zero
    markers survive); ``at_event >= #positive events`` means the fault
    landed after the exchange finished and nothing is interrupted.
    """
    if at_event < 0:
        raise ValueError(f"at_event must be >= 0, got {at_event}")
    n = schedule.num_procs
    events = schedule.events  # start-sorted
    positive_finishes = sorted(
        event.finish for event in events if event.duration > 0
    )
    delivered = np.zeros((n, n), dtype=bool)

    if at_event >= len(positive_finishes):
        for event in events:
            delivered[event.src, event.dst] = True
        return PartialExecution(
            salvaged=events,
            residual_orders=[[] for _ in range(n)],
            strike_time=schedule.completion_time,
            delivered=delivered,
            interrupted=False,
            salvaged_events=len(positive_finishes),
            cancelled_events=0,
        )

    if at_event == 0:
        strike = 0.0
    else:
        strike = positive_finishes[at_event - 1]
    cutoff = strike + _TIE_EPS

    salvaged: List[CommEvent] = []
    residual_orders: List[List[int]] = [[] for _ in range(n)]
    salvaged_events = 0
    cancelled_events = 0
    for event in events:  # start order => residual orders keep dispatch order
        if event.finish <= cutoff:
            salvaged.append(event)
            delivered[event.src, event.dst] = True
            if event.duration > 0:
                salvaged_events += 1
        else:
            residual_orders[event.src].append(event.dst)
            if event.duration > 0:
                cancelled_events += 1
    return PartialExecution(
        salvaged=tuple(salvaged),
        residual_orders=residual_orders,
        strike_time=float(strike),
        delivered=delivered,
        interrupted=True,
        salvaged_events=salvaged_events,
        cancelled_events=cancelled_events,
    )


def shift_events(
    events: Tuple[CommEvent, ...], delta: float
) -> List[CommEvent]:
    """All events translated by ``delta`` seconds (markers included)."""
    if delta == 0.0:
        return list(events)
    return [event.shifted(delta) for event in events]


def merge_with_salvaged(
    salvaged: Tuple[CommEvent, ...],
    continuation: Schedule,
    *,
    offset: float,
) -> Schedule:
    """The tick's final timeline: salvage prefix + shifted continuation."""
    events = list(salvaged)
    events.extend(shift_events(continuation.events, offset))
    return Schedule.from_events(continuation.num_procs, events)
