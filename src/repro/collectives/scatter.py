"""Scatter scheduling under the one-port heterogeneous model.

The root holds a distinct block for every other node.  Two strategies:

* :func:`scatter_direct` — the root sends every block itself.  Under the
  one-port model the makespan is the root's total send time regardless
  of order, but the *order* decides when each destination gets its data;
  the default shortest-send-first order minimises average completion.
* :func:`scatter_via_tree` — store-and-forward over a spanning tree: the
  root ships whole subtree bundles to relay nodes, which split and
  forward.  Bundling pays the relay's bandwidth twice but parallelises
  the fan-out — on heterogeneous wide-area networks with a slow root
  uplink this wins exactly like tree broadcast does.

Blocks are given as a per-destination byte array; transfer costs come
from a directory snapshot (latency + bytes/bandwidth), since bundles
change message sizes and a fixed cost matrix would not apply.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.collectives.broadcast import Tree, _check_tree
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_index


def _check_blocks(blocks: Sequence[float], num_procs: int) -> np.ndarray:
    arr = np.asarray(blocks, dtype=float)
    if arr.shape != (num_procs,):
        raise ValueError(
            f"need one block size per node, got shape {arr.shape} for "
            f"{num_procs} nodes"
        )
    if np.any(arr < 0):
        raise ValueError("block sizes must be non-negative")
    return arr


def scatter_direct(
    snapshot: DirectorySnapshot,
    blocks: Sequence[float],
    root: int = 0,
    *,
    order: Optional[Sequence[int]] = None,
) -> Schedule:
    """Root-only scatter; ``order`` defaults to shortest send first."""
    n = snapshot.num_procs
    check_index("root", root, n)
    blocks = _check_blocks(blocks, n)
    destinations = [j for j in range(n) if j != root and blocks[j] > 0]
    if order is not None:
        order = [int(j) for j in order]
        if sorted(order) != sorted(destinations):
            raise ValueError(
                "order must be a permutation of the destinations with data"
            )
    else:
        order = sorted(
            destinations,
            key=lambda j: (snapshot.transfer_time(root, j, blocks[j]), j),
        )
    events: List[CommEvent] = []
    clock = 0.0
    for dst in order:
        duration = snapshot.transfer_time(root, dst, blocks[dst])
        events.append(
            CommEvent(
                start=clock, src=root, dst=dst, duration=duration,
                size=float(blocks[dst]),
            )
        )
        clock += duration
    return Schedule.from_events(n, events)


def _subtree_bytes(
    tree: Tree, blocks: np.ndarray, node: int, cache: Dict[int, float]
) -> float:
    if node in cache:
        return cache[node]
    total = float(blocks[node])
    for child in tree.get(node, []):
        total += _subtree_bytes(tree, blocks, child, cache)
    cache[node] = total
    return total


def scatter_via_tree(
    snapshot: DirectorySnapshot,
    blocks: Sequence[float],
    tree: Tree,
    root: int = 0,
) -> Schedule:
    """Store-and-forward tree scatter with bundled subtree payloads.

    Each node, once it holds its subtree's bundle, forwards each child's
    sub-bundle in the tree's child order (sends serialise); the child
    starts forwarding after its bundle fully arrives.
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    blocks = _check_blocks(blocks, n)
    _check_tree(tree, n, root)

    bundle: Dict[int, float] = {}
    _subtree_bytes(tree, blocks, root, bundle)

    events: List[CommEvent] = []
    ready = {root: 0.0}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        clock = ready[node]
        for child in tree.get(node, []):
            size = bundle[child]
            duration = snapshot.transfer_time(node, child, size)
            if size > 0:
                events.append(
                    CommEvent(
                        start=clock, src=node, dst=child,
                        duration=duration, size=size,
                    )
                )
                clock += duration
            ready[child] = clock
            frontier.append(child)
    return Schedule.from_events(n, events)


def scatter_completion_per_destination(schedule: Schedule) -> Dict[int, float]:
    """When each destination's own block has fully arrived.

    For tree scatter this is the arrival of the node's *bundle* (its own
    block travels inside it).
    """
    arrival: Dict[int, float] = {}
    for event in schedule:
        arrival[event.dst] = max(arrival.get(event.dst, 0.0), event.finish)
    return arrival
