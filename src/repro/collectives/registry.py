"""Uniform collective registry (the scheduler registry's sibling).

Every registered collective shares the signature
``collective(snapshot: DirectorySnapshot, size_bytes: float)
-> CollectiveResult`` regardless of the underlying entry point's shape
(cost-matrix broadcasts, block-sequence scatters, ``(Schedule, float)``
reductions).  The registry mirrors :mod:`repro.core.registry` exactly:
each algorithm is a :class:`CollectiveSpec` carrying the callable plus
metadata, :func:`iter_collective_specs` enumerates them,
:func:`get_collective` resolves a name to its default-configured
callable, and :func:`make_collective` builds parameterized variants
(root choice, combine rates, ring orders, exchange scheduler) from
stable string names with keyword-only options.

The legacy ``ALL_COLLECTIVES`` dict (deprecated since this registry
landed) has been removed — use ``iter_collective_specs(family=...)``
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.collectives.allreduce import (
    allreduce_log_tree,
    allreduce_rs_ag,
)
from repro.collectives.barrier import (
    dissemination_barrier,
    tournament_barrier,
)
from repro.collectives.broadcast import (
    binomial_tree,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
)
from repro.collectives.direct import (
    DIRECT_TOPOLOGIES,
    alltoall_direct_plan,
)
from repro.collectives.logrounds import (
    allbroadcast_plan,
    broadcast_log_plan,
    reduction_log_plan,
)
from repro.collectives.gather import gather_direct, gather_via_tree
from repro.collectives.patterns import allgather_problem, alltoall_problem
from repro.collectives.reduce import (
    allreduce_ring,
    allreduce_tree,
    reduce_direct,
    reduce_via_tree,
)
from repro.collectives.scatter import scatter_direct, scatter_via_tree
from repro.core.registry import make_scheduler
from repro.directory.service import DirectorySnapshot
from repro.model.cost import cost_matrix
from repro.timing.events import Schedule
from repro.util.spec import format_spec, parse_spec
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CollectiveResult:
    """One collective execution under the paper's communication model.

    ``completion_time`` can exceed ``schedule.completion_time`` when the
    collective performs local work the communication timeline does not
    show (reduction combines).
    """

    schedule: Schedule
    completion_time: float


#: The uniform calling convention every registered collective shares.
Collective = Callable[[DirectorySnapshot, float], CollectiveResult]


def _uniform_sizes(snapshot: DirectorySnapshot, size_bytes: float) -> np.ndarray:
    sizes = np.full(
        (snapshot.num_procs, snapshot.num_procs), float(size_bytes)
    )
    np.fill_diagonal(sizes, 0.0)
    return sizes


def _result(schedule: Schedule, completion: Optional[float] = None) -> CollectiveResult:
    if completion is None:
        completion = schedule.completion_time
    return CollectiveResult(schedule=schedule, completion_time=float(completion))


@dataclass(frozen=True)
class CollectiveSpec:
    """Registry entry: one collective plus the metadata consumers need.

    Attributes
    ----------
    name:
        Stable public string name (``make_collective(name)``).
    fn:
        The collective with default options, signature
        ``(snapshot, size_bytes) -> CollectiveResult``.
    family:
        ``"rooted"`` (single-root: broadcast/scatter/gather/reduce),
        ``"allreduce"``, ``"barrier"`` (size-free synchronisation) or
        ``"exchange"`` (patterns reduced to total exchange and solved by
        a registry scheduler).
    complexity:
        Asymptotic scheduling cost in ``P``.
    paper_section:
        Where the paper (or this repo's extension docs) motivates it.
    options:
        Allowed ``make_collective`` keyword options mapped to their
        defaults (empty for collectives without tunables).
    factory:
        Builds a configured callable from the options; None means the
        collective takes no options and ``fn`` is the only form.
    summary:
        One-line description for ``--list-collectives`` style output.
    """

    name: str
    fn: Collective
    family: str
    complexity: str
    paper_section: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)
    factory: Optional[Callable[..., Collective]] = None
    summary: str = ""

    def build(self, **options: Any) -> Collective:
        """A configured collective; no options returns :attr:`fn`."""
        if not options:
            return self.fn
        if self.factory is None:
            raise TypeError(
                f"collective {self.name!r} takes no options, "
                f"got {sorted(options)}"
            )
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            raise TypeError(
                f"unknown option(s) {unknown} for collective "
                f"{self.name!r}; allowed: {sorted(self.options)}"
            )
        merged = {**self.options, **options}
        collective = self.factory(**merged)
        label = ", ".join(f"{k}={merged[k]!r}" for k in sorted(merged))
        collective.__name__ = f"{self.name}({label})"
        collective.__qualname__ = collective.__name__
        return collective


# ---------------------------------------------------------------------------
# Adapters: heterogeneous entry points -> the uniform signature.
# ---------------------------------------------------------------------------


def _broadcast_factory(variant: str) -> Callable[..., Collective]:
    entry = {
        "binomial": schedule_broadcast_binomial,
        "fnf": schedule_broadcast_fnf,
    }[variant]

    def factory(*, root: int = 0) -> Collective:
        def collective(
            snapshot: DirectorySnapshot, size_bytes: float
        ) -> CollectiveResult:
            cost = cost_matrix(snapshot, _uniform_sizes(snapshot, size_bytes))
            return _result(entry(cost, root))

        return collective

    return factory


def _scatter_factory(*, root: int = 0, tree: bool = False) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        check_positive("size_bytes", size_bytes)
        blocks = np.full(snapshot.num_procs, float(size_bytes))
        blocks[root] = 0.0
        if tree:
            schedule = scatter_via_tree(
                snapshot, blocks, binomial_tree(snapshot.num_procs, root),
                root,
            )
        else:
            schedule = scatter_direct(snapshot, blocks, root)
        return _result(schedule)

    return collective


def _gather_factory(*, root: int = 0, tree: bool = False) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        check_positive("size_bytes", size_bytes)
        blocks = np.full(snapshot.num_procs, float(size_bytes))
        blocks[root] = 0.0
        if tree:
            schedule = gather_via_tree(
                snapshot, blocks, binomial_tree(snapshot.num_procs, root),
                root,
            )
        else:
            schedule = gather_direct(snapshot, blocks, root)
        return _result(schedule)

    return collective


def _reduce_factory(
    *, root: int = 0, tree: bool = False, combine_rate: float = 1e9
) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        if tree:
            schedule, done = reduce_via_tree(
                snapshot, size_bytes,
                binomial_tree(snapshot.num_procs, root), root,
                combine_rate=combine_rate,
            )
        else:
            schedule, done = reduce_direct(
                snapshot, size_bytes, root, combine_rate=combine_rate
            )
        return _result(schedule, done)

    return collective


def _allreduce_ring_factory(*, combine_rate: float = 1e9) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        schedule, done = allreduce_ring(
            snapshot, size_bytes, combine_rate=combine_rate
        )
        return _result(schedule, done)

    return collective


def _allreduce_tree_factory(
    *, root: int = 0, combine_rate: float = 1e9
) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        schedule, done = allreduce_tree(
            snapshot, size_bytes,
            binomial_tree(snapshot.num_procs, root), root,
            combine_rate=combine_rate,
        )
        return _result(schedule, done)

    return collective


def _barrier_dissemination(
    snapshot: DirectorySnapshot, size_bytes: float = 0.0
) -> CollectiveResult:
    schedule, done = dissemination_barrier(snapshot)
    return _result(schedule, done)


def _barrier_tournament_factory(*, champion: int = 0) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float = 0.0
    ) -> CollectiveResult:
        schedule, done = tournament_barrier(snapshot, champion=champion)
        return _result(schedule, done)

    return collective


def _broadcast_log_factory(*, root: int = 0) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        plan = broadcast_log_plan(snapshot, size_bytes, root=root)
        return _result(plan.schedule, plan.completion_time)

    return collective


def _allbroadcast(
    snapshot: DirectorySnapshot, size_bytes: float
) -> CollectiveResult:
    plan = allbroadcast_plan(snapshot, size_bytes)
    return _result(plan.schedule, plan.completion_time)


def _reduction_factory(
    *, root: int = 0, combine_rate: float = 1e9
) -> Collective:
    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        plan = reduction_log_plan(
            snapshot, size_bytes, root=root, combine_rate=combine_rate
        )
        return _result(plan.schedule, plan.completion_time)

    return collective


def _allreduce_factory(
    *, variant: str = "ring", root: int = 0, combine_rate: float = 1e9
) -> Collective:
    if variant not in ("ring", "tree"):
        raise ValueError(
            f"unknown allreduce variant {variant!r}; known: ring, tree"
        )

    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        if variant == "tree":
            plan = allreduce_log_tree(
                snapshot, size_bytes, root=root, combine_rate=combine_rate
            )
        else:
            plan = allreduce_rs_ag(
                snapshot, size_bytes, combine_rate=combine_rate
            )
        return _result(plan.schedule, plan.completion_time)

    return collective


def _alltoall_direct_factory(
    *, topology: str = "ring", dims: str = "auto"
) -> Collective:
    if topology not in DIRECT_TOPOLOGIES:
        raise KeyError(
            f"unknown topology {topology!r}; "
            f"known: {', '.join(DIRECT_TOPOLOGIES)}"
        )
    resolved_dims = None if dims in ("", "auto") else dims

    def collective(
        snapshot: DirectorySnapshot, size_bytes: float
    ) -> CollectiveResult:
        plan = alltoall_direct_plan(
            snapshot, size_bytes, topology=topology, dims=resolved_dims
        )
        return _result(plan.schedule, plan.completion_time)

    return collective


def _exchange_factory(pattern: str) -> Callable[..., Collective]:
    builder = {
        "allgather": allgather_problem,
        "alltoall": alltoall_problem,
    }[pattern]

    def factory(*, scheduler: str = "openshop") -> Collective:
        solve = make_scheduler(scheduler)

        def collective(
            snapshot: DirectorySnapshot, size_bytes: float
        ) -> CollectiveResult:
            return _result(solve(builder(snapshot, size_bytes)))

        return collective

    return factory


# ---------------------------------------------------------------------------
# The specs, grouped by family.
# ---------------------------------------------------------------------------

_SPEC_LIST = [
    CollectiveSpec(
        name="broadcast_binomial",
        fn=_broadcast_factory("binomial")(),
        family="rooted",
        complexity="O(P log P)",
        paper_section="3 (general patterns)",
        options={"root": 0},
        factory=_broadcast_factory("binomial"),
        summary="binomial-tree broadcast (homogeneous baseline)",
    ),
    CollectiveSpec(
        name="broadcast_fnf",
        fn=_broadcast_factory("fnf")(),
        family="rooted",
        complexity="O(P^3)",
        paper_section="3 (general patterns)",
        options={"root": 0},
        factory=_broadcast_factory("fnf"),
        summary="earliest-completion-first heterogeneous broadcast",
    ),
    CollectiveSpec(
        name="broadcast_log",
        fn=_broadcast_log_factory(),
        family="rooted",
        complexity="O(P^2 log P)",
        paper_section="Traff 2024 (optimal log-round broadcast)",
        options={"root": 0},
        factory=_broadcast_log_factory,
        summary="ceil(log2 P)-round broadcast, greedy heterogeneous "
        "pairing per round",
    ),
    CollectiveSpec(
        name="scatter_direct",
        fn=_scatter_factory(),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0},
        factory=lambda *, root=0: _scatter_factory(root=root),
        summary="root-only serial scatter, shortest send first",
    ),
    CollectiveSpec(
        name="scatter_tree",
        fn=_scatter_factory(tree=True),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0},
        factory=lambda *, root=0: _scatter_factory(root=root, tree=True),
        summary="store-and-forward binomial-tree scatter, bundled payloads",
    ),
    CollectiveSpec(
        name="gather_direct",
        fn=_gather_factory(),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0},
        factory=lambda *, root=0: _gather_factory(root=root),
        summary="all-to-root gather; the root's receive port serialises",
    ),
    CollectiveSpec(
        name="gather_tree",
        fn=_gather_factory(tree=True),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0},
        factory=lambda *, root=0: _gather_factory(root=root, tree=True),
        summary="bundled binomial-tree gather",
    ),
    CollectiveSpec(
        name="reduce_direct",
        fn=_reduce_factory(),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0, "combine_rate": 1e9},
        factory=lambda *, root=0, combine_rate=1e9: _reduce_factory(
            root=root, combine_rate=combine_rate
        ),
        summary="naive all-to-root reduction with serial combines",
    ),
    CollectiveSpec(
        name="reduce_tree",
        fn=_reduce_factory(tree=True),
        family="rooted",
        complexity="O(P log P)",
        options={"root": 0, "combine_rate": 1e9},
        factory=lambda *, root=0, combine_rate=1e9: _reduce_factory(
            root=root, tree=True, combine_rate=combine_rate
        ),
        summary="binomial-tree reduction",
    ),
    CollectiveSpec(
        name="reduction",
        fn=_reduction_factory(),
        family="rooted",
        complexity="O(P^2 log P)",
        paper_section="Traff 2024 (optimal log-round reduction)",
        options={"root": 0, "combine_rate": 1e9},
        factory=_reduction_factory,
        summary="ceil(log2 P)-round reduction: active set halves with "
        "greedy heterogeneous pairing",
    ),
    CollectiveSpec(
        name="allreduce_ring",
        fn=_allreduce_ring_factory(),
        family="allreduce",
        complexity="O(P)",
        options={"combine_rate": 1e9},
        factory=_allreduce_ring_factory,
        summary="ring all-reduce (2(P-1) lockstep chunk rotations)",
    ),
    CollectiveSpec(
        name="allreduce_tree",
        fn=_allreduce_tree_factory(),
        family="allreduce",
        complexity="O(P log P)",
        options={"root": 0, "combine_rate": 1e9},
        factory=_allreduce_tree_factory,
        summary="reduce-to-root + tree broadcast of the result",
    ),
    CollectiveSpec(
        name="allreduce",
        fn=_allreduce_factory(),
        family="allreduce",
        complexity="O(P^2)",
        paper_section="Traff 2024 / bandwidth-optimal ring",
        options={"variant": "ring", "root": 0, "combine_rate": 1e9},
        factory=_allreduce_factory,
        summary="straggler-aware pipelined reduce-scatter + all-gather "
        "ring (variant=tree: log-round reduce + broadcast)",
    ),
    CollectiveSpec(
        name="barrier_dissemination",
        fn=_barrier_dissemination,
        family="barrier",
        complexity="O(P log P)",
        summary="dissemination barrier: ceil(log2 P) shifted signal rounds",
    ),
    CollectiveSpec(
        name="barrier_tournament",
        fn=_barrier_tournament_factory(),
        family="barrier",
        complexity="O(P log P)",
        options={"champion": 0},
        factory=_barrier_tournament_factory,
        summary="tournament barrier: binomial gather-up then release-down",
    ),
    CollectiveSpec(
        name="allgather",
        fn=_exchange_factory("allgather")(),
        family="exchange",
        complexity="scheduler-dependent",
        paper_section="3 (general patterns)",
        options={"scheduler": "openshop"},
        factory=_exchange_factory("allgather"),
        summary="all-gather as total exchange, solved by a registry "
        "scheduler",
    ),
    CollectiveSpec(
        name="alltoall",
        fn=_exchange_factory("alltoall")(),
        family="exchange",
        complexity="scheduler-dependent",
        paper_section="3 (general patterns)",
        options={"scheduler": "openshop"},
        factory=_exchange_factory("alltoall"),
        summary="uniform all-to-all as total exchange, solved by a "
        "registry scheduler",
    ),
    CollectiveSpec(
        name="allbroadcast",
        fn=_allbroadcast,
        family="exchange",
        complexity="O(P log P)",
        paper_section="Traff 2024 (optimal log-round all-broadcast)",
        summary="Bruck-style all-broadcast: ceil(log2 P) doubling "
        "rounds of bundled blocks",
    ),
    CollectiveSpec(
        name="alltoall_direct",
        fn=_alltoall_direct_factory(),
        family="exchange",
        complexity="O(P^2 D)",
        paper_section="Basu 2023 (direct-connect all-to-all)",
        options={"topology": "ring", "dims": "auto"},
        factory=_alltoall_direct_factory,
        summary="fabric-constrained all-to-all: dimension-ordered shift "
        "rounds on ring/torus/hypercube links",
    ),
]

_SPECS: Dict[str, CollectiveSpec] = {spec.name: spec for spec in _SPEC_LIST}

_FAMILIES = ("rooted", "allreduce", "barrier", "exchange")


def iter_collective_specs(
    family: Optional[str] = None,
) -> Iterator[CollectiveSpec]:
    """Iterate registered specs, optionally restricted to one family.

    Order is stable: rooted collectives, all-reduces, barriers,
    exchange patterns.
    """
    if family is not None and family not in _FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; expected one of {_FAMILIES}"
        )
    for spec in _SPECS.values():
        if family is None or spec.family == family:
            yield spec


def get_collective_spec(name: str) -> CollectiveSpec:
    """The spec registered under ``name`` (KeyError with the known list)."""
    spec = _SPECS.get(name)
    if spec is None:
        known = ", ".join(_SPECS)
        raise KeyError(f"unknown collective {name!r}; known: {known}")
    return spec


def collective_names() -> Tuple[str, ...]:
    """All registered collective names, in registry order."""
    return tuple(_SPECS)


def get_collective(name: str) -> Collective:
    """Look up a collective by name, default-configured."""
    return get_collective_spec(name).fn


def parse_collective_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """``"allreduce:variant=tree" -> ("allreduce", {"variant": "tree"})``.

    The same ``name[:key=value,...]`` grammar as directory specs, with
    one deterministic error per failure mode: ``ValueError`` naming a
    malformed or duplicated ``key=value`` token, ``KeyError`` for an
    unknown collective (listing the known names).
    """
    return parse_spec(spec, tuple(_SPECS), kind="collective")


def format_collective_spec(
    name: str, options: Optional[Mapping[str, Any]] = None
) -> str:
    """Canonical inverse of :func:`parse_collective_spec`."""
    get_collective_spec(name)  # KeyError with the known list
    return format_spec(name, options)


def make_collective(name: str, **options: Any) -> Collective:
    """Build a collective from its stable name and keyword-only options.

    Mirrors :func:`repro.core.registry.make_scheduler`:
    ``make_collective("broadcast_fnf", root=3)``,
    ``make_collective("alltoall", scheduler="min_matching")``, ...
    The name may also be a full spec string in the directory grammar —
    ``make_collective("allreduce:variant=tree")`` — with explicit
    keyword options overriding the spec string's.  Raises ``KeyError``
    for unknown names (listing the known ones), ``ValueError`` for a
    malformed spec string (naming the bad token) and ``TypeError`` for
    options the collective does not accept.
    """
    if ":" in name:
        name, parsed = parse_collective_spec(name)
        parsed.update(options)
        options = parsed
    return get_collective_spec(name).build(**options)

