"""Gather scheduling under the one-port heterogeneous model.

The mirror image of scatter: every node holds a block bound for the
root, whose *receive* port is the serialising resource.

* :func:`gather_direct` — every node sends straight to the root; the
  root receives one block at a time (order configurable, shortest first
  by default).
* :func:`gather_via_tree` — children push bundles up a spanning tree;
  each relay concatenates its subtree before forwarding.  Parallelises
  the leaf uploads at the price of re-sending bundled bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.collectives.broadcast import Tree, _check_tree
from repro.collectives.scatter import _check_blocks, _subtree_bytes
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_index


def gather_direct(
    snapshot: DirectorySnapshot,
    blocks: Sequence[float],
    root: int = 0,
    *,
    order: Optional[Sequence[int]] = None,
) -> Schedule:
    """All-to-root gather; the root's receive port serialises."""
    n = snapshot.num_procs
    check_index("root", root, n)
    blocks = _check_blocks(blocks, n)
    sources = [j for j in range(n) if j != root and blocks[j] > 0]
    if order is not None:
        order = [int(j) for j in order]
        if sorted(order) != sorted(sources):
            raise ValueError("order must be a permutation of the sources")
    else:
        order = sorted(
            sources,
            key=lambda j: (snapshot.transfer_time(j, root, blocks[j]), j),
        )
    events: List[CommEvent] = []
    clock = 0.0
    for src in order:
        duration = snapshot.transfer_time(src, root, blocks[src])
        events.append(
            CommEvent(
                start=clock, src=src, dst=root, duration=duration,
                size=float(blocks[src]),
            )
        )
        clock += duration
    return Schedule.from_events(n, events)


def gather_via_tree(
    snapshot: DirectorySnapshot,
    blocks: Sequence[float],
    tree: Tree,
    root: int = 0,
) -> Schedule:
    """Bundled tree gather.

    Post-order: a node forwards its subtree bundle to its parent once it
    has received every child's bundle; a parent's receive port accepts
    one child bundle at a time, and a child's upload cannot start before
    that child has assembled its own subtree.
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    blocks = _check_blocks(blocks, n)
    _check_tree(tree, n, root)

    bundle: Dict[int, float] = {}
    _subtree_bytes(tree, blocks, root, bundle)

    events: List[CommEvent] = []

    def collect(node: int) -> float:
        """Time at which ``node`` holds its whole subtree; emits events."""
        recv_free = 0.0
        for child in tree.get(node, []):
            child_ready = collect(child)
            size = bundle[child]
            if size == 0:
                continue
            start = max(recv_free, child_ready)
            duration = snapshot.transfer_time(child, node, size)
            events.append(
                CommEvent(
                    start=start, src=child, dst=node,
                    duration=duration, size=size,
                )
            )
            recv_free = start + duration
        return recv_free

    collect(root)
    return Schedule.from_events(n, events)
