"""Reduce-scatter + all-gather ring all-reduce, straggler-aware.

The bandwidth-optimal all-reduce: each node ships exactly
``2 (P-1) / P`` times the block size — ``P-1`` reduce-scatter chunk
rotations followed by ``P-1`` all-gather rotations.  Two departures from
the textbook construction matter under the paper's heterogeneous model:

* **ring order** — :func:`straggler_aware_ring` orders the ring by a
  nearest-neighbour walk over the symmetrised per-chunk link costs, so
  a straggling node sits between its two cheapest peers instead of
  splitting two fast nodes;
* **pipelining** — steps are not lockstep.  Each (step, edge) event
  starts as soon as the sender's port, the receiver's port and the
  outgoing chunk are ready, so one slow link delays only the chunks
  routed through it instead of gating a global step barrier (the
  existing ``allreduce_ring`` spec keeps the lockstep semantics for
  comparison).

The per-step recurrence is vectorized over ring positions and the
2P(P-1) events are emitted through the lazy columnar Schedule
constructor, so planning stays fast at the serving scales (P >= 512).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.logrounds import (
    RoundEntry,
    RoundPlan,
    broadcast_log_plan,
    plan_from_entries,
    reduction_log_plan,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.events import Schedule, schedule_from_unsorted_columns
from repro.util.validation import check_positive


@dataclass(frozen=True)
class AllreducePlan:
    """A pipelined ring all-reduce schedule plus its oracle metadata.

    The parallel arrays are in emission order (step-major, ring-position
    minor); ``chunk_index[e]`` names which of the P block chunks event
    ``e`` carries, so the oracle can replay contribution flow without
    re-deriving it from the (sorted) Schedule view.
    """

    num_procs: int
    schedule: Schedule
    ring: Tuple[int, ...]
    steps: int
    chunk_bytes: float
    completion_time: float
    starts: np.ndarray
    srcs: np.ndarray
    dsts: np.ndarray
    durations: np.ndarray
    step_index: np.ndarray
    chunk_index: np.ndarray


def straggler_aware_ring(
    snapshot: DirectorySnapshot, chunk_bytes: float
) -> Tuple[int, ...]:
    """A ring order adapted to the measured link costs.

    Nearest-neighbour walk from node 0 over the symmetrised one-chunk
    transfer times ``max(c, c.T)``: every hop picks the cheapest unused
    peer, so expensive links (stragglers, cross-cluster hops) are
    crossed as few times as the walk can manage.  Deterministic: ties
    resolve to the lowest node index.
    """
    n = snapshot.num_procs
    if n <= 2:
        return tuple(range(n))
    cost = snapshot.latency + float(chunk_bytes) / snapshot.bandwidth
    cost = np.maximum(cost, cost.T)
    np.fill_diagonal(cost, np.inf)
    order = [0]
    used = np.zeros(n, dtype=bool)
    used[0] = True
    current = 0
    for _ in range(n - 1):
        row = np.where(used, np.inf, cost[current])
        current = int(np.argmin(row))
        order.append(current)
        used[current] = True
    return tuple(order)


def allreduce_rs_ag(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    ring: Optional[Sequence[int]] = None,
    combine_rate: float = 1e9,
) -> AllreducePlan:
    """Pipelined reduce-scatter + all-gather ring all-reduce.

    ``2 (P-1)`` steps of P chunk rotations each.  At step ``s`` ring
    position ``k`` sends chunk ``(k - s) mod P`` to position ``k + 1``;
    the first ``P-1`` steps fold the arriving chunk into the local
    partial (at ``chunk_bytes / combine_rate`` seconds per combine),
    the rest circulate the fully reduced chunks.  Event starts follow
    the per-position recurrence ``max(send port, receiver port, chunk
    ready)`` — no global step barrier.
    """
    n = snapshot.num_procs
    check_positive("block_bytes", block_bytes, allow_zero=True)
    check_positive("combine_rate", combine_rate)
    empty = np.empty(0)
    empty_ix = np.empty(0, dtype=np.intp)
    if n == 1:
        return AllreducePlan(
            num_procs=1,
            schedule=schedule_from_unsorted_columns(
                1, empty, empty_ix, empty_ix, empty, empty
            ),
            ring=(0,),
            steps=0,
            chunk_bytes=float(block_bytes),
            completion_time=0.0,
            starts=empty, srcs=empty_ix, dsts=empty_ix, durations=empty,
            step_index=empty_ix, chunk_index=empty_ix,
        )
    chunk = float(block_bytes) / n
    if ring is None:
        ring = straggler_aware_ring(snapshot, chunk)
    ring = tuple(int(node) for node in ring)
    if sorted(ring) != list(range(n)):
        raise ValueError(
            f"ring must be a permutation of range({n}), got {ring!r}"
        )
    order = np.asarray(ring, dtype=np.intp)
    succ = np.roll(order, -1)
    edge_dur = (
        snapshot.latency[order, succ]
        + chunk / snapshot.bandwidth[order, succ]
    )
    combine = chunk / float(combine_rate)
    steps = 2 * (n - 1)
    send_free = np.zeros(n)
    recv_free = np.zeros(n)  # indexed by ring position of the *receiver*
    prev_finish = np.zeros(n)
    starts_all = np.empty((steps, n))
    for step in range(steps):
        if step == 0:
            chunk_ready = np.zeros(n)
        else:
            # position k forwards what arrived over edge k-1 last step,
            # combined first while the previous step was reduce-scatter
            chunk_ready = np.roll(prev_finish, 1)
            if step <= n - 1:
                chunk_ready = chunk_ready + combine
        start = np.maximum(
            np.maximum(send_free, np.roll(recv_free, -1)), chunk_ready
        )
        finish = start + edge_dur
        send_free = finish
        recv_free = np.roll(finish, 1)
        prev_finish = finish
        starts_all[step] = start
    positions = np.arange(n, dtype=np.intp)
    step_ids = np.arange(steps, dtype=np.intp)
    starts = starts_all.reshape(-1)
    srcs = np.tile(order, steps)
    dsts = np.tile(succ, steps)
    durations = np.tile(edge_dur, steps)
    sizes = np.full(steps * n, chunk)
    step_index = np.repeat(step_ids, n)
    chunk_index = (
        (positions[None, :] - step_ids[:, None]) % n
    ).reshape(-1).astype(np.intp)
    schedule = schedule_from_unsorted_columns(
        n, starts, srcs, dsts, durations, sizes
    )
    return AllreducePlan(
        num_procs=n,
        schedule=schedule,
        ring=ring,
        steps=steps,
        chunk_bytes=chunk,
        completion_time=float(prev_finish.max()),
        starts=starts, srcs=srcs, dsts=dsts, durations=durations,
        step_index=step_index, chunk_index=chunk_index,
    )


def allreduce_log_tree(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    root: int = 0,
    combine_rate: float = 1e9,
) -> RoundPlan:
    """Tree all-reduce: log-round reduction, then log-round broadcast.

    Latency-optimal composition (``2 ceil(log2 P)`` rounds of one block
    each) for small payloads where the ring's ``2 (P-1)`` chunk
    latencies dominate; volume per node is up to the full block, so the
    ring wins for large payloads.
    """
    n = snapshot.num_procs
    reduce_plan = reduction_log_plan(
        snapshot, block_bytes, root=root, combine_rate=combine_rate
    )
    bcast_plan = broadcast_log_plan(snapshot, block_bytes, root=root)
    offset = reduce_plan.completion_time
    everyone = tuple(range(n))
    entries: List[RoundEntry] = list(reduce_plan.entries)
    for entry in bcast_plan.entries:
        entries.append(RoundEntry(
            entry.round + reduce_plan.rounds,
            entry.start + offset,
            entry.src,
            entry.dst,
            entry.duration,
            everyone,
            entry.size,
        ))
    return plan_from_entries(
        n, entries,
        reduce_plan.rounds + bcast_plan.rounds,
        offset + bcast_plan.completion_time,
    )
