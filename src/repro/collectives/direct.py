"""Direct-connect all-to-all: Basu-style topology factorizations.

Basu et al. 2023 ("Efficient All-to-All Collective Communication
Schedules for Direct-Connect Topologies") build all-to-all schedules
that only use a fabric's physical links by factoring the exchange into
per-dimension shift rounds.  This module expresses ring, torus and
hypercube fabrics as mixed-radix grids (a ring is a 1-D torus, a
hypercube a ``2 x 2 x ... x 2`` torus) and routes every personalized
``(origin, dest)`` block dimension by dimension: along axis ``a`` of
extent ``d_a``, ``d_a - 1`` unidirectional ring-shift rounds move each
block to the node matching its destination's axis-``a`` coordinate,
bundling all co-routed blocks into one message per (node, round).

Timing follows the paper's heterogeneous model: each bundle costs
``T_ij + m/B_ij`` on its physical link, and starts as soon as the
sender's port, the receiver's port and every bundled block are
available — nodes do not wait for a global round barrier.  Every event
travels a fabric edge, which the ``check --collectives`` oracle asserts
via :func:`fabric_edges`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.collectives.logrounds import RoundEntry
from repro.directory.service import DirectorySnapshot
from repro.timing.events import Schedule, schedule_from_unsorted_columns
from repro.util.validation import check_positive

#: Fabric names accepted by :func:`alltoall_direct_plan`.
DIRECT_TOPOLOGIES = ("ring", "torus", "hypercube")

DimsLike = Union[None, str, Sequence[int]]


@dataclass(frozen=True)
class DirectExchangePlan:
    """A direct-connect all-to-all schedule plus its oracle metadata.

    ``entries`` carry ``(origin, dest)`` block-id payloads in emission
    order so the oracle can replay block flow; ``rounds`` counts shift
    rounds across all dimensions (``sum(d_a - 1)``, i.e. ``log2 P`` on
    a hypercube).
    """

    num_procs: int
    schedule: Schedule
    topology: str
    dims: Tuple[int, ...]
    rounds: int
    entries: Tuple[RoundEntry, ...]
    completion_time: float


def parse_dims(dims: DimsLike, num_procs: int) -> Optional[Tuple[int, ...]]:
    """``"4x8"`` / ``"4,8"`` / ``(4, 8)`` -> ``(4, 8)``; '' / None -> None.

    Validates every extent is a positive integer and the product matches
    the processor count.
    """
    if dims is None:
        return None
    if isinstance(dims, str):
        text = dims.strip()
        if not text:
            return None
        parts = text.replace("x", ",").split(",")
        try:
            extents = tuple(int(part) for part in parts)
        except ValueError:
            raise ValueError(
                f"malformed dims {dims!r}; expected extents like '4x8'"
            ) from None
    else:
        extents = tuple(int(d) for d in dims)
    if not extents or any(d < 1 for d in extents):
        raise ValueError(f"dims must be positive extents, got {dims!r}")
    product = 1
    for d in extents:
        product *= d
    if product != num_procs:
        raise ValueError(
            f"dims {extents} multiply to {product}, expected {num_procs}"
        )
    return extents


def torus_dims(num_procs: int) -> Tuple[int, ...]:
    """The most nearly square 2-D factorization of ``P``."""
    if num_procs <= 1:
        return (num_procs,) if num_procs == 1 else ()
    a = int(math.isqrt(num_procs))
    while num_procs % a:
        a -= 1
    return (a, num_procs // a)


def hypercube_dims(num_procs: int) -> Tuple[int, ...]:
    """``(2,) * log2 P``; rejects non-powers-of-two."""
    if num_procs < 1 or num_procs & (num_procs - 1):
        raise ValueError(
            f"hypercube topology needs a power-of-two processor count, "
            f"got {num_procs}"
        )
    return (2,) * (num_procs.bit_length() - 1)


def fabric_dims(
    topology: str, num_procs: int, dims: DimsLike = None
) -> Tuple[int, ...]:
    """Resolve a topology name (plus optional explicit dims) to extents."""
    if topology not in DIRECT_TOPOLOGIES:
        raise KeyError(
            f"unknown topology {topology!r}; "
            f"known: {', '.join(DIRECT_TOPOLOGIES)}"
        )
    explicit = parse_dims(dims, num_procs)
    if topology == "ring":
        if explicit is not None and explicit != (num_procs,):
            raise ValueError(
                f"ring topology takes no dims, got {explicit}"
            )
        return (num_procs,) if num_procs > 1 else ()
    if topology == "hypercube":
        resolved = hypercube_dims(num_procs)
        if explicit is not None and explicit != resolved:
            raise ValueError(
                f"hypercube dims are fixed at {resolved}, got {explicit}"
            )
        return resolved
    # torus
    if explicit is not None:
        return explicit
    return torus_dims(num_procs) if num_procs > 1 else ()


def _grid_coords(num_procs: int, dims: Tuple[int, ...]) -> np.ndarray:
    """Row-major ``(P, ndim)`` coordinates of every rank."""
    if not dims:
        return np.zeros((num_procs, 0), dtype=np.intp)
    return np.stack(
        np.unravel_index(np.arange(num_procs), dims), axis=1
    ).astype(np.intp)


def _axis_successors(
    coords: np.ndarray, dims: Tuple[int, ...], axis: int
) -> np.ndarray:
    """The ``+1 (mod d_axis)`` neighbour of every rank along one axis."""
    shifted = coords.copy()
    shifted[:, axis] = (shifted[:, axis] + 1) % dims[axis]
    return np.ravel_multi_index(shifted.T, dims).astype(np.intp)


def fabric_edges(
    topology: str, num_procs: int, dims: DimsLike = None
) -> FrozenSet[Tuple[int, int]]:
    """The directed physical links of a fabric (both directions)."""
    extents = fabric_dims(topology, num_procs, dims)
    coords = _grid_coords(num_procs, extents)
    edges: set = set()
    for axis in range(len(extents)):
        if extents[axis] < 2:
            continue
        succ = _axis_successors(coords, extents, axis)
        for node in range(num_procs):
            other = int(succ[node])
            if other != node:
                edges.add((node, other))
                edges.add((other, node))
    return frozenset(edges)


def alltoall_direct_plan(
    snapshot: DirectorySnapshot,
    message_bytes: float,
    *,
    topology: str = "ring",
    dims: DimsLike = None,
) -> DirectExchangePlan:
    """Personalized all-to-all restricted to a fabric's physical links.

    Dimension-ordered routing: for each grid axis in turn, every node
    repeatedly forwards the blocks whose destination differs in that
    axis's coordinate to its ``+1`` ring neighbour, bundled into one
    message.  After ``sum(d_a - 1)`` rounds every ``(origin, dest)``
    block has arrived.  On a hypercube this is the classic ``log2 P``
    phase exchange; on a ring it degenerates to ``P - 1`` shift rounds.
    """
    n = snapshot.num_procs
    check_positive("message_bytes", message_bytes, allow_zero=True)
    extents = fabric_dims(topology, n, dims)
    message = float(message_bytes)
    entries: List[RoundEntry] = []
    if n > 1:
        coords = _grid_coords(n, extents)
        # block (origin, dest) -> time it became available at its holder
        held: List[Dict[Tuple[int, int], float]] = [{} for _ in range(n)]
        for origin in range(n):
            for dest in range(n):
                if origin != dest:
                    held[origin][(origin, dest)] = 0.0
        send_free = [0.0] * n
        recv_free = [0.0] * n
        round_ix = 0
        for axis in range(len(extents)):
            if extents[axis] < 2:
                continue
            succ = _axis_successors(coords, extents, axis)
            for _ in range(extents[axis] - 1):
                moves: List[Tuple[int, int, List[Tuple[int, int]]]] = []
                for src in range(n):
                    payload = sorted(
                        block for block in held[src]
                        if coords[block[1], axis] != coords[src, axis]
                    )
                    if payload:
                        moves.append((src, int(succ[src]), payload))
                for src, dst, payload in moves:
                    data_ready = max(held[src][b] for b in payload)
                    start = max(send_free[src], recv_free[dst], data_ready)
                    size = len(payload) * message
                    d = float(snapshot.transfer_time(src, dst, size))
                    finish = start + d
                    send_free[src] = finish
                    recv_free[dst] = finish
                    entries.append(RoundEntry(
                        round_ix, start, src, dst, d, tuple(payload), size
                    ))
                    for block in payload:
                        del held[src][block]
                        held[dst][block] = finish
                round_ix += 1
        stranded = [
            block
            for node in range(n)
            for block in held[node]
            if block[1] != node
        ]
        if stranded:  # internal invariant; the routing above precludes it
            raise RuntimeError(
                f"direct all-to-all left blocks undelivered: {stranded[:5]}"
            )
    count = len(entries)
    starts = np.fromiter((e.start for e in entries), dtype=float, count=count)
    srcs = np.fromiter((e.src for e in entries), dtype=np.intp, count=count)
    dsts = np.fromiter((e.dst for e in entries), dtype=np.intp, count=count)
    durations = np.fromiter(
        (e.duration for e in entries), dtype=float, count=count
    )
    sizes = np.fromiter((e.size for e in entries), dtype=float, count=count)
    schedule = schedule_from_unsorted_columns(
        n, starts, srcs, dsts, durations, sizes
    )
    completion = float(np.max(starts + durations)) if count else 0.0
    return DirectExchangePlan(
        num_procs=n,
        schedule=schedule,
        topology=topology,
        dims=extents,
        rounds=sum(d - 1 for d in extents),
        entries=tuple(entries),
        completion_time=completion,
    )
