"""Barrier synchronization on heterogeneous networks.

Barriers move (almost) no data, so start-up costs dominate — the purest
view of the latency half of the paper's model.  Two classical
algorithms:

* :func:`dissemination_barrier` — ``ceil(log2 P)`` rounds; in round
  ``k`` every node signals the node ``2^k`` ranks ahead (mod P).  Every
  node participates in every round, so each round costs its slowest
  signal and the barrier is as fast as the network's *worst* links
  allow.
* :func:`tournament_barrier` — a binomial tree: leaves signal up to the
  champion, then release flows back down.  Half the nodes drop out of
  each round, so slow nodes can hide in early rounds — on heterogeneous
  networks the two algorithms genuinely diverge, unlike the homogeneous
  case where both take ``~log2 P`` latencies.

Both return timed :class:`~repro.timing.events.Schedule` objects of the
signal messages (size 0; cost = start-up latency) plus the barrier
completion time.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.collectives.broadcast import binomial_tree, schedule_broadcast_tree
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule


def _signal_cost(snapshot: DirectorySnapshot) -> np.ndarray:
    """Pairwise cost of a zero-byte signal: the start-up latency."""
    return snapshot.latency.copy()


def dissemination_barrier(
    snapshot: DirectorySnapshot,
) -> Tuple[Schedule, float]:
    """Dissemination barrier: log2 P rounds of shifted signals.

    A node enters round ``k`` once it has sent its round ``k-1`` signal
    and received its round ``k-1`` signal — per-node progress, no global
    lockstep.
    """
    n = snapshot.num_procs
    cost = _signal_cost(snapshot)
    if n == 1:
        return Schedule(num_procs=1), 0.0
    rounds = math.ceil(math.log2(n))
    ready = [0.0] * n
    events: List[CommEvent] = []
    for k in range(rounds):
        shift = 1 << k
        starts = list(ready)
        finishes = [0.0] * n
        for src in range(n):
            dst = (src + shift) % n
            duration = float(cost[src, dst])
            events.append(
                CommEvent(
                    start=starts[src], src=src, dst=dst, duration=duration
                )
            )
            finishes[dst] = max(finishes[dst], starts[src] + duration)
        for node in range(n):
            # next round needs own signal sent (instantaneous dispatch
            # model: occupied only for the send's duration) and the
            # incoming signal received
            own_dst = (node + shift) % n
            sent_done = starts[node] + float(cost[node, own_dst])
            ready[node] = max(sent_done, finishes[node])
    return Schedule.from_events(n, events), float(max(ready))


def tournament_barrier(
    snapshot: DirectorySnapshot, *, champion: int = 0
) -> Tuple[Schedule, float]:
    """Tournament barrier: gather signals up a binomial tree, release down.

    The release phase reuses the broadcast-tree machinery with signal
    costs; the gather phase mirrors it (children report in, the parent's
    receive port serialises).
    """
    n = snapshot.num_procs
    cost = _signal_cost(snapshot)
    if n == 1:
        return Schedule(num_procs=1), 0.0
    tree = binomial_tree(n, champion)

    events: List[CommEvent] = []

    def collect(node: int) -> float:
        recv_free = 0.0
        for child in tree.get(node, []):
            child_ready = collect(child)
            duration = float(cost[child, node])
            start = max(recv_free, child_ready)
            events.append(
                CommEvent(start=start, src=child, dst=node,
                          duration=duration)
            )
            recv_free = start + duration
        return recv_free

    gathered_at = collect(champion)
    release = schedule_broadcast_tree(cost, tree, champion)
    shifted = [event.shifted(gathered_at) for event in release]
    schedule = Schedule.from_events(n, [*events, *shifted])
    return schedule, float(gathered_at + release.completion_time)
