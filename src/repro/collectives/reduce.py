"""Reduction collectives under the one-port heterogeneous model.

Reduce is gather plus computation: a relay combines each arriving
child contribution with its accumulator (at ``combine_rate`` bytes per
second of local compute) before forwarding one combined block up the
tree.  Unlike bundled gather, the forwarded payload stays *one block* —
reduction shrinks data, which is why tree reduction dominates direct
gather-then-combine on wide-area networks.

* :func:`reduce_via_tree` — tree reduction with per-node combine costs;
* :func:`reduce_direct` — everyone sends to the root, which combines
  serially (the naive baseline);
* :func:`allreduce_tree` — reduce to a root, then broadcast the result
  back down (the classical composition).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.collectives.broadcast import Tree, _check_tree, schedule_broadcast_tree
from repro.directory.service import DirectorySnapshot
from repro.model.cost import cost_matrix
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_index, check_positive


def reduce_direct(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    root: int = 0,
    *,
    combine_rate: float = 1e9,
) -> Tuple[Schedule, float]:
    """Naive reduction: every node sends its block straight to the root.

    The root receives one contribution at a time and combines each as it
    lands (receive and combine overlap for successive messages only when
    the combine is faster than the next receive; we charge combines
    serially after each receive for a conservative model).  Returns the
    communication schedule and the completion time including combines.
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    check_positive("block_bytes", block_bytes)
    check_positive("combine_rate", combine_rate)
    combine_time = block_bytes / combine_rate
    order = sorted(
        (j for j in range(n) if j != root),
        key=lambda j: (snapshot.transfer_time(j, root, block_bytes), j),
    )
    events: List[CommEvent] = []
    clock = 0.0
    done = 0.0
    for src in order:
        duration = snapshot.transfer_time(src, root, block_bytes)
        events.append(
            CommEvent(start=clock, src=src, dst=root, duration=duration,
                      size=float(block_bytes))
        )
        clock += duration
        done = max(done, clock) + combine_time
    return Schedule.from_events(n, events), float(done)


def reduce_via_tree(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    tree: Tree,
    root: int = 0,
    *,
    combine_rate: float = 1e9,
) -> Tuple[Schedule, float]:
    """Tree reduction: combine on the way up, forward a single block.

    A node receives its children's partial results one at a time
    (receive port), combines each on arrival, and uploads one combined
    block once every child is merged.  Returns the communication
    schedule and the completion time (root's last combine).
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    check_positive("block_bytes", block_bytes)
    check_positive("combine_rate", combine_rate)
    _check_tree(tree, n, root)
    combine_time = block_bytes / combine_rate

    events: List[CommEvent] = []

    def collect(node: int) -> float:
        """Time at which ``node``'s partial result is ready."""
        recv_free = 0.0
        ready = 0.0  # accumulator readiness (own block is free at t=0)
        for child in tree.get(node, []):
            child_ready = collect(child)
            duration = snapshot.transfer_time(child, node, block_bytes)
            start = max(recv_free, child_ready)
            events.append(
                CommEvent(start=start, src=child, dst=node,
                          duration=duration, size=float(block_bytes))
            )
            recv_free = start + duration
            ready = max(ready, recv_free) + combine_time
        return ready

    total = collect(root)
    return Schedule.from_events(n, events), float(total)


def allreduce_ring(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    ring: Optional[List[int]] = None,
    combine_rate: float = 1e9,
) -> Tuple[Schedule, float]:
    """Ring all-reduce (reduce-scatter + all-gather), lockstep steps.

    The modern bandwidth-optimal algorithm on homogeneous networks:
    ``2(P-1)`` steps, each moving a ``1/P`` chunk to the ring successor.
    Every step is a full rotation, so it costs the *slowest ring edge* —
    on a heterogeneous network one bad link taxes all ``2(P-1)`` steps,
    which is exactly why the tree composition
    (:func:`allreduce_tree`) can win there.  ``ring`` reorders the nodes
    (default: identity order).
    """
    n = snapshot.num_procs
    check_positive("block_bytes", block_bytes)
    check_positive("combine_rate", combine_rate)
    order = list(ring) if ring is not None else list(range(n))
    if sorted(order) != list(range(n)):
        raise ValueError("ring must be a permutation of the nodes")
    if n == 1:
        return Schedule(num_procs=1), 0.0
    chunk = block_bytes / n
    combine_time = chunk / combine_rate

    edges = [
        (order[k], order[(k + 1) % n]) for k in range(n)
    ]
    step_comm = max(
        snapshot.transfer_time(src, dst, chunk) for src, dst in edges
    )
    events: List[CommEvent] = []
    clock = 0.0
    total_steps = 2 * (n - 1)
    for step in range(total_steps):
        for src, dst in edges:
            events.append(
                CommEvent(
                    start=clock,
                    src=src,
                    dst=dst,
                    duration=snapshot.transfer_time(src, dst, chunk),
                    size=chunk,
                )
            )
        clock += step_comm
        if step < n - 1:  # reduce-scatter steps combine on arrival
            clock += combine_time
    return Schedule.from_events(n, events), float(clock)


def allreduce_tree(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    tree: Tree,
    root: int = 0,
    *,
    combine_rate: float = 1e9,
) -> Tuple[Schedule, float]:
    """All-reduce as reduce-to-root followed by broadcast of the result.

    The broadcast reuses the same tree; its events are shifted to start
    after the reduction completes.  Returns the merged schedule and the
    overall completion time.
    """
    reduce_schedule, reduce_done = reduce_via_tree(
        snapshot, block_bytes, tree, root, combine_rate=combine_rate
    )
    n = snapshot.num_procs
    sizes = np.full((n, n), float(block_bytes))
    np.fill_diagonal(sizes, 0.0)
    cost = cost_matrix(snapshot, sizes)
    broadcast = schedule_broadcast_tree(cost, tree, root)
    shifted = [event.shifted(reduce_done) for event in broadcast]
    merged = Schedule.from_events(
        n, [*reduce_schedule.events, *shifted]
    )
    return merged, float(reduce_done + broadcast.completion_time)
