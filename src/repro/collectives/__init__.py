"""Other collective patterns under the paper's communication model.

The paper's framework is explicitly general: "Our approach is a general
one, and can be used for different collective communication patterns"
(Section 3).  This package applies the same model — ``T_ij + m/B_ij``
per message, one send and one receive per node at a time — to the
single-root collectives:

* :mod:`repro.collectives.broadcast` — binomial-tree baseline vs the
  network-aware earliest-completion ("fastest node first") heuristic;
* :mod:`repro.collectives.scatter` — direct serial scatter and
  store-and-forward tree scatter with bundled payloads;
* :mod:`repro.collectives.gather` — the mirror image (root's receive
  port is the bottleneck);
* :mod:`repro.collectives.patterns` — adapters expressing all-gather and
  uniform all-to-all as :class:`~repro.core.problem.TotalExchangeProblem`
  instances so the paper's schedulers apply unchanged;
* :mod:`repro.collectives.registry` — the uniform
  :class:`~repro.collectives.registry.CollectiveSpec` registry
  (``make_collective(name, **options)``), mirroring the scheduler
  registry so CLI consumers share one ``--scheduler``/``--collective``
  convention.
"""

from repro.collectives.allreduce import (
    AllreducePlan,
    allreduce_log_tree,
    allreduce_rs_ag,
    straggler_aware_ring,
)
from repro.collectives.barrier import (
    dissemination_barrier,
    tournament_barrier,
)
from repro.collectives.direct import (
    DIRECT_TOPOLOGIES,
    DirectExchangePlan,
    alltoall_direct_plan,
    fabric_dims,
    fabric_edges,
)
from repro.collectives.logrounds import (
    RoundEntry,
    RoundPlan,
    allbroadcast_plan,
    broadcast_log_plan,
    log2_rounds,
    reduction_log_plan,
)
from repro.collectives.broadcast import (
    binomial_tree,
    broadcast_lower_bound,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
    schedule_broadcast_tree,
)
from repro.collectives.gather import gather_direct, gather_via_tree
from repro.collectives.patterns import allgather_problem, alltoall_problem
from repro.collectives.reduce import (
    allreduce_ring,
    allreduce_tree,
    reduce_direct,
    reduce_via_tree,
)
from repro.collectives.registry import (
    Collective,
    CollectiveResult,
    CollectiveSpec,
    collective_names,
    format_collective_spec,
    get_collective,
    get_collective_spec,
    iter_collective_specs,
    make_collective,
    parse_collective_spec,
)
from repro.collectives.scatter import scatter_direct, scatter_via_tree

__all__ = [
    "AllreducePlan",
    "Collective",
    "CollectiveResult",
    "CollectiveSpec",
    "DIRECT_TOPOLOGIES",
    "DirectExchangePlan",
    "RoundEntry",
    "RoundPlan",
    "collective_names",
    "format_collective_spec",
    "get_collective",
    "get_collective_spec",
    "iter_collective_specs",
    "make_collective",
    "parse_collective_spec",
    "allbroadcast_plan",
    "allreduce_log_tree",
    "allreduce_rs_ag",
    "alltoall_direct_plan",
    "broadcast_log_plan",
    "fabric_dims",
    "fabric_edges",
    "log2_rounds",
    "reduction_log_plan",
    "straggler_aware_ring",
    "allgather_problem",
    "allreduce_ring",
    "allreduce_tree",
    "alltoall_problem",
    "binomial_tree",
    "dissemination_barrier",
    "reduce_direct",
    "reduce_via_tree",
    "tournament_barrier",
    "broadcast_lower_bound",
    "gather_direct",
    "gather_via_tree",
    "scatter_direct",
    "scatter_via_tree",
    "schedule_broadcast_binomial",
    "schedule_broadcast_fnf",
    "schedule_broadcast_tree",
]
