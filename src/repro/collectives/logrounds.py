"""Log-round collectives: Träff's round structure under heterogeneous costs.

Träff 2024 ("Optimal Broadcast Schedules in Logarithmic Time",
arXiv:2407.18004) constructs optimal ceil(log2 P)-round schedules for
broadcast, all-broadcast and reduction on fully connected one-ported
networks.  The homogeneous constructions fix *which* pairs talk in each
round by index arithmetic; under the paper's heterogeneous cost model
(``T_ij + m/B_ij`` from the directory) we keep the round *structure* —
the informed/active set doubles or halves every round, so the round
count stays at the ceil(log2 P) optimum — but choose the pairing within
each round greedily against the measured per-link costs, and let each
node advance as soon as its own ports are free instead of waiting for a
global round barrier.

Every planner returns a :class:`RoundPlan`: the validated lazy columnar
:class:`~repro.timing.events.Schedule` plus the per-event round index
and payload annotation the ``check --collectives`` oracle verifies
operand flow against (the sorted Schedule view loses emission order, so
the plan keeps its own entry list).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.timing.events import Schedule, schedule_from_unsorted_columns
from repro.util.validation import check_index, check_positive


@dataclass(frozen=True)
class RoundEntry:
    """One planned message with its round index and payload annotation.

    ``payload`` names what the message carries: the originating ranks of
    the data blocks (all-broadcast), the contributions folded into a
    partial reduction result, the single root rank for a broadcast, or
    ``(origin, dest)`` block ids for a direct-connect all-to-all.
    """

    round: int
    start: float
    src: int
    dst: int
    duration: float
    payload: Tuple[object, ...]
    size: float = 0.0

    @property
    def finish(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class RoundPlan:
    """A round-structured collective schedule plus its oracle metadata."""

    num_procs: int
    schedule: Schedule
    rounds: int
    entries: Tuple[RoundEntry, ...]
    completion_time: float


def log2_rounds(num_procs: int) -> int:
    """The optimal round count ``ceil(log2 P)`` (0 for P <= 1)."""
    if num_procs <= 1:
        return 0
    return int(math.ceil(math.log2(num_procs)))


def plan_from_entries(
    num_procs: int,
    entries: Sequence[RoundEntry],
    rounds: int,
    completion: float,
) -> RoundPlan:
    """Package entries into a plan with a lazy columnar schedule."""
    count = len(entries)
    starts = np.fromiter((e.start for e in entries), dtype=float, count=count)
    srcs = np.fromiter((e.src for e in entries), dtype=np.intp, count=count)
    dsts = np.fromiter((e.dst for e in entries), dtype=np.intp, count=count)
    durations = np.fromiter(
        (e.duration for e in entries), dtype=float, count=count
    )
    sizes = np.fromiter((e.size for e in entries), dtype=float, count=count)
    schedule = schedule_from_unsorted_columns(
        num_procs, starts, srcs, dsts, durations, sizes
    )
    return RoundPlan(
        num_procs=num_procs,
        schedule=schedule,
        rounds=rounds,
        entries=tuple(entries),
        completion_time=float(completion),
    )


def _duration_matrix(
    snapshot: DirectorySnapshot, size_bytes: float
) -> np.ndarray:
    """``transfer_time`` for every ordered pair at one message size."""
    dur = snapshot.latency + float(size_bytes) / snapshot.bandwidth
    np.fill_diagonal(dur, 0.0)
    return dur


def _greedy_pairs(
    finish: np.ndarray, mask: np.ndarray, count: int
) -> List[Tuple[int, int, float]]:
    """Pick ``count`` disjoint (row, col) pairs by repeated min-finish.

    ``np.argmin`` scans row-major, so ties resolve to the smallest row
    then column — the same order a scalar double loop with a strict
    ``<`` comparison produces, which the differential reference executor
    relies on.
    """
    picks: List[Tuple[int, int, float]] = []
    for _ in range(count):
        masked = np.where(mask, finish, np.inf)
        flat = int(np.argmin(masked))
        row, col = divmod(flat, finish.shape[1])
        picks.append((row, col, float(masked[row, col])))
        mask[row, :] = False
        mask[:, col] = False
    return picks


def broadcast_log_plan(
    snapshot: DirectorySnapshot, size_bytes: float, *, root: int = 0
) -> RoundPlan:
    """Root-to-all broadcast in exactly ``ceil(log2 P)`` rounds.

    Every informed node sends to one uninformed node per round, so the
    informed set doubles until it covers everyone (Träff's optimal round
    structure).  Within a round the (sender, receiver) matching is
    chosen greedily by earliest finish under the heterogeneous costs,
    and each sender starts as soon as its own previous send finished —
    rounds overlap in time.
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    check_positive("size_bytes", size_bytes, allow_zero=True)
    if n == 1:
        return plan_from_entries(n, [], 0, 0.0)
    dur = _duration_matrix(snapshot, size_bytes)
    ready = np.zeros(n)
    informed: List[int] = [root]
    uninformed: List[int] = [i for i in range(n) if i != root]
    entries: List[RoundEntry] = []
    rounds = 0
    while uninformed:
        senders = np.asarray(informed, dtype=np.intp)
        receivers = np.asarray(uninformed, dtype=np.intp)
        finish = ready[senders][:, None] + dur[np.ix_(senders, receivers)]
        count = min(len(informed), len(uninformed))
        mask = np.ones(finish.shape, dtype=bool)
        newly: List[int] = []
        for row, col, done in _greedy_pairs(finish, mask, count):
            src = int(senders[row])
            dst = int(receivers[col])
            start = float(ready[src])
            entries.append(RoundEntry(
                rounds, start, src, dst, done - start, (root,),
                float(size_bytes),
            ))
            ready[src] = done
            ready[dst] = done
            newly.append(dst)
        informed.extend(newly)
        gone = set(newly)
        uninformed = [u for u in uninformed if u not in gone]
        rounds += 1
    return plan_from_entries(n, entries, rounds, float(ready.max()))


def allbroadcast_plan(
    snapshot: DirectorySnapshot, block_bytes: float
) -> RoundPlan:
    """All-broadcast (allgather) in ``ceil(log2 P)`` Bruck-style rounds.

    In round ``k`` node ``i`` receives from ``(i + 2^k) mod P`` a bundle
    of ``min(2^k, P - 2^k)`` blocks, doubling everyone's holdings; the
    index pattern is Träff's all-broadcast round structure (valid for
    any P, not just powers of two), while event timing follows the
    heterogeneous per-link costs with per-node readiness instead of a
    lockstep round clock.
    """
    n = snapshot.num_procs
    check_positive("block_bytes", block_bytes, allow_zero=True)
    if n == 1:
        return plan_from_entries(n, [], 0, 0.0)
    block = float(block_bytes)
    ready = np.zeros(n)
    entries: List[RoundEntry] = []
    rounds = 0
    shift = 1
    while shift < n:
        count = min(shift, n - shift)
        size = count * block
        prev = ready.copy()
        send_finish = np.zeros(n)
        recv_finish = np.zeros(n)
        for dst in range(n):
            src = (dst + shift) % n
            start = max(float(prev[src]), float(prev[dst]))
            d = float(snapshot.transfer_time(src, dst, size))
            payload = tuple(sorted((src + t) % n for t in range(count)))
            entries.append(RoundEntry(
                rounds, start, src, dst, d, payload, size
            ))
            send_finish[src] = start + d
            recv_finish[dst] = start + d
        ready = np.maximum(send_finish, recv_finish)
        shift <<= 1
        rounds += 1
    return plan_from_entries(n, entries, rounds, float(ready.max()))


def reduction_log_plan(
    snapshot: DirectorySnapshot,
    block_bytes: float,
    *,
    root: int = 0,
    combine_rate: float = 1e9,
) -> RoundPlan:
    """All-to-root reduction in exactly ``ceil(log2 P)`` rounds.

    The active set halves every round: ``floor(|active| / 2)`` disjoint
    (sender, receiver) pairs are picked greedily by earliest finish, the
    sender ships its accumulated partial and drops out, the receiver
    folds it in at ``block_bytes / combine_rate`` seconds per combine.
    The root never sends, so the last survivor is the root.
    """
    n = snapshot.num_procs
    check_index("root", root, n)
    check_positive("block_bytes", block_bytes, allow_zero=True)
    check_positive("combine_rate", combine_rate)
    if n == 1:
        return plan_from_entries(n, [], 0, 0.0)
    dur = _duration_matrix(snapshot, block_bytes)
    combine = float(block_bytes) / float(combine_rate)
    ready = np.zeros(n)
    contrib = {i: {i} for i in range(n)}
    active: List[int] = list(range(n))
    entries: List[RoundEntry] = []
    rounds = 0
    while len(active) > 1:
        senders = np.asarray(
            [node for node in active if node != root], dtype=np.intp
        )
        receivers = np.asarray(active, dtype=np.intp)
        finish = (
            np.maximum(ready[senders][:, None], ready[receivers][None, :])
            + dur[np.ix_(senders, receivers)]
        )
        mask = senders[:, None] != receivers[None, :]
        count = len(active) // 2
        picks: List[Tuple[int, int, float]] = []
        for _ in range(count):
            masked = np.where(mask, finish, np.inf)
            flat = int(np.argmin(masked))
            row, col = divmod(flat, finish.shape[1])
            picks.append((row, col, float(masked[row, col])))
            mask[row, :] = False
            mask[:, col] = False
            # the receiver may not also send this round, nor the sender
            # also receive
            mask[senders == receivers[col], :] = False
            mask[:, receivers == senders[row]] = False
        removed = set()
        for row, col, done in picks:
            src = int(senders[row])
            dst = int(receivers[col])
            start = max(float(ready[src]), float(ready[dst]))
            entries.append(RoundEntry(
                rounds, start, src, dst, done - start,
                tuple(sorted(contrib[src])), float(block_bytes),
            ))
            ready[dst] = done + combine
            contrib[dst] |= contrib[src]
            removed.add(src)
        active = [node for node in active if node not in removed]
        rounds += 1
    return plan_from_entries(n, entries, rounds, float(ready[root]))
