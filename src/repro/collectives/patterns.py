"""Pattern adapters: express other collectives as total exchange.

All-gather and uniform all-to-all are total exchanges with structured
size matrices, so the paper's schedulers apply unchanged; these helpers
build the corresponding :class:`~repro.core.problem.TotalExchangeProblem`
from a directory snapshot.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot


def allgather_problem(
    snapshot: DirectorySnapshot,
    block_bytes: Union[float, Sequence[float]],
) -> TotalExchangeProblem:
    """All-gather: every node sends its (per-node sized) block to all.

    ``sizes[src, dst] = block_bytes[src]`` — the non-personalised
    counterpart of total exchange (same block to every peer; the model
    still prices each transfer separately because the one-port rule
    serialises them).
    """
    n = snapshot.num_procs
    if np.isscalar(block_bytes):
        per_node = np.full(n, float(block_bytes))
    else:
        per_node = np.asarray(block_bytes, dtype=float)
        if per_node.shape != (n,):
            raise ValueError(
                f"need one block size per node, got shape {per_node.shape}"
            )
    if np.any(per_node < 0):
        raise ValueError("block sizes must be non-negative")
    sizes = np.repeat(per_node[:, None], n, axis=1)
    np.fill_diagonal(sizes, 0.0)
    return TotalExchangeProblem.from_snapshot(snapshot, sizes)


def alltoall_problem(
    snapshot: DirectorySnapshot, message_bytes: float
) -> TotalExchangeProblem:
    """Uniform all-to-all personalised exchange (MPI_Alltoall)."""
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    n = snapshot.num_procs
    sizes = np.full((n, n), float(message_bytes))
    np.fill_diagonal(sizes, 0.0)
    return TotalExchangeProblem.from_snapshot(snapshot, sizes)
