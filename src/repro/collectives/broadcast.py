"""Broadcast scheduling under the one-port heterogeneous model.

A broadcast plan is a spanning tree plus, per node, the order in which it
sends to its children; under the one-port model a node's sends serialise,
so the order matters.  Two planners:

* :func:`schedule_broadcast_binomial` — the classical binomial tree, the
  homogeneous baseline (optimal when all links are equal; oblivious to
  heterogeneity, exactly like the caterpillar is for total exchange);
* :func:`schedule_broadcast_fnf` — network-aware greedy: repeatedly
  schedule the (informed sender, uninformed receiver) pair that
  completes earliest, the "fastest node first" / earliest-completion
  heuristic for heterogeneous broadcast.

Message cost is taken from a ``[src, dst]`` cost matrix exactly as in
the total-exchange problem (build one with
:func:`repro.model.cost.cost_matrix` and a uniform size).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_index, check_square_matrix

#: A broadcast tree: node -> ordered list of children.
Tree = Dict[int, List[int]]


def binomial_tree(num_procs: int, root: int = 0) -> Tree:
    """The classical binomial broadcast tree.

    In round ``k`` every informed node sends to the node ``2^k`` ranks
    away (mod P, relative to the root), so the informed set doubles each
    round — optimal on a homogeneous network.
    """
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    check_index("root", root, num_procs)
    children: Tree = {node: [] for node in range(num_procs)}
    informed = [0]  # relative ranks
    distance = 1
    while distance < num_procs:
        for rel in list(informed):
            target = rel + distance
            if target < num_procs:
                children[(root + rel) % num_procs].append(
                    (root + target) % num_procs
                )
                informed.append(target)
        distance *= 2
    return children


def _check_tree(tree: Tree, num_procs: int, root: int) -> None:
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in tree.get(node, []):
            if child in seen:
                raise ValueError(f"node {child} reached twice in tree")
            seen.add(child)
            frontier.append(child)
    if len(seen) != num_procs:
        missing = sorted(set(range(num_procs)) - seen)
        raise ValueError(f"tree does not span all nodes; missing {missing}")


def schedule_broadcast_tree(
    cost: np.ndarray, tree: Tree, root: int = 0
) -> Schedule:
    """Execute a broadcast tree under the one-port model.

    A node may start forwarding once it has fully received the message;
    its sends to its children serialise in list order.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    check_index("root", root, n)
    _check_tree(tree, n, root)

    ready = {root: 0.0}
    events: List[CommEvent] = []
    frontier = [root]
    while frontier:
        node = frontier.pop()
        clock = ready[node]
        for child in tree.get(node, []):
            duration = float(cost[node, child])
            events.append(
                CommEvent(start=clock, src=node, dst=child, duration=duration)
            )
            clock += duration
            ready[child] = clock
            frontier.append(child)
    return Schedule.from_events(n, events)


def schedule_broadcast_binomial(cost: np.ndarray, root: int = 0) -> Schedule:
    """Binomial-tree broadcast (the homogeneous baseline)."""
    cost = check_square_matrix("cost", cost, nonnegative=True)
    return schedule_broadcast_tree(
        cost, binomial_tree(cost.shape[0], root), root
    )


def schedule_broadcast_fnf(cost: np.ndarray, root: int = 0) -> Schedule:
    """Earliest-completion-first heterogeneous broadcast.

    Maintains the informed set with each member's send-port availability;
    each step commits the send that would finish earliest among all
    (informed, uninformed) pairs.  ``O(P^3)`` — the same budget as the
    paper's open shop heuristic.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    check_index("root", root, n)

    avail = {root: 0.0}
    uninformed = set(range(n)) - {root}
    events: List[CommEvent] = []
    while uninformed:
        best: Tuple[float, int, int] | None = None
        for sender, sender_avail in avail.items():
            for receiver in uninformed:
                finish = sender_avail + float(cost[sender, receiver])
                key = (finish, sender, receiver)
                if best is None or key < best:
                    best = key
        finish, sender, receiver = best
        events.append(
            CommEvent(
                start=avail[sender],
                src=sender,
                dst=receiver,
                duration=float(cost[sender, receiver]),
            )
        )
        avail[sender] = finish
        avail[receiver] = finish
        uninformed.discard(receiver)
    return Schedule.from_events(n, events)


def broadcast_lower_bound(cost: np.ndarray, root: int = 0) -> float:
    """Simple lower bounds on heterogeneous broadcast completion.

    The maximum of:

    * the cheapest way to reach the hardest-to-reach node
      (``max_j min_i cost[i, j]``) — someone must send to ``j``;
    * the root's cheapest first send (nothing happens before it);
    * a port-capacity bound: the root must issue at least
      ``ceil(log2 P)``-deep work if every send were its cheapest —
      conservatively, the sum of the ``ceil(log2 P)`` smallest entries
      of a chain of cheapest sends is replaced here by the cheapest
      send times ``ceil(log2 P)`` (information can at most double per
      fully-parallel round).
    """
    import math

    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    check_index("root", root, n)
    if n == 1:
        return 0.0
    others = [j for j in range(n) if j != root]
    hardest = max(
        min(cost[i, j] for i in range(n) if i != j) for j in others
    )
    first_send = min(cost[root, j] for j in others)
    off = cost[~np.eye(n, dtype=bool)]
    cheapest = float(off.min())
    rounds = math.ceil(math.log2(n))
    return float(max(hardest, first_send, cheapest * rounds))
