"""BADD-style data staging with deadlines and priorities.

The paper's Section 6.4 motivates communication scheduling with QoS
constraints via DARPA's BADD program: battlefield data items must reach
requesters over a shared heterogeneous network by real-time deadlines.
This example builds a three-site theatre network, replicates imagery
across two repositories, and stages a mixed request load with the
multiple-source shortest-path heuristic (after the paper's ref. [24]).

Run:  python examples/data_staging.py
"""

import numpy as np

from repro.network.topology import Metacomputer
from repro.staging import (
    DataItem,
    DataRequest,
    evaluate_plan,
    schedule_staging,
)
from repro.util.tables import format_table
from repro.util.units import MBIT_PER_S, MEGABYTE, seconds_from_ms


def build_theatre() -> Metacomputer:
    """Rear repository, forward base, and field site (Figure 1 style)."""
    return Metacomputer.build(
        {"rear": 2, "base": 2, "field": 3},
        access_latency=seconds_from_ms(1),
        access_bandwidth=100 * MBIT_PER_S,
        backbone=[
            ("rear", "base", seconds_from_ms(30), 8 * MBIT_PER_S),
            ("base", "field", seconds_of := seconds_from_ms(40), 1 * MBIT_PER_S),
        ],
    )


def main() -> None:
    rng = np.random.default_rng(5)
    system = build_theatre()
    # nodes: 0-1 rear repositories, 2-3 forward base, 4-6 field units
    items = [
        DataItem("terrain-map", 4 * MEGABYTE, sources=(0, 2)),
        DataItem("sat-image", 12 * MEGABYTE, sources=(0, 1)),
        DataItem("intel-brief", 0.2 * MEGABYTE, sources=(1,)),
        DataItem("weather", 0.5 * MEGABYTE, sources=(0, 1, 2)),
    ]
    requests = []
    for unit in (4, 5, 6):
        requests.append(
            DataRequest(items[2], unit, deadline=15.0, priority=10.0)
        )
        requests.append(
            DataRequest(items[0], unit, deadline=120.0, priority=3.0)
        )
        requests.append(
            DataRequest(items[1], unit, deadline=400.0, priority=1.0)
        )
    requests.append(DataRequest(items[3], 3, deadline=30.0, priority=5.0))

    plan = schedule_staging(system, requests)
    metrics = evaluate_plan(plan)

    rows = [
        [
            t.request.item.name,
            f"P{t.source}",
            f"P{t.request.destination}",
            t.finish,
            t.request.deadline,
            "yes" if t.on_time else f"late {t.tardiness:.0f}s",
        ]
        for t in sorted(plan.transfers, key=lambda t: t.finish)
    ]
    print(format_table(
        ["item", "from", "to", "arrives (s)", "deadline (s)", "on time"],
        rows, precision=1,
        title=f"staging plan for {len(requests)} requests",
    ))
    print(
        f"\n{metrics.on_time}/{metrics.total_requests} on time "
        f"({metrics.on_time_rate * 100:.0f}%), weighted satisfaction "
        f"{metrics.weighted_satisfaction * 100:.0f}%, makespan "
        f"{metrics.completion_time:.0f}s"
    )
    print(
        "High-priority briefs cut ahead of bulk imagery on the shared "
        "1 Mbit/s base-field link; replicated items are pulled from the "
        "nearest source."
    )


if __name__ == "__main__":
    main()
