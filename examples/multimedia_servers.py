"""The paper's Figure 12 scenario: multimedia servers and clients.

20 % of the processors are servers holding partitioned image/video data;
each server ships a large object to every client, while all other traffic
is small control messages.  "It can be seen that the baseline algorithm
performs very poorly in such scenarios" — this example shows why (server
rows dominate the timing diagram) and how much the adaptive schedules
recover.  It also demonstrates §6.4's critical-resource scheduling with a
server designated as the critical (expensive) machine.

Run:  python examples/multimedia_servers.py
"""

import numpy as np

import repro
from repro.directory.service import DirectorySnapshot
from repro.model.messages import ServerClientSizes
from repro.qos import critical_finish_time, schedule_critical_first
from repro.util.tables import format_table


def main() -> None:
    num_procs = 25
    spec = ServerClientSizes(
        server_fraction=0.2,
        large_bytes=repro.MEGABYTE,
        small_bytes=repro.KILOBYTE,
    )
    rng = np.random.default_rng(2024)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = repro.TotalExchangeProblem.from_snapshot(snapshot, spec, rng=rng)
    servers = spec.server_set(num_procs)

    print(f"{num_procs} processors, servers = {servers.tolist()}")
    print(f"total volume = {problem.sizes.sum() / 1e6:.0f} MB, "
          f"lower bound = {problem.lower_bound():.1f}s")
    print()

    baseline_time = None
    rows = []
    for name in repro.scheduler_names():
        schedule = repro.get_scheduler(name)(problem)
        if name == "baseline":
            baseline_time = schedule.completion_time
        rows.append(
            [
                name,
                schedule.completion_time,
                schedule.completion_time / problem.lower_bound(),
                baseline_time / schedule.completion_time,
            ]
        )
    print(format_table(
        ["algorithm", "completion (s)", "ratio to LB", "speedup vs baseline"],
        rows, precision=2,
    ))

    # Why the baseline stalls: a server's column of the timing diagram is
    # packed with long events; every client receive it delays cascades.
    server = int(servers[0])
    send_busy, recv_busy = repro.schedule_baseline(problem).busy_time(server)
    print(f"\nserver P{server}: {send_busy:.1f}s of sending "
          f"({send_busy / problem.lower_bound() * 100:.0f}% of the lower "
          "bound) — its row alone nearly defines the schedule length.")

    # Section 6.4: finish the expensive server's communication early.
    plain = repro.schedule_openshop(problem)
    favoured = schedule_critical_first(problem, server)
    repro.check_schedule(favoured, problem.cost)
    print(f"\ncritical-resource scheduling for P{server}:")
    print(f"  open shop:      P{server} finishes at "
          f"{critical_finish_time(plain, server):.1f}s, "
          f"makespan {plain.completion_time:.1f}s")
    print(f"  critical-first: P{server} finishes at "
          f"{critical_finish_time(favoured, server):.1f}s, "
          f"makespan {favoured.completion_time:.1f}s")


if __name__ == "__main__":
    main()
