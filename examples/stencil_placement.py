"""Placing a PDE solver's process grid on a clustered metacomputer.

A 2-D stencil solver exchanges halos with grid neighbours every step —
sparse, local traffic whose cost depends entirely on *where* each rank
runs.  This example scatters a 2x4 process grid across two sites joined
by a slow backbone (the adversarial mapping a naive launcher produces),
then lets the placement optimiser heal it, and prices the difference in
per-step halo-exchange time with the open shop scheduler.

Run:  python examples/stencil_placement.py
"""

import numpy as np

import repro
from repro.analysis import explain_schedule
from repro.directory import TopologyDirectory
from repro.network.topology import Metacomputer
from repro.placement import evaluate_placement, greedy_swap_placement
from repro.placement.optimize import apply_placement
from repro.util.tables import format_table
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads import stencil_sizes


def main() -> None:
    system = Metacomputer.build(
        {"west": 4, "east": 4},
        access_latency=seconds_from_ms(0.2),
        access_bandwidth=GBIT_PER_S,
        backbone=[("west", "east", seconds_from_ms(30), 5 * MBIT_PER_S)],
    )
    snapshot = TopologyDirectory(system).snapshot()
    sizes = stencil_sizes((2, 4), halo_bytes=2e6)
    print("2x4 stencil grid, 2 MB halos, two sites over a 5 Mbit/s "
          "backbone\n")

    placements = {
        "row-major (rows split across sites)": [0, 1, 2, 3, 4, 5, 6, 7],
        "interleaved (worst case)": [0, 4, 1, 5, 2, 6, 3, 7],
    }
    healed = greedy_swap_placement(
        snapshot, sizes, start=placements["interleaved (worst case)"]
    )
    placements["optimised (greedy swaps)"] = list(healed.placement)

    rows = []
    for label, placement in placements.items():
        problem = repro.TotalExchangeProblem.from_snapshot(
            snapshot, apply_placement(sizes, placement)
        )
        schedule = repro.schedule_openshop(problem)
        rows.append(
            [label, problem.lower_bound(), schedule.completion_time]
        )
    print(format_table(
        ["placement", "busiest-port bound (s)", "halo step (s)"],
        rows, precision=3,
    ))

    best = repro.TotalExchangeProblem.from_snapshot(
        snapshot, apply_placement(sizes, placements["optimised (greedy swaps)"])
    )
    print("\ndiagnosis of the optimised placement:")
    print(explain_schedule(best, repro.schedule_openshop(best)).summary())
    interleaved_score = evaluate_placement(
        snapshot, sizes, placements["interleaved (worst case)"]
    )
    gain = 1.0 - healed.score / interleaved_score
    print(
        f"\n({healed.evaluations} placement evaluations; the optimiser "
        f"recovered {gain * 100:.0f}% of the interleaved mapping's cost)"
    )


if __name__ == "__main__":
    main()
