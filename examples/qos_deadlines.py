"""QoS-constrained scheduling (paper Section 6.4, BADD-style staging).

Battlefield-awareness data staging attaches deadlines and priorities to
every message.  This example tags a heterogeneous total exchange with
tiered deadlines (urgent intelligence updates vs. bulk imagery), then
compares the plain open shop scheduler against its deadline-aware (EDF)
and priority-aware variants.

Run:  python examples/qos_deadlines.py
"""

import numpy as np

import repro
from repro.directory.service import DirectorySnapshot
from repro.qos import (
    QoSMessage,
    QoSProblem,
    evaluate_qos,
    schedule_edf,
    schedule_priority,
)
from repro.util.tables import format_table


def main() -> None:
    num_procs = 12
    rng = np.random.default_rng(42)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(num_procs, rng=rng)
    base = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
    lb = base.lower_bound()

    # A third of the messages are urgent (tight deadline, high priority);
    # the rest are bulk transfers with loose deadlines.
    messages = []
    for src, dst in base.positive_events():
        if rng.random() < 1 / 3:
            messages.append(
                QoSMessage(src=src, dst=dst, deadline=0.5 * lb, priority=10.0)
            )
        else:
            messages.append(
                QoSMessage(src=src, dst=dst, deadline=1.4 * lb, priority=1.0)
            )
    problem = QoSProblem(base=base, messages=tuple(messages))
    urgent = sum(1 for m in messages if m.priority == 10.0)
    print(f"{num_procs} processors, {len(messages)} messages "
          f"({urgent} urgent); lower bound = {lb:.1f}s")
    print()

    schedules = {
        "openshop (QoS-blind)": repro.schedule_openshop(base),
        "EDF": schedule_edf(problem),
        "priority": schedule_priority(problem),
    }
    rows = []
    for label, schedule in schedules.items():
        repro.check_schedule(schedule, base.cost)
        report = evaluate_qos(problem, schedule)
        rows.append(
            [
                label,
                schedule.completion_time,
                report.missed,
                f"{report.miss_rate * 100:.0f}%",
                report.weighted_tardiness,
            ]
        )
    print(format_table(
        ["scheduler", "makespan (s)", "missed", "miss rate",
         "weighted tardiness"],
        rows, precision=1,
    ))
    print(
        "\nEDF and the priority scheduler trade a slightly longer makespan "
        "for far fewer missed deadlines on the urgent tier."
    )


if __name__ == "__main__":
    main()
