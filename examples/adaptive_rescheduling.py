"""Checkpoint rescheduling under network drift (paper Section 6.3).

A schedule planned from a directory snapshot meets a different network by
the time its later events run.  This example plans a total exchange,
lets the network drift mid-communication (two backbone pairs congest
sharply), and compares three policies:

* no checkpoints (execute the stale plan to completion),
* O(P) checkpoints (re-plan after every ~P completed events),
* O(log P) checkpoints (re-plan after half the remaining events).

Run:  python examples/adaptive_rescheduling.py
"""

import numpy as np

import repro
from repro.adaptive import (
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.directory.service import DirectorySnapshot
from repro.util.tables import format_table


def main() -> None:
    num_procs = 16
    rng = np.random.default_rng(7)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(num_procs, rng=rng)
    estimate = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)

    # Early in the run the network reshuffles: pair bandwidths move by a
    # large log-normal factor (some pairs ~3x faster, others ~3x slower).
    # In-flight transfers adapt — the provider integrates progress across
    # the change — so nothing "locks in" its planning-time price.
    planned_time = repro.schedule_openshop(estimate).completion_time
    drift_at = 0.1 * planned_time
    reshuffled = repro.perturb_snapshot(snapshot, bandwidth_sigma=1.2, rng=rng)
    actual = repro.TotalExchangeProblem.from_snapshot(reshuffled, sizes)
    provider = piecewise_cost_provider(
        [0.0, drift_at], [estimate.cost, actual.cost]
    )

    print(f"{num_procs} processors; planned completion {planned_time:.1f}s; "
          f"network reshuffles at t={drift_at:.1f}s")
    print(f"post-drift lower bound: {actual.lower_bound():.1f}s")
    print()

    policies = [
        ("no checkpoints", NoCheckpoints()),
        (f"every {num_procs} events (O(P))", EveryKEvents(num_procs)),
        ("halving (O(log P))", HalvingCheckpoints()),
    ]
    rows = []
    for label, policy in policies:
        result = run_adaptive(estimate, provider, policy=policy)
        rows.append(
            [label, result.completion_time, result.reschedules,
             len(result.checkpoint_times)]
        )
    print(format_table(
        ["policy", "completion (s)", "reschedules", "checkpoints"],
        rows, precision=1,
    ))

    # Oracle reference: an openshop schedule planned with full knowledge
    # of the post-drift network (a floor for what rescheduling can reach).
    oracle = repro.schedule_openshop(actual).completion_time
    print(f"\noracle (planned on the post-drift network): {oracle:.1f}s")

    # Section 6.2 alternative: refine the stale orders instead of a full
    # re-plan — much cheaper than rescheduling from scratch.
    from repro.adaptive import refine_orders

    stale_orders = repro.schedule_openshop(estimate).send_orders()
    refined = refine_orders(stale_orders, actual, old_problem=estimate)
    print(
        f"incremental refinement of the stale plan: "
        f"{refined.initial_time:.1f}s -> {refined.completion_time:.1f}s "
        f"({refined.evaluations} candidate evaluations)"
    )


if __name__ == "__main__":
    main()
