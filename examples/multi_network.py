"""Exploiting multiple heterogeneous networks (paper refs [14, 15]).

Kim & Lilja's cluster: every node pair is joined by BOTH an
Ethernet-class network (cheap start-up, modest rate) and an ATM-class
network (expensive start-up, high rate).  This example reproduces their
two point-to-point techniques — PBPS network selection and message
aggregation — then schedules a full total exchange on the effective
dual-network cluster, and finishes with a placement twist: a cluster
where only half the nodes have the ATM interface.

Run:  python examples/multi_network.py
"""

import numpy as np

import repro
from repro.network.multinet import (
    Channel,
    MultiNetwork,
    aggregate_split,
    aggregate_time,
    pbps_crossover,
    pbps_time,
)
from repro.util.tables import format_table

ETHERNET = Channel("ethernet", latency=0.001, bandwidth=1.25e6)   # ~10 Mb/s
ATM = Channel("atm", latency=0.010, bandwidth=1.9e7)              # ~155 Mb/s


def main() -> None:
    # --- point-to-point: selection vs aggregation ------------------------
    crossover = pbps_crossover(ETHERNET, ATM)
    print(f"PBPS crossover: messages beyond {crossover:,.0f} bytes should "
          "take the ATM.\n")
    rows = []
    for size in (1e3, 1e4, 1e5, 1e6, 1e7):
        rows.append(
            [
                f"{size:g}",
                ETHERNET.transfer_time(size),
                ATM.transfer_time(size),
                pbps_time([ETHERNET, ATM], size),
                aggregate_time([ETHERNET, ATM], size),
            ]
        )
    print(format_table(
        ["bytes", "ethernet (s)", "ATM (s)", "PBPS (s)", "aggregate (s)"],
        rows, precision=4,
    ))
    split = aggregate_split([ETHERNET, ATM], 1e7)
    print(f"\naggregation split for 10 MB: "
          f"{split['ethernet'] / 1e6:.2f} MB on ethernet, "
          f"{split['atm'] / 1e6:.2f} MB on ATM "
          "(both finish simultaneously).\n")

    # --- a collective on the dual network --------------------------------
    n = 8
    net = MultiNetwork(n)
    for i in range(n):
        for j in range(i + 1, n):
            net.add_channel(i, j, ETHERNET)
            net.add_channel(i, j, ATM)
    rows = []
    for size, label in ((1e3, "1 kB"), (1e6, "1 MB")):
        snap = net.effective_snapshot(size, technique="pbps")
        problem = repro.TotalExchangeProblem.from_snapshot(
            snap, repro.UniformSizes(size)
        )
        t = repro.schedule_openshop(problem).completion_time
        rows.append([label, t, problem.lower_bound()])
    print(format_table(
        ["message size", "openshop on PBPS network (s)", "lower bound (s)"],
        rows, precision=3,
        title=f"{n}-node total exchange on the dual-network cluster",
    ))

    # --- partial deployment: only half the nodes have ATM ----------------
    partial = MultiNetwork(n)
    for i in range(n):
        for j in range(i + 1, n):
            partial.add_channel(i, j, ETHERNET)
            if i < n // 2 and j < n // 2:
                partial.add_channel(i, j, ATM)
    snap = partial.effective_snapshot(1e6, technique="pbps")
    problem = repro.TotalExchangeProblem.from_snapshot(
        snap, repro.UniformSizes(1e6)
    )
    schedule = repro.schedule_openshop(problem)
    from repro.analysis import explain_schedule

    print("\n-- ATM on half the nodes only --")
    print(explain_schedule(problem, schedule).summary())


if __name__ == "__main__":
    main()
