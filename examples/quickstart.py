"""Quickstart: schedule a heterogeneous total exchange.

Reproduces the paper's running example (Figures 3-8): five processors,
strongly heterogeneous message costs, and the full set of scheduling
algorithms — then repeats the exercise on the real GUSTO directory data
(Tables 1-2).

Run:  python examples/quickstart.py
"""

import repro
from repro.timing.diagram import render_timing_diagram
from repro.util.tables import format_table


def main() -> None:
    # --- The paper's running example -----------------------------------
    problem = repro.example_problem()
    print("5-processor running example; lower bound =", problem.lower_bound())
    print()

    rows = []
    for name in repro.scheduler_names():
        schedule = repro.get_scheduler(name)(problem)
        repro.check_schedule(schedule, problem.cost)  # sanity: valid schedule
        rows.append(
            [name, schedule.completion_time,
             schedule.completion_time / problem.lower_bound()]
        )
    print(format_table(["algorithm", "completion", "ratio to LB"], rows))
    print()

    print("Baseline timing diagram (cf. paper Figure 4):")
    print(render_timing_diagram(repro.schedule_baseline(problem), rows=18))
    print()
    print("Open shop timing diagram (cf. paper Figure 8):")
    print(render_timing_diagram(repro.schedule_openshop(problem), rows=18))
    print()

    # --- The same exercise on real directory data ----------------------
    directory = repro.gusto_directory()
    snapshot = directory.snapshot()
    gusto = repro.TotalExchangeProblem.from_snapshot(
        snapshot, repro.UniformSizes(repro.MEGABYTE)
    )
    print(f"GUSTO sites, 1 MB all-to-all; lower bound = "
          f"{gusto.lower_bound():.1f}s")
    rows = [
        [name, repro.get_scheduler(name)(gusto).completion_time]
        for name in repro.scheduler_names()
    ]
    print(format_table(["algorithm", "completion (s)"], rows, precision=1))

    best = repro.schedule_openshop(gusto)
    worst = repro.schedule_baseline(gusto)
    print(
        f"\nAdaptive scheduling saves "
        f"{worst.completion_time - best.completion_time:.1f}s "
        f"({worst.completion_time / best.completion_time:.2f}x) on this "
        "network."
    )


if __name__ == "__main__":
    main()
