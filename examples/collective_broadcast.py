"""Network-aware broadcast, scatter, and gather.

The paper's framework generalises beyond total exchange ("our approach
... can be used for different collective communication patterns").  This
example applies the same directory + model + scheduling pipeline to the
single-root collectives:

* broadcast: the homogeneous binomial tree vs the network-aware
  earliest-completion ("fastest node first") heuristic;
* scatter: direct root sends vs store-and-forward tree relaying;
* all-gather: expressed as a total exchange and handed to the paper's
  own schedulers unchanged.

Run:  python examples/collective_broadcast.py
"""

import numpy as np

import repro
from repro.collectives import (
    allgather_problem,
    binomial_tree,
    broadcast_lower_bound,
    scatter_direct,
    scatter_via_tree,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
)
from repro.directory.service import DirectorySnapshot
from repro.model.cost import cost_matrix
from repro.util.tables import format_table


def main() -> None:
    num_procs = 16
    rng = np.random.default_rng(11)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)

    # --- broadcast: 1 MB from node 0 to everyone ------------------------
    sizes = np.full((num_procs, num_procs), float(repro.MEGABYTE))
    np.fill_diagonal(sizes, 0.0)
    cost = cost_matrix(snapshot, sizes)
    binomial = schedule_broadcast_binomial(cost)
    fnf = schedule_broadcast_fnf(cost)
    lb = broadcast_lower_bound(cost)
    print(f"broadcast of 1 MB over {num_procs} heterogeneous nodes "
          f"(lower bound {lb:.1f}s):")
    print(format_table(
        ["algorithm", "completion (s)", "ratio to LB"],
        [
            ["binomial tree (homogeneous baseline)",
             binomial.completion_time, binomial.completion_time / lb],
            ["fastest-node-first (network-aware)",
             fnf.completion_time, fnf.completion_time / lb],
        ],
        precision=2,
    ))
    print(f"network awareness buys "
          f"{binomial.completion_time / fnf.completion_time:.1f}x here — "
          "the binomial tree keeps routing through slow links.\n")

    # --- scatter: distinct 1 MB blocks from node 0 ----------------------
    blocks = np.full(num_procs, float(repro.MEGABYTE))
    blocks[0] = 0.0
    direct = scatter_direct(snapshot, blocks)
    tree = scatter_via_tree(snapshot, blocks, binomial_tree(num_procs))
    print("scatter of per-node 1 MB blocks from node 0:")
    print(format_table(
        ["strategy", "completion (s)"],
        [
            ["direct (root sends everything)", direct.completion_time],
            ["binomial tree (store-and-forward bundles)",
             tree.completion_time],
        ],
        precision=2,
    ))
    better = "tree" if tree.completion_time < direct.completion_time else "direct"
    print(f"{better} scatter wins here: bundling parallelises the fan-out "
          "but pushes every byte through the relay twice — which side wins "
          "depends on whether the root's own paths are the bottleneck.\n")

    # --- all-gather via the paper's own schedulers -----------------------
    problem = allgather_problem(snapshot, 200 * repro.KILOBYTE)
    rows = []
    for name in ("baseline", "max_matching", "openshop"):
        schedule = repro.get_scheduler(name)(problem)
        rows.append([name, schedule.completion_time,
                     schedule.completion_time / problem.lower_bound()])
    print(f"all-gather (200 kB blocks) as a total exchange "
          f"(lower bound {problem.lower_bound():.1f}s):")
    print(format_table(["algorithm", "completion (s)", "ratio"], rows,
                       precision=2))


if __name__ == "__main__":
    main()
