"""Redistributing a matrix across a metacomputer.

The paper's motivating application (Section 4.1): a matrix distributed by
row blocks must be transposed so each processor holds column blocks — an
all-to-all personalized communication.  This example builds a link-level
metacomputer (three sites joined by heterogeneous long-haul links, as in
the paper's Figure 1), derives end-to-end parameters through the
directory service, and compares the schedulers on the transpose traffic.

Run:  python examples/matrix_transpose.py
"""

import numpy as np

import repro
from repro.directory import TopologyDirectory
from repro.network.topology import Metacomputer
from repro.util.tables import format_table
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads import transpose_sizes


def build_system() -> Metacomputer:
    """Three sites, four nodes each, heterogeneous backbone (Figure 1)."""
    return Metacomputer.build(
        {"west": 4, "midwest": 4, "east": 4},
        access_latency=seconds_from_ms(0.5),
        access_bandwidth=GBIT_PER_S,
        backbone=[
            # (site_a, site_b, latency_s, bandwidth_Bps)
            ("west", "midwest", seconds_from_ms(25), 6 * MBIT_PER_S),
            ("midwest", "east", seconds_from_ms(15), 45 * MBIT_PER_S),
            ("west", "east", seconds_from_ms(60), 2 * MBIT_PER_S),
        ],
    )


def main() -> None:
    system = build_system()
    directory = TopologyDirectory(system, software_overhead=seconds_from_ms(10))
    snapshot = directory.snapshot()
    num_procs = system.num_procs
    print(f"metacomputer: {num_procs} nodes across {len(system.sites)} sites")

    for matrix_size in (1_000, 4_000):
        sizes = transpose_sizes(matrix_size, num_procs, itemsize=8)
        problem = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
        volume_mb = sizes.sum() / 1e6
        print(
            f"\ntranspose of a {matrix_size}x{matrix_size} float64 matrix "
            f"({volume_mb:.0f} MB moved); lower bound = "
            f"{problem.lower_bound():.1f}s"
        )
        rows = []
        for name in repro.scheduler_names():
            schedule = repro.get_scheduler(name)(problem)
            rows.append(
                [
                    name,
                    schedule.completion_time,
                    schedule.completion_time / problem.lower_bound(),
                ]
            )
        print(format_table(["algorithm", "completion (s)", "ratio"], rows,
                           precision=2))

    # The schedule is adaptive: double the load on the slow west-east link
    # (halving its effective bandwidth) and the plan changes.
    print("\n-- after congestion on the west-east link (plus load drift) --")
    congested = repro.perturb_snapshot(
        snapshot,
        bandwidth_sigma=0.5,              # background load moved everywhere
        degrade_pairs=[
            (i, j)
            for i in range(0, 4)          # west nodes
            for j in range(8, 12)         # east nodes
        ],
        degrade_factor=4.0,
        rng=np.random.default_rng(3),
    )
    sizes = transpose_sizes(4_000, num_procs, itemsize=8)
    before = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
    after = repro.TotalExchangeProblem.from_snapshot(congested, sizes)
    replay = repro.planned_vs_actual(repro.schedule_openshop(before), after)
    fresh = repro.schedule_openshop(after)
    print(f"stale schedule under congestion:       {replay.actual_time:.1f}s")
    print(f"rescheduled from fresh directory info: "
          f"{fresh.completion_time:.1f}s  "
          f"(lower bound {after.lower_bound():.1f}s)")


if __name__ == "__main__":
    main()
