"""Diagnosing a slow collective: the schedule doctor workflow.

Given an instance and a schedule, answer the operator's questions: is
the makespan intrinsic (a port is simply that busy) or self-inflicted
(a bad order)?  Which chain of events sets the finish time?  Who idles,
waiting for whom?  Then export the evidence as an SVG timing diagram
and a Chrome trace for closer inspection.

Run:  python examples/schedule_doctor.py [output_dir]
"""

import pathlib
import sys
import tempfile

import numpy as np

import repro
from repro.analysis import compare_schedules, explain_schedule
from repro.directory.service import DirectorySnapshot
from repro.io import save_svg, save_trace


def main() -> None:
    out = pathlib.Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="schedule_doctor_")
    )

    # A patient: mixed traffic on a heterogeneous 10-node network.
    rng = np.random.default_rng(21)
    latency, bandwidth = repro.random_pairwise_parameters(10, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = repro.TotalExchangeProblem.from_snapshot(
        snapshot, repro.MixedSizes(), rng=rng
    )

    schedules = {
        "baseline": repro.schedule_baseline(problem),
        "greedy": repro.schedule_greedy(problem),
        "openshop": repro.schedule_openshop(problem),
    }
    print(compare_schedules(schedules, lower_bound=problem.lower_bound()))
    print()

    for name, schedule in schedules.items():
        print(f"--- diagnosis: {name} ---")
        print(explain_schedule(problem, schedule).summary())
        print()

    out.mkdir(parents=True, exist_ok=True)
    for name, schedule in schedules.items():
        save_svg(schedule, out / f"{name}.svg",
                 title=f"{name}: {schedule.completion_time:.1f}s")
        save_trace(schedule, out / f"{name}.trace.json")
    print(f"wrote SVG timing diagrams and Chrome traces to {out}/ "
          "(open the .trace.json files in chrome://tracing)")


if __name__ == "__main__":
    main()
