"""E5 — rank placement on a clustered metacomputer.

Adapting the communication *order* (the paper) composes with adapting
the *mapping* (MSHN's theme): on two fast sites joined by a slow
backbone, co-locating heavily-communicating ranks dwarfs what any
schedule reordering can recover.  Measured on a pairwise-heavy workload
and on the FFT butterfly (the caterpillar's home application).
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.directory import TopologyDirectory
from repro.network.topology import Metacomputer
from repro.placement import greedy_swap_placement, random_search_placement
from repro.util.tables import format_table
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads.fft import butterfly_sizes, butterfly_time


def clustered_snapshot(nodes_per_site=4):
    system = Metacomputer.build(
        {"a": nodes_per_site, "b": nodes_per_site},
        access_latency=seconds_from_ms(0.2),
        access_bandwidth=GBIT_PER_S,
        backbone=[("a", "b", seconds_from_ms(40), 5 * MBIT_PER_S)],
    )
    return TopologyDirectory(system).snapshot()


def pair_heavy_sizes(n):
    sizes = np.zeros((n, n))
    half = n // 2
    for i in range(half):
        sizes[i, i + half] = 5e6
        sizes[i + half, i] = 5e6
    return sizes


def test_placement_optimisation(report, benchmark):
    def sweep():
        snap = clustered_snapshot(4)
        rows = []

        sizes = pair_heavy_sizes(8)
        greedy = greedy_swap_placement(snap, sizes)
        random = random_search_placement(snap, sizes, trials=50, rng=0)
        rows.append(
            ["pairwise-heavy", greedy.identity_score, random.score,
             greedy.score]
        )

        bfly = butterfly_sizes(8, 1e6)
        greedy_b = greedy_swap_placement(snap, bfly)
        random_b = random_search_placement(snap, bfly, trials=50, rng=0)
        identity_time = butterfly_time(snap, 1e6, list(range(8)))
        optimised_time = butterfly_time(
            snap, 1e6, list(greedy_b.placement)
        )
        rows.append(
            ["butterfly (LB objective)", greedy_b.identity_score,
             random_b.score, greedy_b.score]
        )
        return rows, identity_time, optimised_time

    rows, identity_time, optimised_time = run_once(benchmark, sweep)
    text = format_table(
        ["workload", "identity", "random search (50)", "greedy swap"],
        rows,
        precision=3,
        title="E5: placement objective (busiest-port seconds) on a "
              "2-site metacomputer",
    )
    text += (
        f"\n\nbutterfly stage-wise time: identity {identity_time:.2f}s, "
        f"greedy placement {optimised_time:.2f}s"
    )
    report("ext_placement", text)

    # co-locating the heavy pairs erases the backbone from the bound
    assert rows[0][3] < 0.05 * rows[0][1]
    # local search at least matches 50 random draws on both workloads
    assert rows[0][3] <= rows[0][2] + 1e-9
    assert rows[1][3] <= rows[1][2] + 1e-9
    # the butterfly cannot dodge the backbone entirely, but placement
    # must never make it worse
    assert optimised_time <= identity_time * 1.05