"""X7 — scheduling through the day on a load-varying metacomputer.

End-to-end exercise of the topology-backed directory with diurnal
background load: the same 1 MB total exchange is scheduled at different
times of day; the adaptive scheduler's completion time follows the load
curve, and a stale overnight plan replayed at the afternoon peak loses
to a fresh one.
"""

import math

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.directory import TopologyDirectory
from repro.directory.dynamics import DiurnalLoad
from repro.network.topology import Metacomputer
from repro.sim.replay import replay_schedule
from repro.util.tables import format_table
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms

DAY = 86_400.0


def build_directory() -> TopologyDirectory:
    system = Metacomputer.build(
        {"west": 3, "east": 3},
        access_latency=seconds_from_ms(0.5),
        access_bandwidth=GBIT_PER_S,
        backbone=[("west", "east", seconds_from_ms(40), 20 * MBIT_PER_S)],
    )

    def load_factory(edge):
        # backbone load peaks mid-day; site access links stay calm
        if "hub" in edge[0] and "hub" in edge[1]:
            return DiurnalLoad(mean=2.0, amplitude=1.8, period=DAY,
                               phase=-math.pi / 2)  # minimum at t=0
        return DiurnalLoad(mean=0.2, amplitude=0.1, period=DAY,
                           phase=-math.pi / 2)

    return TopologyDirectory(
        system, load_factory=load_factory,
        software_overhead=seconds_from_ms(10),
    )


def test_time_of_day(report, benchmark):
    def sweep():
        directory = build_directory()
        n = directory.num_procs
        sizes = np.full((n, n), float(repro.MEGABYTE))
        np.fill_diagonal(sizes, 0.0)
        rows = []
        plans = {}
        for hour in (0, 6, 12, 18):
            target = hour * 3600.0
            directory.advance(target - directory.time)
            problem = repro.TotalExchangeProblem.from_snapshot(
                directory.snapshot(), sizes
            )
            schedule = repro.schedule_openshop(problem)
            plans[hour] = (schedule, problem)
            rows.append(
                [hour, problem.lower_bound(), schedule.completion_time]
            )
        # replay the midnight plan at the noon network
        noon_problem = plans[12][1]
        stale = replay_schedule(plans[0][0], noon_problem).completion_time
        fresh = plans[12][0].completion_time
        return rows, stale, fresh

    rows, stale, fresh = run_once(benchmark, sweep)
    text = format_table(
        ["hour", "lower bound (s)", "openshop completion (s)"],
        rows,
        precision=1,
        title="X7: 1 MB total exchange across the diurnal load cycle",
    )
    text += (
        f"\n\nmidnight plan replayed at noon: {stale:.1f}s vs "
        f"fresh noon plan: {fresh:.1f}s"
    )
    report("ext_diurnal", text)

    by_hour = {row[0]: row[2] for row in rows}
    # noon (peak backbone load) is the slowest time to run the exchange
    assert by_hour[12] > by_hour[0]
    assert by_hour[12] > by_hour[18] or by_hour[12] > by_hour[6]
    # refreshing the plan at noon never loses to the stale midnight plan
    assert fresh <= stale + 1e-9
