"""X2 — incremental schedule refinement (paper Section 6.2).

After sparse bandwidth changes, compare (a) keeping the stale schedule,
(b) incrementally refining it, and (c) rescheduling from scratch — in
both solution quality and scheduling cost (executor evaluations for the
refiner, measured wall-clock for everything).
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.adaptive.incremental import refine_orders
from repro.core.openshop import schedule_openshop
from repro.sim.engine import execute_orders
from repro.util.tables import format_table
from tests.conftest import random_problem

NUM_PROCS = 12
TRIALS = 8


def one_trial(seed: int):
    old = random_problem(NUM_PROCS, seed=seed, low=0.2, high=10.0)
    rng = np.random.default_rng(seed + 1000)
    # sparse change: ~15% of the pairs move strongly
    factors = np.where(
        rng.random(old.cost.shape) < 0.15,
        np.exp(rng.normal(0.0, 1.5, old.cost.shape)),
        1.0,
    )
    new_cost = old.cost * factors
    np.fill_diagonal(new_cost, 0.0)
    new = repro.TotalExchangeProblem(cost=new_cost)
    stale_orders = schedule_openshop(old).send_orders()
    stale = execute_orders(new, stale_orders, validate=False).completion_time
    refined = refine_orders(stale_orders, new, old_problem=old)
    rescheduled = schedule_openshop(new).completion_time
    return stale, refined.completion_time, rescheduled, refined.evaluations


def test_incremental_refinement(report, benchmark):
    def run_all():
        return [one_trial(seed) for seed in range(TRIALS)]

    trials = run_once(benchmark, run_all)
    arr = np.asarray(trials)
    rows = [
        ["stale schedule", float(arr[:, 0].mean()), "-"],
        ["incremental refine", float(arr[:, 1].mean()),
         f"{arr[:, 3].mean():.0f} evals"],
        ["full reschedule", float(arr[:, 2].mean()), "full O(P^3)"],
    ]
    report(
        "ext_incremental_refine",
        format_table(
            ["strategy", "mean completion (s)", "scheduling cost"],
            rows,
            title=f"X2: refinement after sparse bandwidth changes "
                  f"(P={NUM_PROCS}, {TRIALS} trials)",
        ),
    )
    stale_mean, refined_mean, fresh_mean = (
        arr[:, 0].mean(), arr[:, 1].mean(), arr[:, 2].mean()
    )
    assert refined_mean <= stale_mean + 1e-9   # refinement never hurts
    # refinement recovers a solid share of what full rescheduling gets
    if stale_mean > fresh_mean + 1e-9:
        recovered = (stale_mean - refined_mean) / (stale_mean - fresh_mean)
        assert recovered > 0.25
