"""A6 — adversarial robustness of the schedulers.

Failure injection: instances constructed to break specific algorithms
(the caterpillar killer, the generalised Theorem 2 chain), plus random
worst-case search probing how tight the proven bounds are in practice.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.baseline import schedule_baseline, schedule_baseline_nosync
from repro.core.openshop import schedule_openshop
from repro.util.tables import format_table
from repro.workloads.adversarial import (
    caterpillar_killer,
    theorem2_chain,
    worst_case_search,
)


def test_adversarial_instances(report, benchmark):
    def sweep():
        rows = []
        for p in (5, 9, 15, 25):
            killer = caterpillar_killer(p, long=1.0, short=1e-4)
            lb = killer.lower_bound()
            rows.append(
                [
                    f"killer P={p}",
                    schedule_baseline(killer).completion_time / lb,
                    schedule_baseline_nosync(killer).completion_time / lb,
                    schedule_openshop(killer).completion_time / lb,
                    repro.schedule_matching_max(killer).completion_time / lb,
                ]
            )
        for p in (4, 8, 12):
            chain = theorem2_chain(p, epsilon=1e-6)
            lb = chain.lower_bound()
            rows.append(
                [
                    f"thm2 chain P={p}",
                    schedule_baseline(chain).completion_time / lb,
                    schedule_baseline_nosync(chain).completion_time / lb,
                    schedule_openshop(chain).completion_time / lb,
                    repro.schedule_matching_max(chain).completion_time / lb,
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_adversarial",
        format_table(
            ["instance", "baseline (barrier)", "baseline (strict)",
             "openshop", "max matching"],
            rows,
            precision=2,
            title="A6: adversarial instances — ratio to lower bound",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # the killer blows up the barrier baseline roughly linearly in P...
    assert by_name["killer P=25"][1] > 18.0
    # ...while the strict variant honours Theorem 2 and the adaptive
    # algorithms barely notice
    assert by_name["killer P=25"][2] <= 12.5
    assert by_name["killer P=25"][3] < 1.5
    # the generalised chain is tight at P/2 for the strict baseline
    assert abs(by_name["thm2 chain P=12"][2] - 6.0) < 0.05
    # open shop never leaves its 2x guarantee, even here
    for row in rows:
        assert row[3] <= 2.0 + 1e-9


def test_worst_case_probe(report, benchmark):
    def probe():
        rows = []
        for name in ("openshop", "greedy", "max_matching"):
            scheduler = repro.get_scheduler(name)
            _, ratio = worst_case_search(
                scheduler, 6, trials=150, rng=0
            )
            rows.append([name, ratio])
        return rows

    rows = run_once(benchmark, probe)
    report(
        "ablation_worst_case_probe",
        format_table(
            ["scheduler", "worst ratio over 150 random P=6 instances"],
            rows,
            title="A6b: empirical bound probing",
        ),
    )
    by_name = dict(rows)
    assert by_name["openshop"] <= 2.0
    # random instances do not come close to the theoretical worst cases
    assert by_name["openshop"] < 1.4
