"""A4 — execution-semantics ablation.

The same caterpillar step structure under three run-time disciplines:

* barrier-synchronised steps (lockstep SIMD-style — the paper's
  simulated baseline),
* strict order-preserving, no barriers (Theorem 2's dependence-graph
  model),
* FIFO work-conserving receivers (what a rendezvous protocol without
  fixed receive orders would do).

Quantifies how much of the baseline's poor performance is the fixed
*order* and how much is the synchronisation discipline.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.baseline import baseline_orders, baseline_steps
from repro.directory.service import DirectorySnapshot
from repro.sim.engine import (
    execute_orders,
    execute_steps_barrier,
    execute_steps_strict,
)
from repro.util.tables import format_table

TRIALS = 6


def one_case(num_procs: int, seed: int):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(num_procs, rng=rng)
    problem = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
    lb = problem.lower_bound()
    steps = baseline_steps(num_procs)
    orders = baseline_orders(num_procs)
    return (
        execute_steps_barrier(problem.cost, steps).completion_time / lb,
        execute_steps_strict(problem.cost, steps).completion_time / lb,
        execute_orders(problem, orders).completion_time / lb,
    )


def test_executor_semantics(report, benchmark):
    def sweep():
        rows = []
        for num_procs in (10, 25, 50):
            samples = np.array(
                [one_case(num_procs, seed) for seed in range(TRIALS)]
            )
            rows.append([num_procs, *samples.mean(axis=0).tolist()])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_executor_semantics",
        format_table(
            ["P", "barrier (ratio to LB)", "strict (ratio)",
             "FIFO (ratio)"],
            rows,
            title="A4: caterpillar baseline under three execution "
                  f"disciplines (mixed workload, {TRIALS} trials)",
        ),
    )
    for _, barrier, strict, fifo in rows:
        # relaxing the discipline monotonically helps
        assert fifo <= strict + 1e-9
        assert strict <= barrier + 1e-9
    # barriers are the dominant cause of the baseline's collapse
    assert rows[-1][1] > 1.5 * rows[-1][2]
