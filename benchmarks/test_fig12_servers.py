"""F12 — 20% of the processors are multimedia servers (paper Figure 12).

Servers send 1 MB objects to every client; all other messages are 1 kB.
"It can be seen that the baseline algorithm performs very poorly in such
scenarios.  Our algorithms perform 2 to 5 times faster than the baseline
in these examples."
"""

from benchmarks.figure_common import check_shape, run_figure
from repro.experiments.figures import figure12_servers


def test_figure_12(report, benchmark):
    result = run_figure(report, benchmark, "fig12_servers", figure12_servers)
    check_shape(result)
    # the adaptive schedules all sit essentially on the lower bound here
    # (server send rows dominate and they pack them perfectly).
    assert result.mean_ratio("openshop") < 1.1
    assert result.mean_ratio("max_matching") < 1.15
