"""E3 — the full scheduler zoo on the mixed workload.

Places the paper's five algorithms among the extra comparators (LPT,
random order, local search, and — at small P — the exact optimum), to
show where the paper's heuristics sit in the wider design space.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.exact import branch_and_bound
from repro.directory.service import DirectorySnapshot
from repro.util.tables import format_table

ZOO = [
    "baseline",
    "baseline_nosync",
    "greedy",
    "min_matching",
    "max_matching",
    "lpt",
    "local_search",
    "openshop",
    "random_order",
]

TRIALS = 5


def make_problem(num_procs: int, seed: int):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(num_procs, rng=rng)
    return repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)


def test_scheduler_zoo(report, benchmark):
    def sweep():
        ratios = {name: [] for name in ZOO}
        for seed in range(TRIALS):
            problem = make_problem(20, seed)
            lb = problem.lower_bound()
            for name in ZOO:
                t = repro.get_scheduler(name)(problem).completion_time
                ratios[name].append(t / lb)
        return {name: float(np.mean(v)) for name, v in ratios.items()}

    means = run_once(benchmark, sweep)
    rows = sorted(
        ([name, ratio] for name, ratio in means.items()),
        key=lambda row: row[1],
    )
    report(
        "ext_scheduler_zoo",
        format_table(
            ["scheduler", "mean ratio to LB"],
            rows,
            title=f"E3: scheduler zoo, mixed workload, P=20, "
                  f"{TRIALS} instances",
        ),
    )
    # the paper's best stays best-in-class among the cheap heuristics
    assert means["openshop"] <= means["lpt"] + 0.03
    assert means["openshop"] <= means["random_order"]
    # local search only ever tightens the openshop seed
    assert means["local_search"] <= means["openshop"] + 1e-9
    # both baselines trail the adaptive algorithms
    assert means["baseline"] >= means["max_matching"]


def test_optimal_gap_small_instances(report, benchmark):
    def sweep():
        rows = []
        for seed in range(4):
            problem = make_problem(4, seed + 50)
            optimal = branch_and_bound(problem).completion_time
            rows.append(
                [
                    seed,
                    problem.lower_bound(),
                    optimal,
                    repro.schedule_openshop(problem).completion_time,
                    repro.schedule_matching_max(problem).completion_time,
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_optimal_gap",
        format_table(
            ["instance", "lower bound", "optimal", "openshop",
             "max matching"],
            rows,
            precision=4,
            title="E3b: exact optimum vs heuristics (P=4, mixed workload)",
        ),
    )
    for _, lb, optimal, openshop, matching in rows:
        assert lb - 1e-9 <= optimal <= openshop + 1e-9
        assert optimal <= matching + 1e-9
        assert openshop <= 2 * optimal + 1e-9
