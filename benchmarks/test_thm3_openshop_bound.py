"""Thm3 — the open shop heuristic is within 2x the lower bound.

Samples many random instances across sizes and workload shapes, reports
the worst observed ratio, and times the O(P^3) heuristic at P=50.
"""

import numpy as np

import repro
from repro.core.openshop import schedule_openshop
from repro.util.tables import format_table
from tests.conftest import random_problem


def test_theorem3_bound(report, benchmark):
    rows = []
    for num_procs in (5, 10, 20, 50):
        worst = 0.0
        mean = []
        for seed in range(20):
            problem = random_problem(
                num_procs, seed=seed, low=0.01, high=100.0
            )
            ratio = (
                schedule_openshop(problem).completion_time
                / problem.lower_bound()
            )
            worst = max(worst, ratio)
            mean.append(ratio)
            assert ratio <= 2.0 + 1e-9
        rows.append([num_procs, float(np.mean(mean)), worst])
    report(
        "thm3_openshop_bound",
        format_table(
            ["P", "mean ratio", "worst ratio (bound 2.0)"], rows,
            title="Theorem 3: open shop completion vs lower bound "
                  "(20 random instances per P)",
        ),
    )

    problem = random_problem(50, seed=0)
    benchmark(schedule_openshop, problem)
