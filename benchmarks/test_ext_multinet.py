"""E4 — multiple heterogeneous networks (paper Section 2, refs [14, 15]).

Kim & Lilja's point-to-point techniques, reproduced: the PBPS crossover
between an Ethernet-class and an ATM-class network, aggregation's
speedup over the best single network, and a total exchange scheduled on
the effective multi-network cluster.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import run_once
from repro.network.multinet import (
    Channel,
    MultiNetwork,
    aggregate_time,
    pbps_crossover,
    pbps_time,
)
from repro.util.tables import format_table

ETHERNET = Channel("ethernet", latency=0.001, bandwidth=1.25e6)
ATM = Channel("atm", latency=0.010, bandwidth=1.9e7)
SIZES = (1e3, 1e4, 1e5, 1e6, 1e7)


def test_point_to_point_techniques(report, benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            eth = ETHERNET.transfer_time(size)
            atm = ATM.transfer_time(size)
            rows.append(
                [
                    f"{size:g}",
                    eth,
                    atm,
                    pbps_time([ETHERNET, ATM], size),
                    aggregate_time([ETHERNET, ATM], size),
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    crossover = pbps_crossover(ETHERNET, ATM)
    text = format_table(
        ["message bytes", "ethernet (s)", "ATM (s)", "PBPS (s)",
         "aggregation (s)"],
        rows,
        precision=4,
        title="E4: point-to-point over two networks "
              f"(PBPS crossover at {crossover:,.0f} bytes)",
    )
    report("ext_multinet_point_to_point", text)

    for _, eth, atm, pbps, agg in rows:
        assert pbps == min(eth, atm)
        assert agg <= pbps + 1e-12
    # the crossover lies inside the swept range
    assert SIZES[0] < crossover < SIZES[-1]


def test_collective_on_multinetwork(report, benchmark):
    def sweep():
        n = 8
        net = MultiNetwork(n)
        for i in range(n):
            for j in range(i + 1, n):
                net.add_channel(i, j, ETHERNET)
                net.add_channel(i, j, ATM)
        rows = []
        for size, label in ((1e3, "1 kB"), (1e6, "1 MB")):
            times = {}
            for technique in ("pbps", "aggregate"):
                snap = net.effective_snapshot(size, technique=technique)
                problem = repro.TotalExchangeProblem.from_snapshot(
                    snap, repro.UniformSizes(size)
                )
                times[technique] = repro.schedule_openshop(
                    problem
                ).completion_time
            # single-network references
            for channel in (ETHERNET, ATM):
                latency = np.full((n, n), channel.latency)
                np.fill_diagonal(latency, 0.0)
                bandwidth = np.full((n, n), channel.bandwidth)
                np.fill_diagonal(bandwidth, np.inf)
                from repro.directory.service import DirectorySnapshot

                snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
                problem = repro.TotalExchangeProblem.from_snapshot(
                    snap, repro.UniformSizes(size)
                )
                times[channel.name] = repro.schedule_openshop(
                    problem
                ).completion_time
            rows.append(
                [label, times["ethernet"], times["atm"], times["pbps"],
                 times["aggregate"]]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_multinet_collective",
        format_table(
            ["message size", "ethernet only (s)", "ATM only (s)",
             "PBPS (s)", "aggregation (s)"],
            rows,
            precision=3,
            title="E4b: 8-node total exchange on a dual-network cluster "
                  "(open shop scheduling)",
        ),
    )
    for _, eth, atm, pbps, agg in rows:
        # exploiting both networks never loses to the best single one
        assert pbps <= min(eth, atm) + 1e-9
        assert agg <= pbps + 1e-9
    # small messages ride the Ethernet, large ones the ATM: PBPS tracks
    # whichever is better at each size
    assert rows[0][3] == pytest.approx(rows[0][1], rel=1e-6)  # 1 kB ~ ethernet
