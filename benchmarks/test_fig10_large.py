"""F10 — all-to-all with large (1 MB) messages (paper Figure 10)."""

from benchmarks.figure_common import check_shape, run_figure
from repro.experiments.figures import (
    figure09_small_messages,
    figure10_large_messages,
)


def test_figure_10(report, benchmark):
    result = run_figure(report, benchmark, "fig10_large", figure10_large_messages)
    check_shape(result)
    # bandwidth-dominated: at least an order of magnitude slower than
    # the small-message exchange at the same scale.
    small = figure09_small_messages(proc_counts=(50,), trials=3, seed=0)
    assert (
        result.completion["openshop"][-1]
        > 10 * small.completion["openshop"][0]
    )
