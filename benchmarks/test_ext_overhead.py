"""E6 — does computing the schedule pay for itself? (Section 6.2 motivation).

Wall-clock scheduling cost (this machine) vs simulated communication
savings over the baseline, across system sizes and message sizes.  The
paper's worry — repeated run-time scheduling being expensive — only
materialises for tiny messages; everywhere else the savings dwarf the
milliseconds of computation.
"""

from benchmarks.conftest import run_once
from repro.experiments.overhead import run_overhead_analysis
from repro.util.tables import format_table


def test_scheduling_overhead_breakeven(report, benchmark):
    points = run_once(
        benchmark,
        run_overhead_analysis,
        proc_counts=(10, 30, 50),
        message_sizes=(1e3, 1e5, 1e6),
        trials=2,
    )
    rows = [
        [
            p.num_procs,
            f"{p.message_bytes:g}",
            p.scheduling_seconds * 1e3,
            p.savings,
            "yes" if p.pays_off else "no",
        ]
        for p in points
    ]
    report(
        "ext_overhead_breakeven",
        format_table(
            ["P", "message bytes", "scheduling cost (ms)",
             "comm saved vs baseline (s)", "pays off"],
            rows,
            precision=2,
            title="E6: scheduling cost vs communication savings (openshop)",
        ),
    )
    by_cell = {(p.num_procs, p.message_bytes): p for p in points}
    # headline: for 1 MB messages adaptivity pays at every scale
    for num_procs in (10, 30, 50):
        assert by_cell[(num_procs, 1e6)].pays_off
    # scheduling cost stays in milliseconds even at P=50
    assert by_cell[(50, 1e6)].scheduling_seconds < 0.5
    # savings grow with P for bandwidth-bound traffic
    assert (
        by_cell[(50, 1e6)].savings > by_cell[(10, 1e6)].savings
    )
