"""X5 — directory forecasting vs stale planning (Section 6.3 premise).

Network conditions drift deterministically (per-pair multiplicative
trends); schedules are planned from (a) the latest snapshot, (b) an EWMA
level forecast, (c) a linear trend forecast, then replayed against the
realised network.  The linear forecaster should track trends that make
the stale plan mis-order events.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.directory.forecast import (
    SnapshotHistory,
    ewma_forecast,
    forecast_error,
    linear_forecast,
)
from repro.directory.service import DirectorySnapshot
from repro.sim.replay import replay_schedule
from repro.util.tables import format_table

NUM_PROCS = 10
TRIALS = 6


def one_trial(seed: int, trend_sigma: float):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(NUM_PROCS, rng=rng)
    trend = np.exp(rng.normal(0.0, trend_sigma, (NUM_PROCS, NUM_PROCS)))
    trend = (trend + trend.T) / 2
    np.fill_diagonal(trend, 1.0)

    history = SnapshotHistory()
    bw = bandwidth.copy()
    for k in range(4):
        history.push(
            DirectorySnapshot(latency=latency, bandwidth=bw, time=float(k))
        )
        bw = bw * trend
    realised = DirectorySnapshot(latency=latency, bandwidth=bw, time=4.0)
    sizes = repro.MixedSizes().sizes(NUM_PROCS, rng=rng)
    truth = repro.TotalExchangeProblem.from_snapshot(realised, sizes)

    def plan_and_replay(snapshot):
        plan = repro.schedule_openshop(
            repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
        )
        return replay_schedule(plan, truth).completion_time

    return {
        "stale": plan_and_replay(history.latest),
        "ewma": plan_and_replay(ewma_forecast(history, alpha=0.6)),
        "linear": plan_and_replay(linear_forecast(history, horizon=1.0)),
        "oracle": repro.schedule_openshop(truth).completion_time,
        "stale_err": forecast_error(history.latest, realised),
        "linear_err": forecast_error(
            linear_forecast(history, horizon=1.0), realised
        ),
    }


def test_forecast_planning(report, benchmark):
    def sweep():
        rows = []
        for trend_sigma in (0.05, 0.15, 0.3):
            trials = [
                one_trial(seed, trend_sigma) for seed in range(TRIALS)
            ]
            rows.append(
                [
                    trend_sigma,
                    float(np.mean([t["stale"] for t in trials])),
                    float(np.mean([t["ewma"] for t in trials])),
                    float(np.mean([t["linear"] for t in trials])),
                    float(np.mean([t["oracle"] for t in trials])),
                    float(np.mean([t["linear_err"] for t in trials]))
                    / max(
                        float(np.mean([t["stale_err"] for t in trials])),
                        1e-12,
                    ),
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_forecast_planning",
        format_table(
            ["trend sigma", "stale plan (s)", "EWMA plan (s)",
             "linear plan (s)", "oracle (s)", "linear/stale fcst error"],
            rows,
            title=f"X5: planning on forecasts under deterministic drift "
                  f"(P={NUM_PROCS}, {TRIALS} trials)",
        ),
    )
    for _, stale, ewma, linear, oracle, err_ratio in rows:
        # geometric trends are what the log-space forecaster fits: its
        # prediction error collapses relative to the stale view
        assert err_ratio < 0.05
        # its plans track the oracle and never lose to stale planning
        assert linear <= stale * 1.02
        assert oracle <= linear * 1.02 + 1e-9
    # under the strongest trend, forecasting visibly helps
    assert rows[-1][3] < rows[-1][1]
