"""Thm2 — the baseline's P/2 x lower-bound ratio is tight (Theorem 2).

Regenerates the theorem's adversarial instance for a range of epsilon
values and shows the ratio converging to P/2 = 2, plus the general-bound
check over random instances.
"""

import numpy as np

import repro
from repro.core.baseline import schedule_baseline_nosync
from repro.core.problem import tight_baseline_instance
from repro.util.tables import format_table
from tests.conftest import random_problem


def test_theorem2_tightness(report, benchmark):
    rows = []
    for epsilon in (0.1, 0.01, 0.001, 1e-6):
        problem = tight_baseline_instance(epsilon)
        t = schedule_baseline_nosync(problem).completion_time
        ratio = t / problem.lower_bound()
        rows.append([epsilon, t, problem.lower_bound(), ratio])
    text = format_table(
        ["epsilon", "baseline t_max", "t_lb", "ratio"], rows, precision=6,
        title="Theorem 2 tight instance (P=4, bound P/2 = 2)",
    )

    # general bound over random instances: never above P/2.
    worst = 0.0
    for seed in range(50):
        problem = random_problem(8, seed=seed, low=0.01, high=100.0)
        t = schedule_baseline_nosync(problem).completion_time
        worst = max(worst, t / problem.lower_bound())
    text += (
        f"\n\nworst observed random-instance ratio at P=8: {worst:.3f} "
        f"(bound: {8 / 2:.1f})"
    )
    report("thm2_baseline_bound", text)

    assert rows[-1][3] > 1.999  # converges to 2
    assert worst <= 4.0

    problem = tight_baseline_instance(1e-6)
    benchmark(schedule_baseline_nosync, problem)
