"""X1 — checkpoint rescheduling under drift (paper Section 6.3).

Plans from a stale snapshot, reshuffles pair bandwidths early in the
run (log-normal, sigma 1.2), and compares the checkpoint policies the
paper sketches: none, O(P) (every ~P events), and O(log P) (halving).
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.adaptive import (
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.core.openshop import schedule_openshop
from repro.directory.service import DirectorySnapshot
from repro.util.tables import format_table

NUM_PROCS = 12
TRIALS = 8


def one_trial(seed: int):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(NUM_PROCS, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(NUM_PROCS, rng=rng)
    estimate = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
    drift_at = 0.1 * schedule_openshop(estimate).completion_time
    moved = repro.perturb_snapshot(snapshot, bandwidth_sigma=1.2, rng=rng)
    actual = repro.TotalExchangeProblem.from_snapshot(moved, sizes)
    provider = piecewise_cost_provider(
        [0.0, drift_at], [estimate.cost, actual.cost]
    )
    out = {}
    for label, policy in (
        ("none", NoCheckpoints()),
        ("O(P)", EveryKEvents(NUM_PROCS)),
        ("O(logP)", HalvingCheckpoints()),
    ):
        result = run_adaptive(estimate, provider, policy=policy)
        out[label] = (result.completion_time, result.reschedules)
    return out


def test_checkpoint_policies(report, benchmark):
    def run_all():
        return [one_trial(seed) for seed in range(TRIALS)]

    trials = run_once(benchmark, run_all)
    labels = ["none", "O(P)", "O(logP)"]
    rows = []
    for label in labels:
        times = [t[label][0] for t in trials]
        reschedules = [t[label][1] for t in trials]
        rows.append(
            [label, float(np.mean(times)), float(np.max(times)),
             float(np.mean(reschedules))]
        )
    report(
        "ext_checkpoint_policies",
        format_table(
            ["policy", "mean completion (s)", "worst (s)",
             "mean reschedules"],
            rows,
            title=f"X1: checkpoint rescheduling under reshuffle "
                  f"(P={NUM_PROCS}, {TRIALS} trials)",
        ),
    )
    mean = {row[0]: row[1] for row in rows}
    # adaptivity pays: both checkpointing policies beat the stale plan.
    assert mean["O(P)"] <= mean["none"]
    assert mean["O(logP)"] <= mean["none"]
