"""E1 — heterogeneous broadcast: binomial baseline vs network-aware FNF.

The broadcast analogue of the paper's total-exchange result: the
homogeneous-optimal algorithm (binomial tree) degrades badly on a
heterogeneous network while a directory-driven greedy stays near the
lower bound.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.collectives import (
    broadcast_lower_bound,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
)
from repro.directory.service import DirectorySnapshot
from repro.model.cost import cost_matrix
from repro.util.tables import format_table

TRIALS = 5


def one_point(num_procs: int, seed: int):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = np.full((num_procs, num_procs), float(repro.MEGABYTE))
    np.fill_diagonal(sizes, 0.0)
    cost = cost_matrix(snapshot, sizes)
    lb = broadcast_lower_bound(cost)
    return (
        schedule_broadcast_binomial(cost).completion_time,
        schedule_broadcast_fnf(cost).completion_time,
        lb,
    )


def test_broadcast_heterogeneity(report, benchmark):
    def sweep():
        rows = []
        for num_procs in (8, 16, 32, 50):
            samples = np.array(
                [one_point(num_procs, seed) for seed in range(TRIALS)]
            )
            binomial, fnf, lb = samples.mean(axis=0)
            rows.append([num_procs, binomial, fnf, binomial / fnf])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_broadcast",
        format_table(
            ["P", "binomial (s)", "fastest-node-first (s)",
             "binomial / FNF"],
            rows,
            title=f"E1: 1 MB broadcast on GUSTO-guided random networks "
                  f"({TRIALS} trials)",
        ),
    )
    for _, binomial, fnf, advantage in rows:
        assert fnf <= binomial + 1e-9
    # network awareness pays more at scale
    assert rows[-1][3] > 2.0


def test_barrier_algorithms(report, benchmark):
    """E1c — barrier synchronisation: dissemination vs tournament."""
    from repro.collectives import dissemination_barrier, tournament_barrier
    from repro.directory.service import DirectorySnapshot

    def sweep():
        rows = []
        for n in (8, 16, 32):
            rng = np.random.default_rng(1)
            latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
            snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
            _, diss = dissemination_barrier(snap)
            _, tour = tournament_barrier(snap)
            rows.append([n, diss * 1e3, tour * 1e3])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_barrier_algorithms",
        format_table(
            ["P", "dissemination (ms)", "tournament (ms)"],
            rows,
            precision=1,
            title="E1c: barrier completion on GUSTO-guided random networks",
        ),
    )
    for _, diss, tour in rows:
        # both are latency-scale (tens to hundreds of ms), data-free
        assert diss < 1000 and tour < 1000
    # both grow roughly logarithmically: x4 nodes, far less than x4 time
    assert rows[-1][1] < 3 * rows[0][1]


def test_allreduce_ring_vs_tree(report, benchmark):
    """Ring vs tree all-reduce: bandwidth-optimal vs heterogeneity-robust."""
    from repro.collectives import allreduce_ring, allreduce_tree, binomial_tree
    from repro.directory.service import DirectorySnapshot

    def sweep():
        rows = []
        n = 16
        # homogeneous reference
        lat = np.full((n, n), 1e-4)
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e7)
        np.fill_diagonal(bw, np.inf)
        homo = DirectorySnapshot(latency=lat, bandwidth=bw)
        # heterogeneous: GUSTO-guided random pairs
        rng = np.random.default_rng(0)
        lat_h, bw_h = repro.random_pairwise_parameters(n, rng=rng)
        hetero = DirectorySnapshot(latency=lat_h, bandwidth=bw_h)
        for label, snap in (("homogeneous", homo), ("heterogeneous", hetero)):
            _, ring = allreduce_ring(snap, 8e6, combine_rate=1e12)
            _, tree = allreduce_tree(
                snap, 8e6, binomial_tree(n), combine_rate=1e12
            )
            rows.append([label, ring, tree, ring / tree])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_allreduce_ring_vs_tree",
        format_table(
            ["network", "ring all-reduce (s)", "tree all-reduce (s)",
             "ring / tree"],
            rows,
            precision=3,
            title="E1b: 8 MB all-reduce over 16 nodes",
        ),
    )
    by_label = {row[0]: row for row in rows}
    # ring is bandwidth-optimal when links are equal
    assert by_label["homogeneous"][3] < 0.5
    # in this bandwidth-dominated regime ring still wins on the
    # heterogeneous network (the tree ships whole blocks over slow
    # links), but paying the slowest ring edge 2(P-1) times erodes its
    # advantage substantially
    assert (
        by_label["heterogeneous"][3] > 1.5 * by_label["homogeneous"][3]
    )
