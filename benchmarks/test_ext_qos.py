"""X3 — QoS-constrained scheduling (paper Section 6.4).

Deadline-tagged total exchange: the QoS-blind open shop scheduler vs the
EDF and priority variants; plus the critical-resource scheduler's effect
on the critical processor's finish time.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.openshop import schedule_openshop
from repro.qos import (
    QoSMessage,
    QoSProblem,
    critical_finish_time,
    evaluate_qos,
    schedule_critical_first,
    schedule_edf,
    schedule_llf,
    schedule_priority,
)
from repro.util.tables import format_table
from tests.conftest import random_problem

NUM_PROCS = 12
TRIALS = 8


def tag_messages(base, rng):
    lb = base.lower_bound()
    messages = []
    for src, dst in base.positive_events():
        if rng.random() < 1 / 3:
            messages.append(
                QoSMessage(src=src, dst=dst, deadline=0.5 * lb, priority=10.0)
            )
        else:
            messages.append(
                QoSMessage(src=src, dst=dst, deadline=1.4 * lb, priority=1.0)
            )
    return QoSProblem(base=base, messages=tuple(messages))


def one_trial(seed: int):
    base = random_problem(NUM_PROCS, seed=seed, low=0.2, high=10.0)
    rng = np.random.default_rng(seed)
    problem = tag_messages(base, rng)
    out = {}
    for label, schedule in (
        ("blind", schedule_openshop(base)),
        ("EDF", schedule_edf(problem)),
        ("priority", schedule_priority(problem)),
        ("LLF", schedule_llf(problem)),
    ):
        r = evaluate_qos(problem, schedule)
        out[label] = (r.miss_rate, r.weighted_tardiness, r.completion_time)
    return out


def test_qos_deadlines(report, benchmark):
    def run_all():
        return [one_trial(seed) for seed in range(TRIALS)]

    trials = run_once(benchmark, run_all)
    rows = []
    for label in ("blind", "EDF", "priority", "LLF"):
        rows.append(
            [
                label,
                float(np.mean([t[label][0] for t in trials])) * 100,
                float(np.mean([t[label][1] for t in trials])),
                float(np.mean([t[label][2] for t in trials])),
            ]
        )
    report(
        "ext_qos_deadlines",
        format_table(
            ["scheduler", "miss rate (%)", "weighted tardiness",
             "makespan (s)"],
            rows,
            title=f"X3: tiered deadlines (1/3 urgent), P={NUM_PROCS}, "
                  f"{TRIALS} trials",
        ),
    )
    miss = {row[0]: row[1] for row in rows}
    makespan = {row[0]: row[3] for row in rows}
    assert miss["EDF"] <= miss["blind"]
    assert miss["priority"] <= miss["blind"]
    # QoS awareness costs little makespan (still within Theorem 3)
    assert makespan["EDF"] <= 1.2 * makespan["blind"]
    # the documented non-preemptive LLF caveat: EDF dominates it here
    assert miss["EDF"] <= miss["LLF"]


def test_critical_resource(report, benchmark):
    rows = []
    for seed in range(TRIALS):
        problem = random_problem(NUM_PROCS, seed=seed, low=0.2, high=10.0)
        critical = seed % NUM_PROCS
        plain = schedule_openshop(problem)
        favoured = schedule_critical_first(problem, critical)
        rows.append(
            [
                seed,
                critical_finish_time(plain, critical),
                critical_finish_time(favoured, critical),
                plain.completion_time,
                favoured.completion_time,
            ]
        )
    report(
        "ext_qos_critical_resource",
        format_table(
            ["trial", "critical finish (openshop)",
             "critical finish (critical-first)", "makespan (openshop)",
             "makespan (critical-first)"],
            rows,
            title="X3b: critical-resource scheduling",
        ),
    )
    for _, plain_cf, fav_cf, _, _ in rows:
        assert fav_cf <= plain_cf + 1e-9

    problem = random_problem(NUM_PROCS, seed=0)
    benchmark(schedule_critical_first, problem, 0)
