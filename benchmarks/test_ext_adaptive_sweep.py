"""X1b — adaptivity gain vs drift magnitude (paper Section 6.3).

Extends the X1 checkpoint experiment into a sweep: the harder the
network moves mid-collective, the more checkpoint rescheduling buys.
"""

from benchmarks.conftest import run_once
from repro.experiments.adaptive_sweep import run_adaptive_sweep
from repro.util.tables import format_series


def test_adaptivity_vs_drift(report, benchmark):
    result = run_once(
        benchmark,
        run_adaptive_sweep,
        sigmas=(0.0, 0.6, 1.2),
        num_procs=12,
        trials=4,
    )
    series = dict(result.completion)
    series["post_drift_lb"] = result.post_drift_lb
    text = format_series(
        "sigma",
        result.sigmas,
        series,
        precision=1,
        title=f"X1b: completion (s) vs drift magnitude "
              f"(P={result.num_procs}, {result.trials} trials)",
    )
    gains = result.gain("halving")
    text += "\n\nhalving-policy gain vs stale plan per sigma: " + ", ".join(
        f"{sigma:g}: {gain * 100:.1f}%"
        for sigma, gain in zip(result.sigmas, gains)
    )
    report("ext_adaptive_drift_sweep", text)

    # no drift -> nothing to gain (and rescheduling must not hurt)
    assert abs(gains[0]) < 0.05
    # strong drift -> clear gain
    assert gains[-1] > 0.03
    # adaptive completion tracks the post-drift lower bound within 2x
    assert result.completion["halving"][-1] <= 2 * result.post_drift_lb[-1]
