"""S6 — the hierarchical scale ladder: P = 1024 through P = 8192.

The flat open shop holds ratio ~1.001 but needs ~6.4 s at P = 1024
(``scale_p1024``) and is out of reach beyond that.  On cluster-structured
platforms the hierarchical scheduler replaces the interpreted per-event
loop with a cluster-level open shop over vectorized caterpillar block
rounds — these benches record how far that pushes the ladder and what it
costs in schedule quality (ratio to the lower bound).

Results land in ``BENCH_core.json``: the P = 1024 head-to-head under
``extra["scale_hier_p1024"]`` (the flat benchmarks own ``scale_p1024``),
and the new tiers under ``extra["scale_p2048"]`` /  ``scale_p4096`` /
``scale_p8192``.
"""

import pathlib

from benchmarks.conftest import run_once
from repro.perf.bench import run_hier_scale
from repro.util.tables import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_core.json"


def _rows(results):
    rows = []
    for p_label, tier in results.items():
        for name, stats in tier.items():
            if name == "meta":
                continue
            rows.append([
                int(p_label), name, stats["seconds"], stats["ratio_to_lb"],
            ])
    return rows


def test_scale_hier_p1024(report, benchmark):
    """Head-to-head against the flat open shop at the P = 1024 wall."""

    results = run_once(
        benchmark, run_hier_scale, (1024,), output=BENCH_JSON,
    )
    report(
        "scale_hier_p1024",
        format_table(
            ["P", "scheduler", "seconds", "ratio to LB"],
            _rows(results),
            precision=4,
            title="S6: hierarchical vs flat open shop at P=1024",
        ),
    )
    tier = results["1024"]
    hier, flat = tier["hierarchical"], tier["openshop"]
    # The headline acceptance numbers: >= 4x faster at <= 1.10x the LB.
    assert hier["ratio_to_lb"] <= 1.10
    assert hier["seconds"] * 4 <= flat["seconds"]
    # The flat open shop still wins on pure quality.
    assert flat["ratio_to_lb"] <= hier["ratio_to_lb"]


def test_scale_beyond_the_wall(report, benchmark):
    """P in {2048, 4096, 8192}: sizes the flat open shop cannot reach."""

    results = run_once(
        benchmark, run_hier_scale, (2048, 4096, 8192), output=BENCH_JSON,
    )
    report(
        "scale_hier_ladder",
        format_table(
            ["P", "scheduler", "seconds", "ratio to LB"],
            _rows(results),
            precision=4,
            title="S6: hierarchical scale ladder P=2048..8192",
        ),
    )
    for tier in results.values():
        assert tier["hierarchical"]["ratio_to_lb"] <= 1.25
    # P=4096 must come in under the flat open shop's 6.4 s P=1024 figure.
    assert results["4096"]["hierarchical"]["seconds"] < 6.4
