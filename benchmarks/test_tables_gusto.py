"""T1/T2 — the GUSTO directory tables (paper Tables 1 and 2).

Regenerates the latency/bandwidth tables exactly as the paper prints
them, and times schedule construction over the real GUSTO data.
"""

import numpy as np

import repro
from repro.network.gusto import (
    GUSTO_BANDWIDTH_KBIT_S,
    GUSTO_LATENCY_MS,
    GUSTO_SITES,
)
from repro.util.tables import format_table


def render_tables() -> str:
    header = ["", *GUSTO_SITES]
    lat_rows = [
        [site, *GUSTO_LATENCY_MS[i].tolist()]
        for i, site in enumerate(GUSTO_SITES)
    ]
    bw_rows = [
        [site, *GUSTO_BANDWIDTH_KBIT_S[i].tolist()]
        for i, site in enumerate(GUSTO_SITES)
    ]
    return "\n\n".join(
        [
            format_table(header, lat_rows, precision=1,
                         title="Table 1: latency (ms) between 5 GUSTO sites"),
            format_table(header, bw_rows, precision=0,
                         title="Table 2: bandwidth (kbit/s) between 5 GUSTO "
                               "sites"),
        ]
    )


def test_tables_1_and_2(report, benchmark):
    report("tables_1_2_gusto", render_tables())

    directory = repro.gusto_directory()

    def schedule_on_gusto():
        problem = repro.TotalExchangeProblem.from_snapshot(
            directory.snapshot(), repro.UniformSizes(repro.MEGABYTE)
        )
        return repro.schedule_openshop(problem).completion_time

    completion = benchmark(schedule_on_gusto)
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), repro.UniformSizes(repro.MEGABYTE)
    )
    assert completion <= 2 * problem.lower_bound()
