"""X4 — extended receive models (paper Section 6.1).

Sweeps the interleaved-receive context-switch overhead (alpha) and
stream count, and the finite-buffer capacity, showing how each
relaxation moves completion time relative to the base one-receive model.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.openshop import schedule_openshop
from repro.model.extended import FiniteBufferModel, InterleavedReceiveModel
from repro.sim.engine import execute_orders
from repro.sim.variants import (
    execute_orders_buffered,
    execute_orders_interleaved,
)
from repro.util.tables import format_table
from tests.conftest import random_problem

NUM_PROCS = 10


def make_problem(seed=0):
    problem = random_problem(NUM_PROCS, seed=seed, low=0.2, high=8.0)
    # attach sizes proportional to costs (1 cost-second ~ 1 MB)
    sizes = problem.cost * 1e6
    return repro.TotalExchangeProblem(cost=problem.cost, sizes=sizes)


def planned_orders(problem):
    return schedule_openshop(problem).send_orders()


def test_interleaved_alpha_sweep(report, benchmark):
    problem = make_problem()
    orders = planned_orders(problem)
    base = execute_orders(problem, orders, validate=False).completion_time

    def sweep():
        rows = []
        for alpha in (0.0, 0.1, 0.3, 0.6):
            for streams in (1, 2, 4):
                model = InterleavedReceiveModel(
                    alpha=alpha, max_streams=streams
                )
                t = execute_orders_interleaved(
                    problem, orders, model
                ).completion_time
                rows.append([alpha, streams, t, t / base])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_model_interleaved",
        format_table(
            ["alpha", "streams", "completion (s)", "vs base model"],
            rows,
            title=f"X4a: interleaved receives (P={NUM_PROCS}; base model "
                  f"= {base:.2f}s)",
        ),
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # one stream reproduces the base model regardless of alpha
    assert by_key[(0.0, 1)] == base
    # more overhead never helps at a fixed stream count
    assert by_key[(0.0, 2)] <= by_key[(0.3, 2)] + 1e-9
    assert by_key[(0.3, 2)] <= by_key[(0.6, 2)] + 1e-9
    # interleaving is processor sharing: it admits messages earlier but
    # serves each slower, so it may help or hurt the makespan — it stays
    # within the (1 + alpha) inflation of the base model's span.
    for (alpha, _streams), t in by_key.items():
        assert t <= (1.0 + alpha) * 2.0 * base


def test_buffer_capacity_sweep(report, benchmark):
    problem = make_problem(seed=1)
    orders = planned_orders(problem)
    base = execute_orders(problem, orders, validate=False).completion_time
    max_message = float(problem.sizes.max())

    def sweep():
        rows = []
        for capacity_factor in (1.0, 2.0, 8.0, 64.0):
            model = FiniteBufferModel(
                capacity_bytes=capacity_factor * max_message,
                drain_rate=1e9,
            )
            t = execute_orders_buffered(
                problem, orders, model
            ).completion_time
            rows.append([capacity_factor, t, t / base])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_model_buffered",
        format_table(
            ["capacity / max message", "completion (s)", "vs base model"],
            rows,
            title=f"X4b: finite receive buffers (P={NUM_PROCS}; base model "
                  f"= {base:.2f}s)",
        ),
    )
    times = [r[1] for r in rows]
    # more buffer can only help (fewer blocked deposits)
    assert all(b <= a + 1e-6 for a, b in zip(times, times[1:]))
    # with ample buffer the send side dominates: faster than base model
    assert times[-1] <= base + 1e-9
