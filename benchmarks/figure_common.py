"""Shared driver for the Figure 9-12 benches."""

from __future__ import annotations

from repro.experiments.harness import SweepResult
from repro.experiments.quality import quality_stats
from repro.experiments.report import (
    render_improvement,
    render_quality,
    render_sweep,
)

#: Paper claim: the adaptive algorithms beat the baseline clearly; the
#: abstract quotes up to a factor of 5, the Section 5 text 2-5x for the
#: server scenario.  We assert the conservative end of the shape.
MIN_SPEEDUP_AT_SCALE = {
    "fig09-small": 1.05,
    "fig10-large": 1.3,
    "fig11-mixed": 1.5,
    "fig12-servers": 1.3,
}


def run_figure(report, benchmark, name: str, driver) -> SweepResult:
    """Run a figure sweep once (timed), print/persist its series."""

    def sweep() -> SweepResult:
        return driver(trials=3, seed=0)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            render_sweep(result),
            render_improvement(result),
            render_quality(quality_stats([result])),
        ]
    )
    report(name, text)
    return result


def check_shape(result: SweepResult) -> None:
    """The reproduction targets shared by all four figures."""
    # Theorem 3 is unconditional.
    assert result.max_ratio("openshop") <= 2.0
    # open shop is the best of the adaptive algorithms on average.
    assert result.mean_ratio("openshop") <= result.mean_ratio("max_matching") + 0.02
    assert result.mean_ratio("openshop") <= result.mean_ratio("greedy") + 0.02
    # matchings are comparable to each other (paper: "comparable").
    assert abs(
        result.mean_ratio("max_matching") - result.mean_ratio("min_matching")
    ) < 0.08
    # baseline is the worst on average.
    for name in ("openshop", "max_matching", "min_matching", "greedy"):
        assert result.mean_ratio(name) <= result.mean_ratio("baseline") + 1e-9
    # speedup at the largest P matches the paper's story.
    floor = MIN_SPEEDUP_AT_SCALE[result.workload]
    assert result.improvement_over_baseline("openshop")[-1] >= floor
