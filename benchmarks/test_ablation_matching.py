"""A1 — matching objective and LAP backend ablation.

The paper evaluates maximum- and minimum-weight matching variants and
finds them comparable; the acknowledgements credit Jonker's LAP solver.
This bench compares the two objectives (quality) and the two backends
(identical round weights, very different runtime).
"""

import numpy as np
import pytest

from repro.core.matching import matching_rounds, schedule_matching
from repro.util.tables import format_table
from tests.conftest import random_problem


def test_objective_quality_ablation(report, benchmark):
    rows = []
    for num_procs in (10, 20, 30):
        ratios = {"max": [], "min": []}
        for seed in range(10):
            problem = random_problem(num_procs, seed=seed, low=0.1, high=30.0)
            lb = problem.lower_bound()
            for objective in ("max", "min"):
                t = schedule_matching(
                    problem, objective=objective
                ).completion_time
                ratios[objective].append(t / lb)
        rows.append(
            [
                num_procs,
                float(np.mean(ratios["max"])),
                float(np.mean(ratios["min"])),
            ]
        )
    report(
        "ablation_matching_objective",
        format_table(
            ["P", "max matching (ratio to LB)", "min matching (ratio to LB)"],
            rows,
            title="A1: matching objective ablation (10 instances per P)",
        ),
    )
    # "comparable completion times" (paper Section 5)
    for _, max_ratio, min_ratio in rows:
        assert abs(max_ratio - min_ratio) < 0.08

    problem = random_problem(30, seed=0)
    benchmark(schedule_matching, problem, objective="max")


@pytest.mark.parametrize("backend", ["scipy", "networkx"])
def test_backend_runtime(benchmark, backend):
    problem = random_problem(20, seed=1)
    rounds = benchmark(matching_rounds, problem.cost, backend=backend)
    assert len(rounds) == 20


def test_backends_equivalent_quality(benchmark):
    problem = random_problem(12, seed=2)
    benchmark(schedule_matching, problem, backend="scipy")
    for objective in ("max", "min"):
        t_scipy = schedule_matching(
            problem, objective=objective, backend="scipy"
        ).completion_time
        t_nx = schedule_matching(
            problem, objective=objective, backend="networkx"
        ).completion_time
        # same objective value per round does not force identical
        # permutations, but quality should be near-identical.
        assert t_scipy == pytest.approx(t_nx, rel=0.15)
