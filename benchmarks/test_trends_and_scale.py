"""S5b — figure-shape trends, and scale beyond the paper's range.

Asserts the figures' defining *slopes* (the baseline degrades with P,
the adaptive algorithms stay flat) and stress-runs the whole pipeline
at P = 100 — twice the paper's largest system — then climbs the scale
ladder at P = 256 and P = 1024 (greedy and open shop only: the matching
scheduler's ``O(P^4)`` round extraction is not a kernel for those
sizes) to show the library's headroom.
"""

import pathlib
import time

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.directory.service import DirectorySnapshot
from repro.experiments.figures import figure11_mixed_messages
from repro.experiments.trends import ratio_trends
from repro.util.tables import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_ratio_trends(report, benchmark):
    def sweep():
        result = figure11_mixed_messages(trials=3, seed=0)
        return ratio_trends(result)

    trends = run_once(benchmark, sweep)
    rows = [
        [t.algorithm, t.slope_per_processor * 1e3, t.ratio_at_min_p,
         t.ratio_at_max_p]
        for t in trends.values()
    ]
    report(
        "trends_ratio_vs_p",
        format_table(
            ["algorithm", "slope (x1e-3 per processor)", "ratio @ P=5",
             "ratio @ P=50"],
            rows,
            precision=3,
            title="S5b: ratio-to-LB trend vs system size (mixed workload)",
        ),
    )
    # the figures' defining shape
    assert trends["baseline"].grows
    assert trends["openshop"].flat
    assert trends["max_matching"].flat
    assert (
        trends["baseline"].slope_per_processor
        > 10 * abs(trends["openshop"].slope_per_processor)
    )


def test_scale_p100(report, benchmark):
    """The pipeline at P=100 — beyond the paper's 50-processor range."""

    def run():
        rng = np.random.default_rng(0)
        latency, bandwidth = repro.random_pairwise_parameters(100, rng=rng)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        problem = repro.TotalExchangeProblem.from_snapshot(
            snapshot, repro.MixedSizes(), rng=rng
        )
        lb = problem.lower_bound()
        out = {}
        for name in ("baseline", "max_matching", "openshop"):
            schedule = repro.get_scheduler(name)(problem)
            repro.check_schedule(schedule, problem.cost)
            out[name] = schedule.completion_time / lb
        return out

    ratios = run_once(benchmark, run)
    report(
        "scale_p100",
        format_table(
            ["algorithm", "ratio to LB at P=100"],
            [[name, ratio] for name, ratio in ratios.items()],
            precision=3,
            title="S5c: 100-processor mixed-workload exchange "
                  "(9,900 messages)",
        ),
    )
    assert ratios["openshop"] <= 2.0
    assert ratios["openshop"] < ratios["baseline"]
    assert ratios["max_matching"] < ratios["baseline"]


def test_scale_p256(report, benchmark):
    """The ISSUE's P=256 target: 65,280 messages through the fast kernels.

    Matching is excluded — its ``O(P^4)`` round extraction is not a
    P=256 kernel — so this runs the schedulers a run-time system would
    actually use at this scale: greedy and open shop, plus the baseline
    for the quality comparison.  Per-scheduler wall times land in the
    repo-root ``BENCH_core.json`` next to the kernel benchmarks.
    """
    from repro.perf.bench import bench_instance, update_bench_json

    def run():
        problem = bench_instance(256)
        lb = problem.lower_bound()
        out = {}
        for name in ("baseline", "greedy", "openshop"):
            start = time.perf_counter()
            schedule = repro.get_scheduler(name)(problem)
            ratio = schedule.completion_time / lb
            seconds = time.perf_counter() - start
            repro.check_schedule(schedule, problem.cost)
            out[name] = (ratio, seconds)
        return out

    results = run_once(benchmark, run)
    report(
        "scale_p256",
        format_table(
            ["algorithm", "ratio to LB at P=256", "schedule+makespan (s)"],
            [[name, ratio, seconds]
             for name, (ratio, seconds) in results.items()],
            precision=3,
            title="S5d: 256-processor mixed-workload exchange "
                  "(65,280 messages)",
        ),
    )
    update_bench_json(
        "scale_p256",
        {
            name: {"ratio_to_lb": ratio, "seconds": seconds}
            for name, (ratio, seconds) in results.items()
        },
        REPO_ROOT / "BENCH_core.json",
    )
    assert results["openshop"][0] <= 2.0
    assert results["greedy"][0] < results["baseline"][0]
    # The fast kernels make P=256 interactive: greedy composes and
    # prices its schedule in single-digit seconds even on slow machines.
    assert results["greedy"][1] < 10.0


def test_scale_p1024(report, benchmark):
    """The top of the scale ladder: P=1024, over a million messages.

    The seed open shop kernel needed minutes per schedule here; the
    vectorised kernel keeps the whole quality/latency table inside the
    bench budget.  Same scheduler set as P=256 — greedy and open shop
    are the algorithms a run-time system would reach for at this scale,
    with the baseline kept for the quality comparison.
    """
    from repro.perf.bench import bench_instance, update_bench_json

    def run():
        problem = bench_instance(1024)
        lb = problem.lower_bound()
        out = {}
        for name in ("baseline", "greedy", "openshop"):
            start = time.perf_counter()
            schedule = repro.get_scheduler(name)(problem)
            ratio = schedule.completion_time / lb
            seconds = time.perf_counter() - start
            repro.check_schedule(schedule, problem.cost)
            out[name] = (ratio, seconds)
        return out

    results = run_once(benchmark, run)
    report(
        "scale_p1024",
        format_table(
            ["algorithm", "ratio to LB at P=1024", "schedule+makespan (s)"],
            [[name, ratio, seconds]
             for name, (ratio, seconds) in results.items()],
            precision=3,
            title="S5e: 1024-processor mixed-workload exchange "
                  "(1,047,552 messages)",
        ),
    )
    update_bench_json(
        "scale_p1024",
        {
            name: {"ratio_to_lb": ratio, "seconds": seconds}
            for name, (ratio, seconds) in results.items()
        },
        REPO_ROOT / "BENCH_core.json",
    )
    # Quality holds at 20x the paper's system size...
    assert results["openshop"][0] <= 2.0
    assert results["greedy"][0] < results["baseline"][0]
    # ...and the vectorised kernel keeps open shop inside a minute where
    # the seed scan needed minutes (see docs/performance.md).
    assert results["openshop"][1] < 60.0