"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it prints
the rows/series to the terminal (through pytest's capture, so the output
appears in ``pytest benchmarks/`` runs) and also writes them under
``benchmarks/results/`` for the record (EXPERIMENTS.md quotes those
files).  The ``benchmark`` fixture times the computational kernel of the
experiment.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture
def report(capsys):
    """Print a rendered experiment table and persist it.

    Usage: ``report("fig09", text)`` — the text bypasses pytest capture
    so it shows up in the benchmark run's output, and is written to
    ``benchmarks/results/<name>.txt``.
    """

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(f"===== {name} =====")
            print(text)

    return _report


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment with a single timed round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
