"""X6 — robustness to directory measurement error (MSHN's uncertainty).

The directory's numbers are measurements, not truth.  Plans are built
from snapshots corrupted by log-normal measurement noise and replayed
against the true network; the question is how fast schedule quality
decays with noise — and whether the paper's ranking of algorithms
survives imperfect information.

Finding: it does not.  The open shop heuristic's fine-grained
earliest-receiver choices overfit the (wrong) measurements and its
replayed quality degrades fastest; the matching scheduler's coarse
round structure is far more robust and overtakes it at sigma ~0.5.
Under real MDS-grade uncertainty, the "best" algorithm on paper is not
the best one to run — recorded in EXPERIMENTS.md.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.directory.service import DirectorySnapshot
from repro.sim.replay import replay_schedule
from repro.util.tables import format_table

NUM_PROCS = 12
TRIALS = 6
ALGOS = ("openshop", "max_matching", "greedy")


def one_trial(seed: int, noise_sigma: float):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(NUM_PROCS, rng=rng)
    truth_snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(NUM_PROCS, rng=rng)
    truth = repro.TotalExchangeProblem.from_snapshot(truth_snap, sizes)
    measured_snap = repro.perturb_snapshot(
        truth_snap, bandwidth_sigma=noise_sigma, latency_sigma=noise_sigma,
        rng=rng,
    )
    measured = repro.TotalExchangeProblem.from_snapshot(measured_snap, sizes)
    lb = truth.lower_bound()
    out = {}
    for name in ALGOS:
        plan = repro.get_scheduler(name)(measured)
        out[name] = replay_schedule(plan, truth).completion_time / lb
    return out


def test_measurement_noise(report, benchmark):
    def sweep():
        rows = []
        for sigma in (0.0, 0.2, 0.5, 1.0):
            trials = [one_trial(seed, sigma) for seed in range(TRIALS)]
            rows.append(
                [sigma]
                + [
                    float(np.mean([t[name] for t in trials]))
                    for name in ALGOS
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_measurement_noise",
        format_table(
            ["noise sigma", *(f"{n} (ratio to true LB)" for n in ALGOS)],
            rows,
            title=f"X6: planning on noisy measurements "
                  f"(P={NUM_PROCS}, {TRIALS} trials)",
        ),
    )
    clean = rows[0]
    noisy = rows[-1]
    for k in range(1, len(ALGOS) + 1):
        # quality decays gracefully, not catastrophically
        assert noisy[k] < 3.0 * clean[k]
    openshop_col = 1 + ALGOS.index("openshop")
    matching_col = 1 + ALGOS.index("max_matching")
    # with clean measurements openshop leads...
    assert clean[openshop_col] <= clean[matching_col]
    # ...but under heavy measurement noise matching is the robust choice
    assert noisy[matching_col] <= noisy[openshop_col]
