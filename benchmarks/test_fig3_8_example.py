"""F3-F8 — the running example's timing diagrams (paper Figures 3-8).

Regenerates the 5-processor example schedule for every algorithm, prints
ASCII timing diagrams in the style of the paper's figures, and times
each scheduler on the example.
"""

import pytest

import repro
from repro.timing.diagram import render_timing_diagram
from repro.util.tables import format_table

FIGURES = {
    "baseline": "Figure 4 (baseline schedule)",
    "max_matching": "Figure 6 (series of maximum matchings)",
    "greedy": "Figure 7 (greedy schedule)",
    "openshop": "Figure 8 (open shop schedule)",
}


def test_example_diagrams(report, benchmark):
    problem = repro.example_problem()
    sections = [
        "Unscheduled events (Figure 3): 5 processors, lower bound = "
        f"{problem.lower_bound():g}"
    ]
    rows = []
    for name in repro.scheduler_names():
        schedule = repro.get_scheduler(name)(problem)
        repro.check_schedule(schedule, problem.cost)
        rows.append([name, schedule.completion_time,
                     schedule.completion_time / problem.lower_bound()])
        if name in FIGURES:
            sections.append(
                f"\n-- {FIGURES[name]}: completion "
                f"{schedule.completion_time:g} --\n"
                + render_timing_diagram(schedule, rows=16)
            )
    sections.append(
        "\n" + format_table(["algorithm", "completion", "ratio"], rows)
    )
    report("fig3_8_example", "\n".join(sections))

    # time the diagram renderer itself (the presentation-layer kernel)
    schedule = repro.schedule_openshop(problem)
    benchmark(render_timing_diagram, schedule, rows=16)

    times = {r[0]: r[1] for r in rows}
    # the paper's qualitative ordering on its running example
    assert times["openshop"] <= times["max_matching"] <= times["baseline"]
    assert times["openshop"] == pytest.approx(problem.lower_bound())


@pytest.mark.parametrize("name", [
    "baseline", "max_matching", "min_matching", "greedy", "openshop",
])
def test_scheduler_on_example(benchmark, name):
    problem = repro.example_problem()
    scheduler = repro.get_scheduler(name)
    schedule = benchmark(scheduler, problem)
    assert schedule.completion_time >= problem.lower_bound()
