"""F11 — all-to-all with a random 1 kB / 1 MB mix (paper Figure 11).

The workload with the strongest event-length heterogeneity — the one
where the paper's baseline degrades the furthest ("sometimes up to 6
times longer than the lower bound").
"""

from benchmarks.figure_common import check_shape, run_figure
from repro.experiments.figures import figure11_mixed_messages


def test_figure_11(report, benchmark):
    result = run_figure(report, benchmark, "fig11_mixed", figure11_mixed_messages)
    check_shape(result)
    # the mixed workload is where the baseline's fixed schedule hurts
    # most: multiple-x above the lower bound at scale.
    assert result.max_ratio("baseline") > 2.0
