"""A3 — analytical model vs fluid link-sharing execution.

The paper's model prices messages independently and ignores bandwidth
stolen by concurrent transfers on shared links (the directory's
equal-division rule absorbs *average* load, not in-collective sharing).
This bench executes the same open shop plan under (a) the analytical
model and (b) the fluid simulator with max-min fair sharing on a real
topology, reporting the model error for increasing cross-site traffic.
"""

import numpy as np

import repro
from repro.directory import TopologyDirectory
from repro.network.topology import Metacomputer
from repro.sim.fluid import fluid_execute_orders
from repro.util.tables import format_table
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms


def build_system(nodes_per_site: int) -> Metacomputer:
    return Metacomputer.build(
        {"west": nodes_per_site, "east": nodes_per_site},
        access_latency=seconds_from_ms(0.5),
        access_bandwidth=GBIT_PER_S,
        backbone=[("west", "east", seconds_from_ms(40), 10 * MBIT_PER_S)],
    )


def run_case(nodes_per_site: int):
    system = build_system(nodes_per_site)
    n = system.num_procs
    sizes = np.full((n, n), 2e5)
    np.fill_diagonal(sizes, 0.0)
    # cross-site bulk: every west node ships 2 MB to every east node
    for i in range(nodes_per_site):
        for j in range(nodes_per_site, n):
            sizes[i, j] = 2e6
    directory = TopologyDirectory(system)
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), sizes
    )
    planned = repro.schedule_openshop(problem)
    fluid = fluid_execute_orders(system, planned.send_orders(), sizes)
    return planned.completion_time, fluid.completion_time


def test_model_error_vs_site_size(report, benchmark):
    rows = []
    for nodes_per_site in (2, 3, 4):
        analytical, fluid = run_case(nodes_per_site)
        rows.append(
            [2 * nodes_per_site, analytical, fluid, fluid / analytical]
        )
    report(
        "ablation_fluid_model_error",
        format_table(
            ["P", "analytical (s)", "fluid (s)", "fluid/analytical"],
            rows,
            title="A3: analytical model vs fluid link sharing "
                  "(one shared 10 Mbit/s backbone)",
        ),
    )
    for _, analytical, fluid, ratio in rows:
        # sharing can only hurt, and is bounded by the per-site
        # concurrency (at most nodes_per_site concurrent backbone flows).
        assert 1.0 - 1e-6 <= ratio <= 4.5
    # error grows with concurrency on the shared backbone
    assert rows[-1][3] >= rows[0][3] - 0.05

    benchmark.group = "fluid"
    benchmark.pedantic(run_case, args=(3,), rounds=1, iterations=1)
