"""A5 — the paper's Section 3.4 design decisions, measured.

The paper rejects (a) message partitioning ("would increase the start-up
overheads") and (b) combine-and-forward relaying ("increases the volume
of traffic").  This bench implements both rejected alternatives plus the
preemptive optimum (Gonzalez-Sahni via Birkhoff-von Neumann) and
measures what each decision costs or saves.
"""

import numpy as np

import repro
from benchmarks.conftest import run_once
from repro.core.indirect import (
    choose_relays,
    relayed_bytes_factor,
    relayed_volume_factor,
    schedule_openshop_indirect,
)
from repro.core.partition import (
    partitioning_overhead,
    schedule_openshop_partitioned,
)
from repro.core.preemptive import (
    preemption_counts,
    preemption_startup_penalty,
    schedule_preemptive,
)
from repro.directory.service import DirectorySnapshot
from repro.util.tables import format_table

NUM_PROCS = 10
TRIALS = 5


def make_setup(seed):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(NUM_PROCS, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(NUM_PROCS, rng=rng)
    return snapshot, sizes


def test_partitioning_decision(report, benchmark):
    def sweep():
        rows = []
        for chunks in (1, 2, 4, 8):
            times, overheads = [], []
            for seed in range(TRIALS):
                snapshot, sizes = make_setup(seed)
                schedule = schedule_openshop_partitioned(
                    snapshot, sizes, chunks=chunks
                )
                times.append(schedule.completion_time)
                overheads.append(
                    partitioning_overhead(snapshot, sizes, chunks)
                )
            rows.append(
                [chunks, float(np.mean(times)), float(np.mean(overheads))]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_partitioning",
        format_table(
            ["chunks", "mean completion (s)", "extra start-up time (s)"],
            rows,
            title=f"A5a: message partitioning (P={NUM_PROCS}, mixed "
                  f"workload, {TRIALS} trials) — paper forbids chunks > 1",
        ),
    )
    # The paper's call: splitting adds start-up cost and does not pay
    # for itself under its parameter ranges.
    base = rows[0][1]
    assert all(time >= base * 0.97 for _, time, _ in rows)
    assert rows[-1][2] > rows[1][2] > 0  # overhead grows with chunks


def test_indirect_routing_decision(report, benchmark):
    def sweep():
        rows = []
        for advantage in (1.2, 1.5, 2.0, 4.0):
            times, relays, volumes, bytes_factors = [], [], [], []
            for seed in range(TRIALS):
                snapshot, sizes = make_setup(seed)
                plan = choose_relays(snapshot, sizes, advantage=advantage)
                schedule = schedule_openshop_indirect(
                    snapshot, sizes, plan=plan
                )
                times.append(schedule.completion_time)
                relays.append(plan.relay_count)
                volumes.append(
                    relayed_volume_factor(snapshot, sizes, plan)
                )
                bytes_factors.append(relayed_bytes_factor(sizes, plan))
            rows.append(
                [
                    advantage,
                    float(np.mean(relays)),
                    float(np.mean(times)),
                    float(np.mean(bytes_factors)),
                    float(np.mean(volumes)),
                ]
            )
        # reference: no relaying at all
        times = []
        for seed in range(TRIALS):
            snapshot, sizes = make_setup(seed)
            problem = repro.TotalExchangeProblem.from_snapshot(
                snapshot, sizes
            )
            times.append(repro.schedule_openshop(problem).completion_time)
        rows.append(["direct", 0.0, float(np.mean(times)), 1.0, 1.0])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_indirect_routing",
        format_table(
            ["min advantage", "mean relays", "mean completion (s)",
             "bytes factor", "port-time factor"],
            rows,
            title=f"A5b: single-hop relaying (P={NUM_PROCS}, mixed "
                  "workload) — paper forbids relaying",
        ),
    )
    direct_time = rows[-1][2]
    best_relayed = min(row[2] for row in rows[:-1])
    # On log-uniform GUSTO-like networks the triangle inequality is
    # violated often enough that relaying CAN win on port time even
    # though it moves more bytes — a genuine nuance to the paper's
    # blanket rejection (recorded in EXPERIMENTS.md).
    assert best_relayed <= direct_time
    for row in rows[:-1]:
        assert row[3] >= 1.0  # bytes always increase


def test_preemptive_optimum(report, benchmark):
    def sweep():
        rows = []
        for seed in range(TRIALS):
            snapshot, sizes = make_setup(seed)
            problem = repro.TotalExchangeProblem.from_snapshot(
                snapshot, sizes
            )
            preemptive = schedule_preemptive(problem)
            openshop = repro.schedule_openshop(problem)
            slots, pieces = preemption_counts(problem)
            penalty = preemption_startup_penalty(problem, snapshot.latency)
            rows.append(
                [
                    seed,
                    problem.lower_bound(),
                    preemptive.completion_time,
                    openshop.completion_time,
                    pieces,
                    penalty,
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_preemptive_optimum",
        format_table(
            ["trial", "t_lb", "preemptive optimum", "openshop",
             "pieces", "re-start-up cost (s)"],
            rows,
            title=f"A5c: preemptive optimum vs the paper's non-preemptive "
                  f"heuristic (P={NUM_PROCS})",
        ),
    )
    for _, lb, preemptive, openshop, pieces, penalty in rows:
        # Gonzalez-Sahni: preemptive optimum == lower bound.
        assert abs(preemptive - lb) < 1e-6 * max(lb, 1.0)
        gap = openshop - lb
        # the paper's decision holds whenever re-paying start-ups costs
        # more than the non-preemptive gap it closes
        if penalty > gap:
            assert openshop <= lb + gap  # tautology guard; recorded above
