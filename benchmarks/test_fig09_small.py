"""F9 — all-to-all with small (1 kB) messages (paper Figure 9).

Completion time vs processor count (P up to 50) for the five scheduling
algorithms, on GUSTO-guided random networks with 1 kB messages.
"""

from benchmarks.figure_common import check_shape, run_figure
from repro.experiments.figures import figure09_small_messages


def test_figure_09(report, benchmark):
    result = run_figure(report, benchmark, "fig09_small", figure09_small_messages)
    check_shape(result)
    # 1 kB messages are start-up dominated: even at P=50 the exchange
    # completes within tens of seconds of simulated time.
    assert result.completion["openshop"][-1] < 60.0
