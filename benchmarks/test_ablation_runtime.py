"""A2 — scheduler wall-clock cost vs P.

The paper motivates the O(P^3) greedy and open shop algorithms as cheap
alternatives to the O(P^4) matching scheduler.  This bench measures the
actual scheduling cost of each algorithm at several system sizes — the
"cost of adaptivity" the run-time system pays before communicating.
"""

import pytest

import repro
from tests.conftest import random_problem

ALGORITHMS = ["baseline", "max_matching", "min_matching", "greedy", "openshop"]
SIZES = [10, 30, 50]


@pytest.mark.parametrize("num_procs", SIZES)
@pytest.mark.parametrize("name", ALGORITHMS)
def test_scheduler_runtime(benchmark, name, num_procs):
    problem = random_problem(num_procs, seed=0)
    scheduler = repro.get_scheduler(name)
    benchmark.group = f"P={num_procs}"
    schedule = benchmark(scheduler, problem)
    assert schedule.completion_time >= problem.lower_bound() - 1e-9


def test_matching_runtime_at_scale(benchmark):
    """Matching at P=50, the paper's largest system size.

    Note on asymptotics: matching is O(P^4) against open shop's O(P^3),
    but its inner kernel is SciPy's C Jonker-Volgenant solver while the
    O(P^3) heuristics run in pure Python — at P <= 50 the constant
    factors dominate and matching is wall-clock competitive.  The
    per-P benchmark groups above chart the actual crossover behaviour.
    """
    problem = random_problem(50, seed=1)
    benchmark.group = "P=50"
    schedule = benchmark(repro.schedule_matching_max, problem)
    assert schedule.completion_time >= problem.lower_bound() - 1e-9
