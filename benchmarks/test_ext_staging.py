"""E2 — data staging under load (BADD scenario, paper ref [24]).

On-time delivery rate vs offered load for the priority-aware staging
heuristic, against a FIFO (arrival-order) ablation that ignores
priorities and deadlines.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.network.topology import Metacomputer
from repro.staging import (
    DataItem,
    DataRequest,
    evaluate_plan,
    schedule_staging,
)
from repro.util.tables import format_table
from repro.util.units import MBIT_PER_S, MEGABYTE, seconds_from_ms


def build_theatre() -> Metacomputer:
    return Metacomputer.build(
        {"rear": 2, "base": 2, "field": 4},
        access_latency=seconds_from_ms(1),
        access_bandwidth=100 * MBIT_PER_S,
        backbone=[
            ("rear", "base", seconds_from_ms(30), 8 * MBIT_PER_S),
            ("base", "field", seconds_from_ms(40), 2 * MBIT_PER_S),
        ],
    )


def make_requests(count: int, rng) -> list:
    items = [
        DataItem("brief", 0.2 * MEGABYTE, sources=(1,)),
        DataItem("map", 2 * MEGABYTE, sources=(0, 2)),
        DataItem("image", 8 * MEGABYTE, sources=(0, 1)),
    ]
    weights = [0.5, 0.3, 0.2]
    deadlines = {"brief": 20.0, "map": 120.0, "image": 400.0}
    priorities = {"brief": 10.0, "map": 3.0, "image": 1.0}
    requests = []
    for _ in range(count):
        item = items[rng.choice(3, p=weights)]
        unit = int(rng.integers(4, 8))  # field nodes
        requests.append(
            DataRequest(
                item,
                unit,
                deadline=deadlines[item.name],
                priority=priorities[item.name],
            )
        )
    return requests


def fifo_staging(system, requests):
    """Ablation: process requests in arrival order (priority-blind)."""
    return schedule_staging(system, requests, order_by="arrival")


def test_staging_load_sweep(report, benchmark):
    def sweep():
        rows = []
        for load in (5, 15, 30, 50):
            sat_priority, sat_fifo = [], []
            for seed in range(4):
                rng = np.random.default_rng(1000 + seed)
                system = build_theatre()
                requests = make_requests(load, rng)
                smart = evaluate_plan(schedule_staging(system, requests))
                naive = evaluate_plan(fifo_staging(build_theatre(), requests))
                sat_priority.append(smart.weighted_satisfaction)
                sat_fifo.append(naive.weighted_satisfaction)
            rows.append(
                [
                    load,
                    float(np.mean(sat_priority)) * 100,
                    float(np.mean(sat_fifo)) * 100,
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ext_staging_load",
        format_table(
            ["requests", "priority-aware satisfaction (%)",
             "FIFO satisfaction (%)"],
            rows,
            title="E2: weighted deadline satisfaction vs offered load "
                  "(4 trials each)",
        ),
    )
    # priority awareness never loses weighted satisfaction, and wins
    # clearly once the network saturates.
    for _, smart, naive in rows:
        assert smart >= naive - 2.0
    assert rows[-1][1] > rows[-1][2]
